//! Autotune a cryptographic workload (paper §4.2): search pass sequences with
//! the genetic tuner using cycle count as the fitness function, then compare
//! the best sequence against `-O3`.
//!
//! Run with: `cargo run --release --example autotune_crypto`

use zkvm_opt::study::{gain, OptLevel, OptProfile, SuiteRunner};
use zkvm_opt::tuner::{autotune, TunerConfig};
use zkvm_opt::vm::VmKind;

fn main() {
    // The batched suite runner lowers the workload once; every autotuner
    // candidate then only pays passes + codegen + engine execution.
    let mut runner = SuiteRunner::new();
    let w = zkvm_opt::workloads::by_name("sha2-bench").expect("suite workload");
    println!(
        "autotuning `{}` on RISC Zero (fitness = cycle count)\n",
        w.name
    );

    let (_, baseline) = runner
        .measure(w, &OptProfile::baseline(), VmKind::RiscZero, false, None)
        .expect("baseline");
    let (o3, _) = runner
        .measure(
            w,
            &OptProfile::level(OptLevel::O3),
            VmKind::RiscZero,
            false,
            Some(&baseline),
        )
        .expect("-O3");
    println!("baseline : {:>12} cycles", baseline.exec.total_cycles);
    println!("-O3      : {:>12} cycles", o3.cycles);

    let config = TunerConfig {
        iterations: 80,
        ..Default::default()
    };
    let result = autotune(&config, |cand| {
        let profile = OptProfile::sequence("candidate", cand.passes.clone(), cand.pass_config());
        // Candidates that miscompile return None and can never win — the
        // channel through which the paper's autotuner surfaced a real SP1
        // soundness bug.
        match runner.measure(w, &profile, VmKind::RiscZero, false, Some(&baseline)) {
            Ok((m, _)) => Some(m.cycles),
            Err(_) => None,
        }
    });

    println!(
        "tuned    : {:>12} cycles  ({} evaluations)",
        result.best_fitness, result.evaluated
    );
    println!(
        "tuned vs -O3 cycle gain: {:+.1}%",
        gain(o3.cycles as f64, result.best_fitness as f64)
    );
    println!(
        "\nbest sequence (inline-threshold {}, unroll-threshold {}):",
        result.best.inline_threshold, result.best.unroll_threshold
    );
    for p in &result.best.passes {
        println!("  - {p}");
    }
}
