//! Quickstart: compile a zklang guest program, run it on both zkVM cost
//! models, and compare the unoptimized baseline against `-O3`.
//!
//! Run with: `cargo run --release --example quickstart`

use zkvm_opt::study::{gain, OptLevel, OptProfile, Pipeline};
use zkvm_opt::vm::VmKind;

fn main() {
    let source = "
        fn hash_step(acc: i32, x: i32) -> i32 {
          return (acc * 31 + x) % 1000003;
        }
        fn main() -> i32 {
          let seed: i32 = read_input(0);
          let mut acc: i32 = seed;
          for (let mut i: i32 = 0; i < 20000; i += 1) {
            acc = hash_step(acc, i);
          }
          commit(acc);
          return acc;
        }";

    println!("== zkvm-opt quickstart ==\n");
    for vm in VmKind::BOTH {
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(source, &[7], vm)
            .expect("baseline runs");
        let o3 = Pipeline::new(OptProfile::level(OptLevel::O3))
            .run_source(source, &[7], vm)
            .expect("-O3 runs");
        assert_eq!(
            base.exec.journal, o3.exec.journal,
            "optimization must not change output"
        );
        println!("{vm}:");
        println!(
            "  guest output          : {:?} (exit {})",
            base.exec.journal, base.exec.exit_code
        );
        println!(
            "  baseline              : {:>10} cycles, {:>9} instructions, {:>6} paging cycles",
            base.exec.total_cycles, base.exec.instret, base.exec.paging_cycles
        );
        println!(
            "  -O3                   : {:>10} cycles, {:>9} instructions, {:>6} paging cycles",
            o3.exec.total_cycles, o3.exec.instret, o3.exec.paging_cycles
        );
        println!(
            "  execution-time gain   : {:+.1}%",
            gain(base.exec_ms, o3.exec_ms)
        );
        println!(
            "  proving-time gain     : {:+.1}%",
            gain(base.prove_ms, o3.prove_ms)
        );
        println!();
    }
}
