//! The paper's §6.1 in action: the same division-heavy guest compiled with
//! the stock CPU-tuned toolchain versus the zkVM-aware one (cost model +
//! heuristics + disabled hardware passes), measured on the zkVM *and* on the
//! x86 timing model to show the trade-off flips.
//!
//! Run with: `cargo run --release --example zk_aware_backend`

use zkvm_opt::study::{gain, OptLevel, OptProfile, Pipeline};
use zkvm_opt::vm::VmKind;

fn main() {
    let source = "
        fn main() -> i32 {
          let seed: i32 = read_input(0);
          let mut s: i32 = 0;
          for (let mut i: i32 = 1; i < 8000; i += 1) {
            let v: i32 = i + seed;
            s += v / 8 + v % 8;
            let mut a: i32 = s % 255 - 128;
            if (a < 0) { a = 0 - a; }
            s += a;
          }
          commit(s);
          return s;
        }";

    let stock = Pipeline::new(OptProfile::level(OptLevel::O3))
        .with_x86()
        .run_source(source, &[3], VmKind::RiscZero)
        .expect("stock -O3 runs");
    let zk = Pipeline::new(OptProfile::zk_o3())
        .with_x86()
        .run_source(source, &[3], VmKind::RiscZero)
        .expect("zk-O3 runs");
    assert_eq!(stock.exec.journal, zk.exec.journal);

    println!("== stock -O3 vs zkVM-aware -O3 (paper Fig. 14) ==\n");
    println!("                      stock -O3      zk-aware -O3");
    println!(
        "instructions        {:>11} {:>17}",
        stock.exec.instret, zk.exec.instret
    );
    println!(
        "zkVM cycles         {:>11} {:>17}",
        stock.exec.total_cycles, zk.exec.total_cycles
    );
    println!(
        "zkVM exec time      {:>9.3} ms {:>14.3} ms",
        stock.exec_ms, zk.exec_ms
    );
    println!(
        "proving time        {:>9.1} ms {:>14.1} ms",
        stock.prove_ms, zk.prove_ms
    );
    let (sx, zx) = (
        stock.x86.as_ref().expect("x86 run").time_ms,
        zk.x86.as_ref().expect("x86 run").time_ms,
    );
    println!("native x86 time     {:>9.4} ms {:>14.4} ms", sx, zx);
    println!();
    println!(
        "zkVM execution gain of zk-aware backend : {:+.1}%",
        gain(stock.exec_ms, zk.exec_ms)
    );
    println!(
        "proving gain of zk-aware backend        : {:+.1}%",
        gain(stock.prove_ms, zk.prove_ms)
    );
    println!(
        "native x86 'gain' (expected negative)   : {:+.1}%",
        gain(sx, zx)
    );
    println!();
    println!("The zk-aware backend keeps `div`/`rem` instructions and branchy");
    println!("selects (cheap in a proof, P3/P4), which the CPU model would have");
    println!("strength-reduced and if-converted for hardware that is not there.");
}
