//! The autotuning service: tune several workloads concurrently with the
//! island-model search, persist the results in the tune database, and
//! warm-start the second run from it.
//!
//! Run with: `cargo run --release --example autotune_service`
//!
//! Compare `autotune_crypto`, which drives the sequential single-workload
//! tuner. This example uses the parallel path: a `BatchEvaluator` snapshots
//! each workload's lowered module once, then every island evolves candidates
//! concurrently — each evaluation applies the candidate sequence, compiles
//! to RISC-V, and runs the block-dispatch engine with a differential check
//! against the baseline journal. Results land in `target/tune.db`; rerunning
//! the example answers every workload from the database with zero fitness
//! evaluations. Delete the file (or tune new programs) to search again.

use zkvm_opt::study::SuiteRunner;
use zkvm_opt::tuner::{tune_suite, ServiceConfig, TuneDb, TuneTarget};
use zkvm_opt::vm::VmKind;

fn main() {
    let names = ["loop-sum", "fibonacci", "tailcall", "sha2-bench"];
    let workloads: Vec<_> = names
        .iter()
        .map(|n| zkvm_opt::workloads::by_name(n).expect("suite workload"))
        .collect();

    let mut runner = SuiteRunner::new();
    let evaluator = runner
        .batch_evaluator(&workloads, VmKind::RiscZero)
        .expect("suite workloads compile");
    let targets: Vec<TuneTarget> = evaluator.tune_targets();

    // `ZKVMOPT_SEED` overrides the seed; results are identical for a given
    // seed regardless of thread count.
    let config = ServiceConfig {
        islands: 2,
        population: 8,
        generations: 4,
        ..Default::default()
    }
    .with_seed_from_env();
    println!(
        "tuning {} workloads: {} islands x {} population x {} generations \
         = {} evaluations per workload\n",
        targets.len(),
        config.islands,
        config.population,
        config.generations,
        config.budget_per_workload()
    );

    let mut db = TuneDb::open("target/tune.db");
    println!("tune db: target/tune.db ({})\n", db.load_status());

    // The classified fitness isolates panics, enforces per-candidate cycle
    // budgets, and reports every failure as a `FailureClass` the service
    // can retry or quarantine.
    let report = tune_suite(&config, &targets, &mut db, evaluator.classified_fitness());
    db.save().expect("tune db saves");

    println!(
        "{:<14} {:>12} {:>12} {:>8}   best sequence",
        "workload", "baseline", "tuned", "gain"
    );
    for (i, w) in report.workloads.iter().enumerate() {
        let base = evaluator.baseline_cycles(i);
        let tuned = w.best_fitness.expect("valid candidate found");
        let seq = w
            .best
            .as_ref()
            .map(|c| c.passes.join(","))
            .unwrap_or_default();
        println!(
            "{:<14} {base:>12} {tuned:>12} {:>7.1}%   {}{seq}",
            w.name,
            100.0 * (base as f64 - tuned as f64) / base as f64,
            if w.warm_started { "[warm] " } else { "" },
        );
    }
    println!(
        "\nbudget spent: {} evaluations ({} fitness calls, {} cache hits, \
         {} answered from the tune db)",
        report.evaluated, report.fitness_evals, report.cache_hits, report.db_hits
    );
    if report.retries > 0 || report.quarantine_total > 0 {
        println!(
            "fault tolerance: {} retries, {} candidates quarantined, {} workloads demoted",
            report.retries, report.quarantine_total, report.demoted
        );
    }
    if report.db_hits == targets.len() {
        println!("everything warm-started — delete target/tune.db to search again");
    }
}
