//! Predictive tuning: populate the tune database from a handful of
//! workloads, then predict a pass sequence for a held-out program from its
//! structural features alone — no search, no engine cycles — and compare
//! the predicted candidate against the fully-tuned result and `-O3`.
//!
//! Run with: `cargo run --release --example predict_tune`
//!
//! The schema-2 tune database stores each program's [`FeatureVector`]
//! (loop structure, memory density, instruction mix, ...) and its
//! unoptimized baseline next to the winning candidate. The [`Predictor`]
//! z-scores those features and takes a distance-weighted k-NN vote over
//! pass sequences, so a program the service has never tuned gets an answer
//! in microseconds. `tune_suite` with `predict: true` then measures that
//! one candidate and serves it when it lands within the acceptance margin
//! of the database's recorded quality — otherwise the prediction seeds the
//! island search.

use zkvm_opt::study::SuiteRunner;
use zkvm_opt::tuner::{tune_suite, Predictor, ServiceConfig, TuneDb};
use zkvm_opt::vm::VmKind;

fn main() {
    // The knowledge base: a mix of small kernels and PolyBench programs.
    let known = [
        "loop-sum",
        "fibonacci",
        "factorial",
        "polybench-jacobi-1d",
        "polybench-atax",
        "polybench-bicg",
    ];
    // The held-out program the predictor has never seen.
    let held_out = "polybench-trisolv";

    let workloads: Vec<_> = known
        .iter()
        .chain(std::iter::once(&held_out))
        .map(|n| zkvm_opt::workloads::by_name(n).expect("suite workload"))
        .collect();
    let mut runner = SuiteRunner::new();
    let evaluator = runner
        .batch_evaluator(&workloads, VmKind::RiscZero)
        .expect("suite workloads compile");
    let targets = evaluator.tune_targets();
    let held_idx = known.len();

    // Tune the knowledge base (predictor off: these are the examples).
    let config = ServiceConfig {
        islands: 2,
        population: 6,
        generations: 3,
        ..Default::default()
    }
    .with_seed_from_env();
    let mut db = TuneDb::in_memory();
    let report = tune_suite(
        &config,
        &targets[..held_idx],
        &mut db,
        evaluator.classified_fitness(),
    );
    println!(
        "knowledge base: {} programs tuned, {} evaluations spent\n",
        held_idx, report.evaluated
    );

    // Predict for the held-out program: features in, candidate out. This
    // touches neither the compiler nor the engine.
    let predictor = Predictor::from_db(&db, config.predict_k);
    let prediction = predictor.predict(evaluator.features(held_idx));
    println!("held-out program: {held_out}");
    println!(
        "predicted from {} neighbours ({} vote(s){}): {}",
        prediction.neighbors,
        prediction.votes,
        if prediction.fallback {
            ", -O3 fallback"
        } else {
            ""
        },
        prediction.candidate.passes.join(","),
    );
    println!(
        "predicted thresholds: inline {} unroll {}",
        prediction.candidate.inline_threshold, prediction.candidate.unroll_threshold
    );

    // Score the prediction against the alternatives it replaces.
    let predicted = evaluator
        .eval(
            held_idx,
            &prediction.candidate.passes,
            &prediction.candidate.pass_config(),
        )
        .expect("predicted candidate validates");
    let baseline = evaluator.baseline_cycles(held_idx);
    let o3 = evaluator.o3_cycles(held_idx);

    // The fully-tuned reference: what a cold island search would find.
    let tuned_report = tune_suite(
        &config,
        &targets[held_idx..],
        &mut TuneDb::in_memory(),
        |_, c| evaluator.classified_fitness()(held_idx, c),
    );
    let tuned = tuned_report.workloads[0]
        .best_fitness
        .expect("search finds a valid candidate");

    let pct = |c: u64| 100.0 * (baseline as f64 - c as f64) / baseline as f64;
    println!("\n{:<22} {:>12} {:>8}", "variant", "cycles", "gain");
    println!("{:<22} {:>12} {:>8}", "baseline", baseline, "-");
    println!("{:<22} {:>12} {:>7.1}%", "-O3", o3, pct(o3));
    println!(
        "{:<22} {:>12} {:>7.1}%   ({} evals)",
        "fully tuned",
        tuned,
        pct(tuned),
        tuned_report.evaluated
    );
    println!(
        "{:<22} {:>12} {:>7.1}%   (1 eval, prediction cost ~µs)",
        "predicted",
        predicted,
        pct(predicted)
    );
}
