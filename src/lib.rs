//! # zkvm-opt
//!
//! A self-contained reproduction of *“Evaluating Compiler Optimization Impacts on
//! zkVM Performance”* (ASPLOS 2026).
//!
//! This facade crate re-exports every subsystem of the workspace so examples and
//! downstream users can depend on a single crate:
//!
//! - [`ir`] — SSA intermediate representation and analyses
//! - [`lang`] — the zklang frontend (C-like benchmark language)
//! - [`passes`] — 45+ optimization passes mirroring the studied LLVM passes
//! - [`riscv`] — RV32IM code generation with pluggable target cost models
//! - [`vm`] — zkVM executors (RISC Zero–like and SP1-like cost models)
//! - [`prover`] — STARK-style proving-cost models and a toy Merkle prover
//! - [`x86sim`] — x86-like timing model used for the RQ3 comparison
//! - [`crypto`] — SHA-256 / Keccak / Merkle / toy signature precompile backends
//! - [`workloads`] — the 58-program benchmark suite
//! - [`stats`] — Kendall’s τ, Pearson r, and summary statistics
//! - [`tuner`] — genetic pass-sequence autotuner (OpenTuner substitute) and
//!   the island-model parallel tuning service with its persistent tune db
//! - [`study`] — the experiment driver that regenerates the paper’s tables/figures
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use zkvmopt_core as study;
pub use zkvmopt_crypto as crypto;
pub use zkvmopt_ir as ir;
pub use zkvmopt_lang as lang;
pub use zkvmopt_passes as passes;
pub use zkvmopt_prover as prover;
pub use zkvmopt_riscv as riscv;
pub use zkvmopt_stats as stats;
pub use zkvmopt_tuner as tuner;
pub use zkvmopt_vm as vm;
pub use zkvmopt_workloads as workloads;
pub use zkvmopt_x86sim as x86sim;

/// Common imports for examples and quick experiments.
pub mod prelude {
    pub use zkvmopt_core::{
        gain, measure, MatrixCell, OptLevel, OptProfile, Pipeline, RunReport, SuiteRunner,
    };
    pub use zkvmopt_vm::{DecodedProgram, Engine, VmKind};
}
