//! Golden cycle-count snapshots: per-workload -O2 total cycles for both VM
//! kinds, pinned in `tests/golden_cycles.json`.
//!
//! Any engine or pass change that moves costs fails here *explicitly* — the
//! suite-wide differential harness proves old-vs-new executor identity, this
//! file pins the absolute numbers across PRs. To regenerate after an
//! intentional cost change:
//!
//! ```text
//! ZKVMOPT_BLESS=1 cargo test --release --test golden_cycles -- --include-ignored
//! ```
//!
//! and commit the updated JSON alongside the change that moved the numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use zkvm_opt::study::{OptLevel, OptProfile, SuiteRunner};
use zkvm_opt::vm::VmKind;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_cycles.json")
}

/// Compute per-workload -O2 total cycles on both VM kinds (suite order).
fn current_cycles() -> Vec<(String, u64, u64)> {
    let mut runner = SuiteRunner::new();
    let o2 = OptProfile::level(OptLevel::O2);
    zkvm_opt::workloads::all()
        .iter()
        .map(|w| {
            let r0 = runner
                .run(w, &o2, VmKind::RiscZero, false)
                .unwrap_or_else(|e| panic!("{} on RISC Zero: {e}", w.name));
            let sp1 = runner
                .run(w, &o2, VmKind::Sp1, false)
                .unwrap_or_else(|e| panic!("{} on SP1: {e}", w.name));
            (
                w.name.to_string(),
                r0.exec.total_cycles,
                sp1.exec.total_cycles,
            )
        })
        .collect()
}

fn render(rows: &[(String, u64, u64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"zkvmopt-golden-cycles-v1\",\n  \"profile\": \"-O2\",\n");
    s.push_str("  \"workloads\": {\n");
    for (i, (name, r0, sp1)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            s,
            "    \"{name}\": {{ \"risc_zero\": {r0}, \"sp1\": {sp1} }}{comma}"
        )
        .expect("string write");
    }
    s.push_str("  }\n}\n");
    s
}

/// Parse the subset of JSON `render` emits (one workload per line).
fn parse(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('"') || !line.contains("risc_zero") {
            continue;
        }
        let name = line
            .trim_start_matches('"')
            .split('"')
            .next()
            .expect("workload name")
            .to_string();
        let num_after = |key: &str| -> u64 {
            let at = line.find(key).unwrap_or_else(|| panic!("missing {key}"));
            line[at + key.len()..]
                .trim_start_matches([':', ' ', '"'])
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or_else(|e| panic!("bad number for {name}/{key}: {e}"))
        };
        let cycles = (num_after("\"risc_zero\""), num_after("\"sp1\""));
        out.insert(name, cycles);
    }
    out
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-suite snapshot is release-only (CI: test-release)"
)]
fn golden_cycle_counts_are_stable() {
    let rows = current_cycles();
    let path = golden_path();
    if std::env::var("ZKVMOPT_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, render(&rows)).expect("write golden file");
        eprintln!("blessed {} workloads into {}", rows.len(), path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with ZKVMOPT_BLESS=1 to generate",
            path.display()
        )
    });
    let golden = parse(&text);
    assert_eq!(golden.len(), 58, "golden file must cover the full suite");
    let mut drift = Vec::new();
    for (name, r0, sp1) in &rows {
        let Some(&(g0, g1)) = golden.get(name) else {
            drift.push(format!("{name}: missing from golden file"));
            continue;
        };
        if *r0 != g0 {
            drift.push(format!("{name} on RISC Zero: golden {g0}, got {r0}"));
        }
        if *sp1 != g1 {
            drift.push(format!("{name} on SP1: golden {g1}, got {sp1}"));
        }
    }
    assert!(
        drift.is_empty(),
        "cycle counts drifted from tests/golden_cycles.json — if intentional, \
         rebless with ZKVMOPT_BLESS=1:\n  {}",
        drift.join("\n  ")
    );
}

/// The golden file itself must stay well-formed and round-trip through the
/// renderer (guards hand edits). Runs in debug too — it executes nothing.
#[test]
fn golden_file_is_well_formed() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file exists");
    let golden = parse(&text);
    assert_eq!(golden.len(), 58);
    for w in zkvm_opt::workloads::all() {
        assert!(golden.contains_key(w.name), "{} missing", w.name);
    }
    let rows: Vec<(String, u64, u64)> = zkvm_opt::workloads::all()
        .iter()
        .map(|w| {
            let (r0, sp1) = golden[w.name];
            (w.name.to_string(), r0, sp1)
        })
        .collect();
    assert_eq!(parse(&render(&rows)), golden, "render/parse round-trip");
}
