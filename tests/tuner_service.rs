//! Differential gates for the island-model autotuning service, with the
//! sequential tuner as the deterministic oracle.
//!
//! Fitness here is the real pipeline (clone lowered module → apply candidate
//! passes → RISC-V codegen → block-dispatch engine, journal-checked against
//! the baseline), via `SuiteRunner::batch_evaluator`. The gates:
//!
//! 1. **Thread-count independence** — one pinned seed, 1-thread and 4-thread
//!    service runs: bit-identical tune databases.
//! 2. **Oracle** — at the same seed the service's best must be at least as
//!    good as the sequential `autotune` loop's best at an equal evaluation
//!    budget (the island model sees the same anchors plus migration).
//! 3. **Bit-identical persistence** — every tune-db entry re-measured from
//!    scratch must reproduce its recorded cycle count exactly.
//! 4. **Warm start** — a populated database (reloaded through disk) answers
//!    every workload with zero fitness evaluations.
//!
//! The search evaluates hundreds of real compiles, so the suite is
//! release-only, like the suite-wide differential harness:
//!
//! ```text
//! cargo test --release --test tuner_service -- --include-ignored
//! ```

use zkvm_opt::study::SuiteRunner;
use zkvm_opt::tuner::{
    autotune, tune_suite, Candidate, EvalResult, ServiceConfig, TuneDb, TuneTarget, TunerConfig,
};
use zkvm_opt::vm::VmKind;
use zkvmopt_core::BatchEvaluator;
use zkvmopt_passes::PassConfig;
use zkvmopt_workloads::Workload;

const WORKLOADS: [&str; 3] = ["loop-sum", "fibonacci", "tailcall"];
const SEED: u64 = 0xC0FFEE;

fn evaluator() -> BatchEvaluator {
    let ws: Vec<&'static Workload> = WORKLOADS
        .iter()
        .map(|n| zkvm_opt::workloads::by_name(n).expect("suite workload"))
        .collect();
    SuiteRunner::new()
        .batch_evaluator(&ws, VmKind::RiscZero)
        .expect("suite workloads compile")
}

fn targets(ev: &BatchEvaluator) -> Vec<TuneTarget> {
    ev.tune_targets()
}

fn candidate_cycles(ev: &BatchEvaluator, widx: usize, c: &Candidate) -> Option<u64> {
    let cfg = PassConfig {
        inline_threshold: c.inline_threshold,
        unroll_threshold: c.unroll_threshold,
        ..PassConfig::default()
    };
    ev.eval(widx, &c.passes, &cfg)
}

/// The structured-error fitness the service consumes: same pipeline as
/// [`candidate_cycles`] but failures keep their [`FailureClass`].
fn classified(ev: &BatchEvaluator, widx: usize, c: &Candidate) -> EvalResult {
    let cfg = PassConfig {
        inline_threshold: c.inline_threshold,
        unroll_threshold: c.unroll_threshold,
        ..PassConfig::default()
    };
    ev.eval_classified(widx, &c.passes, &cfg)
        .map_err(|e| e.class())
}

fn service_config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        islands: 2,
        population: 8,
        generations: 4,
        migration_interval: 2,
        seed: SEED,
        threads,
        ..Default::default()
    }
}

fn run_service(
    ev: &BatchEvaluator,
    threads: usize,
    db: &mut TuneDb,
) -> zkvm_opt::tuner::ServiceReport {
    tune_suite(&service_config(threads), &targets(ev), db, |widx, c| {
        classified(ev, widx, c)
    })
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile search is release-only (CI: test-release)"
)]
fn service_is_thread_count_independent_and_entries_remeasure_bit_identically() {
    let ev = evaluator();

    let mut db1 = TuneDb::in_memory();
    let r1 = run_service(&ev, 1, &mut db1);
    let mut db4 = TuneDb::in_memory();
    let r4 = run_service(&ev, 4, &mut db4);

    // Gate 1: same seed, different thread counts — identical databases.
    assert_eq!(
        db1.to_string_pretty(),
        db4.to_string_pretty(),
        "tune database must not depend on thread count"
    );
    assert_eq!(r1.evaluated, r4.evaluated, "equal budgets by construction");
    for (a, b) in r1.workloads.iter().zip(&r4.workloads) {
        assert_eq!(a.best, b.best, "{}", a.name);
        assert_eq!(a.best_fitness, b.best_fitness, "{}", a.name);
    }

    // Gate 3: every persisted entry reproduces its recorded cycles exactly
    // when re-measured from scratch — the cache holds truth, not staleness.
    for (widx, t) in targets(&ev).iter().enumerate() {
        let e = db4.get(t.fingerprint).expect("every workload recorded");
        let stored = Candidate {
            passes: e
                .passes
                .iter()
                .map(|p| {
                    zkvmopt_passes::find_pass(p)
                        .expect("recorded pass exists")
                        .canonical_name()
                })
                .collect(),
            inline_threshold: e.inline_threshold,
            unroll_threshold: e.unroll_threshold,
        };
        let remeasured = candidate_cycles(&ev, widx, &stored);
        assert_eq!(
            remeasured,
            Some(e.cycles),
            "{}: tune-db entry must be bit-identical to re-measurement",
            t.name
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile search is release-only (CI: test-release)"
)]
fn service_matches_or_beats_the_sequential_oracle_at_equal_budget() {
    let ev = evaluator();
    let svc_cfg = service_config(4);

    let mut db = TuneDb::in_memory();
    let report = tune_suite(&svc_cfg, &targets(&ev), &mut db, |widx, c| {
        classified(&ev, widx, c)
    });

    for (widx, w) in report.workloads.iter().enumerate() {
        // Sequential oracle at the same seed: `iterations` counts total
        // fitness evaluations, so the equal budget is exactly the service's
        // islands × population × generations.
        let oracle_cfg = TunerConfig {
            iterations: svc_cfg.budget_per_workload(),
            population: svc_cfg.population,
            max_depth: svc_cfg.max_depth,
            seed: SEED,
        };
        let oracle = autotune(&oracle_cfg, |c| candidate_cycles(&ev, widx, c));
        assert_eq!(
            w.evaluated,
            svc_cfg.budget_per_workload(),
            "{}: service budget",
            w.name
        );
        let service_best = w.best_fitness.expect("service found a valid candidate");
        assert!(
            service_best <= oracle.best_fitness,
            "{}: service ({service_best} cycles) must match or beat the \
             sequential oracle ({} cycles) at an equal budget",
            w.name,
            oracle.best_fitness
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile search is release-only (CI: test-release)"
)]
fn warm_start_through_disk_performs_zero_redundant_evaluations() {
    let ev = evaluator();
    let dir = std::env::temp_dir().join(format!("zkvmopt-tunedb-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tune.db");
    let _ = std::fs::remove_file(&path);

    // Cold run, persisted to disk.
    let mut db = TuneDb::open(&path);
    let cold = run_service(&ev, 4, &mut db);
    assert!(cold.fitness_evals > 0);
    assert_eq!(cold.db_hits, 0);
    db.save().expect("tune db saves");

    // Fresh process simulation: reload from disk, tune again.
    let mut reloaded = TuneDb::open(&path);
    assert_eq!(reloaded.len(), WORKLOADS.len());
    let warm = run_service(&ev, 4, &mut reloaded);
    assert_eq!(warm.db_hits, WORKLOADS.len());
    assert_eq!(
        warm.fitness_evals, 0,
        "warm start must perform zero redundant fitness evaluations"
    );
    assert_eq!(warm.evaluated, 0, "warm start must spend no search budget");
    for (c, w) in cold.workloads.iter().zip(&warm.workloads) {
        assert!(w.warm_started, "{}", w.name);
        assert_eq!(w.best, c.best, "{}", w.name);
        assert_eq!(w.best_fitness, c.best_fitness, "{}", w.name);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
