//! Golden static-instruction-count snapshots: per-workload post-`-O2` IR
//! instruction counts and emitted RV32 code sizes, pinned in
//! `tests/golden_static.json`.
//!
//! `golden_cycles.json` pins what the optimized programs *do*; this file pins
//! what the pass pipeline *produces*, so silent pass-pipeline drift (a pass
//! firing differently, a manager reordering, an invalidation bug making a
//! pass miss work) fails loudly even when the dynamic cost happens to stay
//! put. To regenerate after an intentional pipeline change:
//!
//! ```text
//! ZKVMOPT_BLESS=1 cargo test --release --test golden_static -- --include-ignored
//! ```
//!
//! and commit the updated JSON alongside the change that moved the numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use zkvm_opt::study::{OptLevel, OptProfile};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_static.json")
}

/// Per-workload `(IR instruction count, emitted code size)` after `-O2`.
fn current_counts() -> Vec<(String, u64, u64)> {
    let o2 = OptProfile::level(OptLevel::O2);
    zkvm_opt::workloads::all()
        .iter()
        .map(|w| {
            let mut m = zkvm_opt::lang::compile_guest(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            o2.apply(&mut m);
            let program = zkvm_opt::riscv::compile_module(&m, &o2.backend)
                .unwrap_or_else(|e| panic!("{}: codegen: {e}", w.name));
            (w.name.to_string(), m.size() as u64, program.len() as u64)
        })
        .collect()
}

fn render(rows: &[(String, u64, u64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"zkvmopt-golden-static-v1\",\n  \"profile\": \"-O2\",\n");
    s.push_str("  \"workloads\": {\n");
    for (i, (name, ir, code)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            s,
            "    \"{name}\": {{ \"ir_insts\": {ir}, \"code_size\": {code} }}{comma}"
        )
        .expect("string write");
    }
    s.push_str("  }\n}\n");
    s
}

/// Parse the subset of JSON `render` emits (one workload per line).
fn parse(text: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('"') || !line.contains("ir_insts") {
            continue;
        }
        let name = line
            .trim_start_matches('"')
            .split('"')
            .next()
            .expect("workload name")
            .to_string();
        let num_after = |key: &str| -> u64 {
            let at = line.find(key).unwrap_or_else(|| panic!("missing {key}"));
            line[at + key.len()..]
                .trim_start_matches([':', ' ', '"'])
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or_else(|e| panic!("bad number for {name}/{key}: {e}"))
        };
        let counts = (num_after("\"ir_insts\""), num_after("\"code_size\""));
        out.insert(name, counts);
    }
    out
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full-suite snapshot is release-only (CI: test-release)"
)]
fn golden_static_counts_are_stable() {
    let rows = current_counts();
    let path = golden_path();
    if std::env::var("ZKVMOPT_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, render(&rows)).expect("write golden file");
        eprintln!("blessed {} workloads into {}", rows.len(), path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); run with ZKVMOPT_BLESS=1 to generate",
            path.display()
        )
    });
    let golden = parse(&text);
    assert_eq!(golden.len(), 58, "golden file must cover the full suite");
    let mut drift = Vec::new();
    for (name, ir, code) in &rows {
        let Some(&(gi, gc)) = golden.get(name) else {
            drift.push(format!("{name}: missing from golden file"));
            continue;
        };
        if *ir != gi {
            drift.push(format!("{name}: IR insts golden {gi}, got {ir}"));
        }
        if *code != gc {
            drift.push(format!("{name}: code size golden {gc}, got {code}"));
        }
    }
    assert!(
        drift.is_empty(),
        "static counts drifted from tests/golden_static.json — if intentional, \
         rebless with ZKVMOPT_BLESS=1:\n  {}",
        drift.join("\n  ")
    );
}

/// The golden file itself must stay well-formed and round-trip through the
/// renderer (guards hand edits). Runs in debug too — it executes nothing.
#[test]
fn golden_static_file_is_well_formed() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file exists");
    let golden = parse(&text);
    assert_eq!(golden.len(), 58);
    for w in zkvm_opt::workloads::all() {
        assert!(golden.contains_key(w.name), "{} missing", w.name);
    }
    let rows: Vec<(String, u64, u64)> = zkvm_opt::workloads::all()
        .iter()
        .map(|w| {
            let (ir, code) = golden[w.name];
            (w.name.to_string(), ir, code)
        })
        .collect();
    assert_eq!(parse(&render(&rows)), golden, "render/parse round-trip");
}
