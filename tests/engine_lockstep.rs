//! Engine v3 cross-checks: lockstep multi-state rollouts are **bit-identical**
//! to sequential solo runs, and superblock traces deoptimize safely when a
//! trained branch direction flips mid-run.
//!
//! Lockstep is a scheduling optimization, not a semantic mode: every lane in
//! a cohort must report exactly the cycles, paging, journal, and exit it
//! would have reported running alone — including lanes that err out under
//! tiny cycle budgets while their neighbours run to completion. Wall-clock
//! time and the advisory `EngineStats` counters are the only fields allowed
//! to differ (trace formation credit is scheduling-dependent by design).

use proptest::prelude::*;
use std::sync::OnceLock;
use zkvm_opt::riscv::TargetCostModel;
use zkvm_opt::vm::{
    DecodedProgram, Engine, ExecConfig, ExecError, ExecutionReport, VmKind, VmProfile,
};

struct Compiled {
    name: &'static str,
    prog: DecodedProgram,
    inputs: Vec<i32>,
}

/// Every suite workload compiled once at -O0 (no passes: the baseline
/// pipeline, and the cheapest compile — this file is about the engine).
fn suite() -> &'static [Compiled] {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        zkvm_opt::workloads::all()
            .iter()
            .map(|w| {
                let m = zkvm_opt::lang::compile_guest(&w.source)
                    .unwrap_or_else(|e| panic!("{}: workload compiles: {e}", w.name));
                let p = zkvm_opt::riscv::compile_module(&m, &TargetCostModel::zk())
                    .unwrap_or_else(|e| panic!("{}: codegen: {e}", w.name));
                Compiled {
                    name: w.name,
                    prog: DecodedProgram::decode(&p),
                    inputs: w.inputs.clone(),
                }
            })
            .collect()
    })
}

/// Field-by-field report identity, excluding wall-clock time and the
/// advisory trace/probe counters (which legitimately depend on how lanes
/// were scheduled). `exec_time_ms` is derived from cycles and stays in.
fn assert_lane_matches(
    lockstep: &Result<ExecutionReport, ExecError>,
    solo: &Result<ExecutionReport, ExecError>,
    ctx: &str,
) {
    match (lockstep, solo) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.kind, b.kind, "{ctx}: kind");
            assert_eq!(a.instret, b.instret, "{ctx}: instret");
            assert_eq!(a.user_cycles, b.user_cycles, "{ctx}: user_cycles");
            assert_eq!(a.paging_cycles, b.paging_cycles, "{ctx}: paging_cycles");
            assert_eq!(a.total_cycles, b.total_cycles, "{ctx}: total_cycles");
            assert_eq!(a.page_ins, b.page_ins, "{ctx}: page_ins");
            assert_eq!(a.page_outs, b.page_outs, "{ctx}: page_outs");
            assert_eq!(a.segments, b.segments, "{ctx}: segments");
            assert_eq!(a.exit_code, b.exit_code, "{ctx}: exit_code");
            assert_eq!(a.halted, b.halted, "{ctx}: halted");
            assert_eq!(a.journal, b.journal, "{ctx}: journal");
            assert_eq!(a.mix, b.mix, "{ctx}: mix");
            assert!(
                (a.exec_time_ms - b.exec_time_ms).abs() < 1e-12,
                "{ctx}: exec_time_ms {} vs {}",
                a.exec_time_ms,
                b.exec_time_ms
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{ctx}: error"),
        (a, b) => panic!("{ctx}: lockstep {a:?} vs solo {b:?}"),
    }
}

/// Run a cohort over `jobs` in lockstep and each job solo, and demand
/// bit-identical outcomes lane by lane.
fn check_cohort(c: &Compiled, jobs: &[(VmKind, u64, Vec<i32>)]) {
    let lanes: Vec<(VmProfile, ExecConfig)> = jobs
        .iter()
        .map(|(kind, budget, inputs)| {
            (
                VmProfile::for_kind(*kind),
                ExecConfig {
                    inputs: inputs.clone(),
                    max_cycles: *budget,
                },
            )
        })
        .collect();
    let lockstep = Engine::run_lockstep(&c.prog, &lanes);
    assert_eq!(lockstep.len(), lanes.len(), "{}: lane count", c.name);
    for (l, ((profile, config), got)) in lanes.iter().zip(&lockstep).enumerate() {
        let solo = Engine::new(&c.prog, profile.clone(), config.clone()).run();
        let ctx = format!("{} lane {l} (budget {})", c.name, config.max_cycles);
        assert_lane_matches(got, &solo, &ctx);
    }
}

/// Mixed VM kinds and the pinned tiny budgets from `engine_limits.rs` in one
/// cohort: lanes hit `CycleLimit` at different blocks while a generous lane
/// runs to halt, so the convoy splits, shrinks, and finalizes incrementally.
#[test]
fn lockstep_matches_sequential_across_the_suite() {
    for c in suite() {
        let jobs: Vec<(VmKind, u64, Vec<i32>)> = VmKind::BOTH
            .iter()
            .flat_map(|&kind| {
                [0u64, 1, 13, 997, 2_000_000]
                    .into_iter()
                    .map(move |budget| (kind, budget, c.inputs.clone()))
            })
            .collect();
        check_cohort(c, &jobs);
    }
}

/// A cohort whose lanes disagree on *inputs* (not just budgets) diverges at
/// the first input-dependent branch; every group downstream of the split
/// must still account exactly like a solo run.
#[test]
fn lockstep_with_divergent_inputs_matches_sequential() {
    for c in suite() {
        let arity = c.inputs.len();
        let jobs: Vec<(VmKind, u64, Vec<i32>)> = [0i32, 1, 7, 1_000_000]
            .iter()
            .map(|&fill| (VmKind::RiscZero, 2_000_000, vec![fill; arity]))
            .collect();
        check_cohort(c, &jobs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random per-lane budgets (skewed tiny so mid-block exits are common),
    /// random shared fill input, every workload, kinds interleaved.
    #[test]
    fn random_budget_cohorts_match_sequential(
        budgets in proptest::collection::vec(0u64..4096, 6..7),
        fill in -2_000_000_000i32..2_000_000_000,
        arity in 0usize..4,
    ) {
        let inputs = vec![fill; arity];
        for c in suite() {
            let jobs: Vec<(VmKind, u64, Vec<i32>)> = budgets
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    let kind = VmKind::BOTH[i % VmKind::BOTH.len()];
                    (kind, b, inputs.clone())
                })
                .collect();
            check_cohort(c, &jobs);
        }
    }
}

/// A branch that runs one direction long enough to get a superblock trained
/// on it (threshold 64), then flips for the tail of the loop: the engine
/// must deoptimize — exiting the trace at the actual successor — and still
/// produce a report bit-identical to the reference step interpreter.
#[test]
fn superblock_deopt_on_trained_branch_flip_is_bit_identical() {
    let source = r"
        fn main() -> i32 {
          let mut acc: i32 = 0;
          for (let mut i: i32 = 0; i < 200; i += 1) {
            if (i < 150) { acc = acc + i * 3; } else { acc = acc - i; }
          }
          commit(acc);
          return acc;
        }
    ";
    let m = zkvm_opt::lang::compile_guest(source).expect("deopt guest compiles");
    let p = zkvm_opt::riscv::compile_module(&m, &TargetCostModel::zk()).expect("deopt codegen");
    let prog = DecodedProgram::decode(&p);
    for kind in VmKind::BOTH {
        let config = ExecConfig {
            inputs: vec![],
            max_cycles: 2_000_000,
        };
        let report = Engine::new(&prog, VmProfile::for_kind(kind), config)
            .run()
            .expect("deopt guest halts");
        let reference =
            zkvm_opt::vm::run_program_reference(&p, kind, &[]).expect("reference halts");
        assert_eq!(
            report.total_cycles, reference.total_cycles,
            "{kind:?}: cycles"
        );
        assert_eq!(report.instret, reference.instret, "{kind:?}: instret");
        assert_eq!(
            report.paging_cycles, reference.paging_cycles,
            "{kind:?}: paging"
        );
        assert_eq!(report.segments, reference.segments, "{kind:?}: segments");
        assert_eq!(report.journal, reference.journal, "{kind:?}: journal");
        assert_eq!(report.exit_code, reference.exit_code, "{kind:?}: exit");
        // The loop body runs 150 + 50 iterations: plenty to cross the
        // trace-formation threshold, and the flip at i == 150 must surface
        // as at least one recorded trace exit.
        assert!(
            report.stats.traces_formed >= 1,
            "{kind:?}: expected a trace to form, stats {:?}",
            report.stats
        );
        assert!(
            report.stats.trace_exits >= 1,
            "{kind:?}: expected the branch flip to deoptimize, stats {:?}",
            report.stats
        );
    }
}
