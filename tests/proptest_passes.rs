//! Property-based tests: randomly generated guest programs must behave
//! identically under every optimization pipeline and random pass sequences,
//! end to end through codegen and the zkVM.
//!
//! Coverage axes:
//! - all `-Ox` levels and zk-aware `-O3` on random programs;
//! - random sequences over the full registry, and **per-family** sequences
//!   over the `cse`, `sccp`, `loopopt`, and `ipo` pass families (with the IR
//!   verifier running after every single pass);
//! - depth-≤20 sequences drawn from the tuner's own candidate generator;
//! - `PassConfig` extremes (`inline_threshold` 0 and ≫4328,
//!   `unroll_threshold` 0, `simplifycfg_speculate` 0);
//! - reference-interpreter vs block-dispatch-engine cycle identity on the
//!   optimized output of every tuner-generated sequence.

use proptest::prelude::*;
use zkvm_opt::passes::{run_pass, PassConfig};
use zkvm_opt::study::{OptLevel, OptProfile, Pipeline, ProfileKind};
use zkvm_opt::vm::VmKind;

/// A tiny expression/program generator over the zklang subset that is always
/// well-typed and terminating.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
}

fn expr_src(e: &E) -> String {
    match e {
        E::Const(c) => format!("{c}"),
        E::Var(i) => format!("v{}", i % 4),
        E::Add(a, b) => format!("({} + {})", expr_src(a), expr_src(b)),
        E::Sub(a, b) => format!("({} - {})", expr_src(a), expr_src(b)),
        E::Mul(a, b) => format!("({} * {})", expr_src(a), expr_src(b)),
        E::Div(a, b) => format!("({} / {})", expr_src(a), expr_src(b)),
        E::Rem(a, b) => format!("({} % {})", expr_src(a), expr_src(b)),
        E::Xor(a, b) => format!("({} ^ {})", expr_src(a), expr_src(b)),
        E::Shl(a, k) => format!("({} << {})", expr_src(a), k % 31),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Const),
        (0usize..4).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, k)| E::Shl(Box::new(a), k)),
        ]
    })
}

/// Build a terminating program: seeded vars, a bounded loop with data flow
/// through the generated expressions, a conditional, and an array.
fn program(es: &[E], trip: u8) -> String {
    let body: Vec<String> = es
        .iter()
        .enumerate()
        .map(|(i, e)| format!("v{} = {};", i % 4, expr_src(e)))
        .collect();
    format!(
        "static A: [i32; 16];
         fn main() -> i32 {{
           let mut v0: i32 = read_input(0);
           let mut v1: i32 = read_input(1);
           let mut v2: i32 = 3;
           let mut v3: i32 = -7;
           for (let mut i: i32 = 0; i < {trip}; i += 1) {{
             {}
             A[i % 16] = v0 ^ v1;
             if (v2 % 2 == 0) {{ v3 += A[(v1 % 16 + 16) % 16]; }} else {{ v3 -= 1; }}
             v2 += 1;
           }}
           commit(v0); commit(v1); commit(v2); commit(v3);
           return v0 + v1 + v2 + v3;
         }}",
        body.join("\n             ")
    )
}

/// A generated program with cross-function data flow, so the interprocedural
/// (`ipo`) and loop families have real material to transform.
fn program_with_calls(es: &[E], trip: u8) -> String {
    let body: Vec<String> = es
        .iter()
        .enumerate()
        .map(|(i, e)| format!("v{} = {};", i % 4, expr_src(e)))
        .collect();
    format!(
        "static A: [i32; 16];
         fn leaf(x: i32, y: i32) -> i32 {{
           if (x % 3 == 0) {{ return x - y; }}
           return x + y * 2;
         }}
         fn mid(x: i32) -> i32 {{
           let mut acc: i32 = x;
           for (let mut j: i32 = 0; j < 4; j += 1) {{ acc = leaf(acc, j); }}
           return acc;
         }}
         fn main() -> i32 {{
           let mut v0: i32 = read_input(0);
           let mut v1: i32 = read_input(1);
           let mut v2: i32 = 5;
           let mut v3: i32 = -9;
           for (let mut i: i32 = 0; i < {trip}; i += 1) {{
             {}
             v0 = mid(v0 % 1000);
             A[i % 16] = v0 ^ v3;
             v3 += leaf(v1, v2);
             v2 += 1;
           }}
           commit(v0); commit(v1); commit(v2); commit(v3);
           return v0 + v1 + v2 + v3;
         }}",
        body.join("\n             ")
    )
}

/// The previously-untested pass families (ISSUE 4): name → member passes.
const FAMILIES: &[(&str, &[&str])] = &[
    ("cse", &["early-cse", "gvn", "newgvn"]),
    (
        "sccp",
        &["sccp", "ipsccp", "jump-threading", "correlated-propagation"],
    ),
    (
        "loopopt",
        &[
            "loop-simplify",
            "lcssa",
            "licm",
            "loop-rotate",
            "loop-unroll",
            "loop-unroll-and-jam",
            "loop-deletion",
            "loop-idiom",
            "indvars",
            "loop-reduce",
            "loop-instsimplify",
            "loop-fission",
            "simple-loop-unswitch",
            "loop-extract",
            "loop-predication",
            "loop-versioning-licm",
            "irce",
        ],
    ),
    (
        "ipo",
        &[
            "inline",
            "always-inline",
            "partial-inliner",
            "tailcall",
            "function-attrs",
            "attributor",
            "deadargelim",
            "globalopt",
            "globaldce",
            "constmerge",
        ],
    ),
];

/// The `PassConfig` extremes the paper's parameter space touches:
/// inlining off / far beyond the autotuned 4328, unrolling off, and
/// speculation off. `verify_each` is on so every pass runs the IR verifier.
fn extreme_configs() -> Vec<(&'static str, PassConfig)> {
    let base = PassConfig {
        verify_each: true,
        ..PassConfig::default()
    };
    vec![
        (
            "inline-threshold-0",
            PassConfig {
                inline_threshold: 0,
                ..base.clone()
            },
        ),
        (
            "inline-threshold-max",
            PassConfig {
                inline_threshold: 100_000,
                ..base.clone()
            },
        ),
        (
            "unroll-threshold-0",
            PassConfig {
                unroll_threshold: 0,
                ..base.clone()
            },
        ),
        (
            "speculate-0",
            PassConfig {
                simplifycfg_speculate: 0,
                ..base.clone()
            },
        ),
        (
            "all-extremes",
            PassConfig {
                inline_threshold: 100_000,
                unroll_threshold: 0,
                simplifycfg_speculate: 0,
                ..base
            },
        ),
    ]
}

/// Apply `seq` one pass at a time with the IR verifier after every pass
/// (`run_pass` panics if a pass breaks the IR when `verify_each` is set),
/// then codegen and execute, asserting behaviour matches `base`. Returns the
/// compiled program so callers can make further executor-level checks.
fn apply_and_check(
    src: &str,
    inputs: &[i32],
    seq: &[&str],
    cfg: &PassConfig,
    base: &zkvm_opt::study::RunReport,
    ctx: &str,
) -> zkvm_opt::riscv::Program {
    let mut m =
        zkvm_opt::lang::compile_guest(src).unwrap_or_else(|e| panic!("{ctx}: compile: {e}\n{src}"));
    let cfg = PassConfig {
        verify_each: true,
        ..cfg.clone()
    };
    for pass in seq {
        run_pass(pass, &mut m, &cfg); // verifier runs after each pass
    }
    let prog = zkvm_opt::riscv::compile_module(&m, &zkvm_opt::riscv::TargetCostModel::cpu())
        .unwrap_or_else(|e| panic!("{ctx}: codegen after {seq:?}: {e}"));
    let r = zkvm_opt::vm::run_program(&prog, VmKind::Sp1, inputs)
        .unwrap_or_else(|e| panic!("{ctx}: exec after {seq:?}: {e}"));
    assert_eq!(
        r.journal, base.exec.journal,
        "{ctx}: journal after {seq:?}\n{src}"
    );
    assert_eq!(
        r.exit_code, base.exec.exit_code,
        "{ctx}: exit after {seq:?}\n{src}"
    );
    prog
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_behave_identically_under_all_levels(
        es in prop::collection::vec(arb_expr(), 1..5),
        trip in 1u8..20,
        inputs in prop::array::uniform2(-10_000i32..10_000),
    ) {
        let src = program(&es, trip);
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::RiscZero)
            .expect("baseline runs");
        for level in OptLevel::ALL {
            let r = Pipeline::new(OptProfile::level(level))
                .run_source(&src, &inputs, VmKind::RiscZero)
                .unwrap_or_else(|e| panic!("{level:?}: {e}\n{src}"));
            prop_assert_eq!(&r.exec.journal, &base.exec.journal, "{:?} journal\n{}", level, &src);
            prop_assert_eq!(r.exec.exit_code, base.exec.exit_code, "{:?} exit\n{}", level, &src);
        }
        let r = Pipeline::new(OptProfile::zk_o3())
            .run_source(&src, &inputs, VmKind::RiscZero)
            .expect("zk-O3 runs");
        prop_assert_eq!(&r.exec.journal, &base.exec.journal);
    }

    #[test]
    fn random_pass_sequences_preserve_behaviour(
        es in prop::collection::vec(arb_expr(), 1..4),
        trip in 1u8..12,
        picks in prop::collection::vec(0usize..64, 1..10),
        inputs in prop::array::uniform2(-1000i32..1000),
    ) {
        let src = program(&es, trip);
        let names = zkvm_opt::study::studied_passes();
        let seq: Vec<&'static str> = picks.iter().map(|i| names[i % names.len()]).collect();
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::Sp1)
            .expect("baseline runs");
        let profile = OptProfile::sequence(
            "random-seq",
            seq.clone(),
            zkvm_opt::passes::PassConfig::default(),
        );
        let r = Pipeline::new(profile)
            .run_source(&src, &inputs, VmKind::Sp1)
            .unwrap_or_else(|e| panic!("{seq:?}: {e}\n{src}"));
        prop_assert_eq!(&r.exec.journal, &base.exec.journal, "{:?}\n{}", &seq, &src);
        prop_assert_eq!(r.exec.exit_code, base.exec.exit_code);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random sequences drawn from *within* each previously-untested pass
    /// family (`cse`, `sccp`, `loopopt`, `ipo`), applied pass-by-pass with
    /// the IR verifier after every pass, on call-heavy generated programs.
    #[test]
    fn pass_families_verify_and_preserve(
        es in prop::collection::vec(arb_expr(), 1..4),
        trip in 1u8..10,
        picks in prop::collection::vec(0usize..64, 2..8),
        inputs in prop::array::uniform2(-1000i32..1000),
    ) {
        let src = program_with_calls(&es, trip);
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::Sp1)
            .expect("baseline runs");
        for (family, members) in FAMILIES {
            // Family sequences always start from mem2reg so the family's
            // passes see promoted SSA (how every real pipeline runs them).
            let mut seq: Vec<&str> = vec!["mem2reg"];
            seq.extend(picks.iter().map(|i| members[i % members.len()]));
            apply_and_check(&src, &inputs, &seq, &PassConfig::default(), &base, family);
        }
    }

    /// Depth-≤20 sequences drawn from the tuner's own candidate generator,
    /// verified after every pass — and the optimized output must execute
    /// with **bit-identical cycle accounting** on the reference interpreter
    /// and the block-dispatch engine (regression muscle for the engine).
    #[test]
    fn tuner_generator_sequences_verify_and_match_engines(
        seed in 0u64..1_000_000,
        es in prop::collection::vec(arb_expr(), 1..4),
        trip in 1u8..10,
        inputs in prop::array::uniform2(-1000i32..1000),
    ) {
        let cand = zkvm_opt::tuner::Candidate::random(seed, 20);
        prop_assert!(cand.passes.len() <= 20);
        let src = program_with_calls(&es, trip);
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::Sp1)
            .expect("baseline runs");
        let prog = apply_and_check(
            &src, &inputs, &cand.passes, &cand.pass_config(), &base, "tuner-candidate",
        );
        for vm in VmKind::BOTH {
            let old = zkvm_opt::vm::run_program_reference(&prog, vm, &inputs)
                .unwrap_or_else(|e| panic!("reference: {e}"));
            let new = zkvm_opt::vm::run_program(&prog, vm, &inputs)
                .unwrap_or_else(|e| panic!("engine: {e}"));
            prop_assert_eq!(new.total_cycles, old.total_cycles, "total cycles on {}", vm);
            prop_assert_eq!(new.instret, old.instret, "instret on {}", vm);
            prop_assert_eq!(new.paging_cycles, old.paging_cycles, "paging on {}", vm);
            prop_assert_eq!(new.segments, old.segments, "segments on {}", vm);
            prop_assert_eq!(&new.journal, &old.journal, "journal on {}", vm);
            prop_assert_eq!(new.mix, old.mix, "mix on {}", vm);
        }
    }

    /// `PassConfig` extremes (`inline_threshold` 0 / ≫4328,
    /// `unroll_threshold` 0, `simplifycfg_speculate` 0) under the full -O2
    /// and -O3 pipelines, with per-pass verification enabled.
    #[test]
    fn config_extremes_preserve_behaviour(
        es in prop::collection::vec(arb_expr(), 1..4),
        trip in 1u8..10,
        inputs in prop::array::uniform2(-1000i32..1000),
    ) {
        let src = program_with_calls(&es, trip);
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::Sp1)
            .expect("baseline runs");
        for (name, cfg) in extreme_configs() {
            for level in [OptLevel::O2, OptLevel::O3] {
                let profile = OptProfile {
                    name: format!("{level:?}-{name}"),
                    kind: ProfileKind::Level(level),
                    pass_config: cfg.clone(),
                    backend: zkvm_opt::riscv::TargetCostModel::cpu(),
                };
                let r = Pipeline::new(profile)
                    .run_source(&src, &inputs, VmKind::Sp1)
                    .unwrap_or_else(|e| panic!("{name} at {level:?}: {e}\n{src}"));
                prop_assert_eq!(
                    &r.exec.journal, &base.exec.journal,
                    "{} at {:?}: journal\n{}", name, level, &src
                );
                prop_assert_eq!(r.exec.exit_code, base.exec.exit_code);
            }
        }
    }
}
