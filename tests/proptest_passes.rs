//! Property-based tests: randomly generated guest programs must behave
//! identically under every optimization pipeline and random pass sequences,
//! end to end through codegen and the zkVM.

use proptest::prelude::*;
use zkvm_opt::study::{OptLevel, OptProfile, Pipeline};
use zkvm_opt::vm::VmKind;

/// A tiny expression/program generator over the zklang subset that is always
/// well-typed and terminating.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
}

fn expr_src(e: &E) -> String {
    match e {
        E::Const(c) => format!("{c}"),
        E::Var(i) => format!("v{}", i % 4),
        E::Add(a, b) => format!("({} + {})", expr_src(a), expr_src(b)),
        E::Sub(a, b) => format!("({} - {})", expr_src(a), expr_src(b)),
        E::Mul(a, b) => format!("({} * {})", expr_src(a), expr_src(b)),
        E::Div(a, b) => format!("({} / {})", expr_src(a), expr_src(b)),
        E::Rem(a, b) => format!("({} % {})", expr_src(a), expr_src(b)),
        E::Xor(a, b) => format!("({} ^ {})", expr_src(a), expr_src(b)),
        E::Shl(a, k) => format!("({} << {})", expr_src(a), k % 31),
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Const),
        (0usize..4).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..31).prop_map(|(a, k)| E::Shl(Box::new(a), k)),
        ]
    })
}

/// Build a terminating program: seeded vars, a bounded loop with data flow
/// through the generated expressions, a conditional, and an array.
fn program(es: &[E], trip: u8) -> String {
    let body: Vec<String> = es
        .iter()
        .enumerate()
        .map(|(i, e)| format!("v{} = {};", i % 4, expr_src(e)))
        .collect();
    format!(
        "static A: [i32; 16];
         fn main() -> i32 {{
           let mut v0: i32 = read_input(0);
           let mut v1: i32 = read_input(1);
           let mut v2: i32 = 3;
           let mut v3: i32 = -7;
           for (let mut i: i32 = 0; i < {trip}; i += 1) {{
             {}
             A[i % 16] = v0 ^ v1;
             if (v2 % 2 == 0) {{ v3 += A[(v1 % 16 + 16) % 16]; }} else {{ v3 -= 1; }}
             v2 += 1;
           }}
           commit(v0); commit(v1); commit(v2); commit(v3);
           return v0 + v1 + v2 + v3;
         }}",
        body.join("\n             ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_programs_behave_identically_under_all_levels(
        es in prop::collection::vec(arb_expr(), 1..5),
        trip in 1u8..20,
        inputs in prop::array::uniform2(-10_000i32..10_000),
    ) {
        let src = program(&es, trip);
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::RiscZero)
            .expect("baseline runs");
        for level in OptLevel::ALL {
            let r = Pipeline::new(OptProfile::level(level))
                .run_source(&src, &inputs, VmKind::RiscZero)
                .unwrap_or_else(|e| panic!("{level:?}: {e}\n{src}"));
            prop_assert_eq!(&r.exec.journal, &base.exec.journal, "{:?} journal\n{}", level, &src);
            prop_assert_eq!(r.exec.exit_code, base.exec.exit_code, "{:?} exit\n{}", level, &src);
        }
        let r = Pipeline::new(OptProfile::zk_o3())
            .run_source(&src, &inputs, VmKind::RiscZero)
            .expect("zk-O3 runs");
        prop_assert_eq!(&r.exec.journal, &base.exec.journal);
    }

    #[test]
    fn random_pass_sequences_preserve_behaviour(
        es in prop::collection::vec(arb_expr(), 1..4),
        trip in 1u8..12,
        picks in prop::collection::vec(0usize..64, 1..10),
        inputs in prop::array::uniform2(-1000i32..1000),
    ) {
        let src = program(&es, trip);
        let names = zkvm_opt::study::studied_passes();
        let seq: Vec<&'static str> = picks.iter().map(|i| names[i % names.len()]).collect();
        let base = Pipeline::new(OptProfile::baseline())
            .run_source(&src, &inputs, VmKind::Sp1)
            .expect("baseline runs");
        let profile = OptProfile::sequence(
            "random-seq",
            seq.clone(),
            zkvm_opt::passes::PassConfig::default(),
        );
        let r = Pipeline::new(profile)
            .run_source(&src, &inputs, VmKind::Sp1)
            .unwrap_or_else(|e| panic!("{seq:?}: {e}\n{src}"));
        prop_assert_eq!(&r.exec.journal, &base.exec.journal, "{:?}\n{}", &seq, &src);
        prop_assert_eq!(r.exec.exit_code, base.exec.exit_code);
    }
}
