//! Workspace smoke test: exercises the facade path end to end by hand —
//! parse a tiny zklang program, run one optimization pass, generate RV32IM
//! code, execute it in the zkVM, and check the result against the IR
//! interpreter oracle. This is the minimal "is the crate graph wired
//! together" check; `differential.rs` covers the same path at suite scale.

use zkvm_opt::ir::interp::InterpConfig;
use zkvm_opt::ir::Interp;
use zkvm_opt::passes::{run_pass, PassConfig};
use zkvm_opt::riscv::{compile_module, TargetCostModel};
use zkvm_opt::vm::{run_program, CryptoEcalls, VmKind};

const SRC: &str = "
    fn main() -> i32 {
      let mut acc: i32 = read_input(0);
      let mut i: i32 = 0;
      while (i < 100) {
        acc = (acc * 31 + i) % 65521;
        i += 1;
      }
      commit(acc);
      return acc;
    }";

const INPUTS: &[i32] = &[7];

#[test]
fn facade_pipeline_matches_oracle_step_by_step() {
    // 1. Parse + lower the zklang source through the facade re-export.
    let mut module = zkvm_opt::lang::compile_guest(SRC).expect("tiny program compiles");

    // 2. Oracle first: interpret the unoptimized IR.
    let cfg = InterpConfig {
        inputs: INPUTS.to_vec(),
        ..Default::default()
    };
    let oracle = Interp::new(&module, cfg, CryptoEcalls)
        .run_main()
        .expect("oracle runs");
    assert!(!oracle.journal.is_empty(), "guest must commit something");

    // 3. Run one real pass over the module.
    run_pass("mem2reg", &mut module, &PassConfig::default());
    zkvm_opt::ir::verify::verify_module(&module).expect("IR stays valid after mem2reg");

    // 4. Codegen to RV32IM and execute on both zkVM cost models.
    let prog = compile_module(&module, &TargetCostModel::zk()).expect("codegen succeeds");
    for vm in VmKind::BOTH {
        let r = run_program(&prog, vm, INPUTS).expect("vm executes");
        assert_eq!(r.exit_code as i64, oracle.exit_value, "{vm}: exit code");
        assert_eq!(r.journal, oracle.journal, "{vm}: journal");
        assert!(r.total_cycles > 0, "{vm}: cycles must be metered");
    }
}

#[test]
fn facade_study_driver_agrees_with_manual_path() {
    use zkvm_opt::prelude::*;

    let report = Pipeline::new(OptProfile::level(OptLevel::O2))
        .run_source(SRC, INPUTS, VmKind::RiscZero)
        .expect("study pipeline runs");

    let module = zkvm_opt::lang::compile_guest(SRC).expect("compiles");
    let cfg = InterpConfig {
        inputs: INPUTS.to_vec(),
        ..Default::default()
    };
    let oracle = Interp::new(&module, cfg, CryptoEcalls)
        .run_main()
        .expect("oracle runs");

    assert_eq!(
        report.exec.journal, oracle.journal,
        "study driver output matches oracle"
    );
    assert_eq!(report.exec.exit_code as i64, oracle.exit_value);
    assert!(gain(2.0, 1.0) > 0.0, "facade prelude helpers are wired");
}
