//! Chaos gates for the fault-tolerant tuning service, on the **real**
//! compile-and-execute pipeline:
//!
//! 1. **Fault convergence** — deterministic injected panics, traps, and
//!    budget blowouts at a ≥10% combined rate produce a tune database
//!    **bit-identical** to the fault-free run (transient faults are capped
//!    below the retry budget, so every candidate's true fitness comes
//!    through).
//! 2. **Kill + resume** — a child process runs the service with
//!    checkpointing and `abort()`s mid-search at an arbitrary point; the
//!    parent resumes from whatever checkpoint survived and must reach the
//!    same database as an uninterrupted run, with no lost entries and no
//!    redundant re-evaluation of checkpointed candidates.
//! 3. **Corrupted-checkpoint recovery** — a garbled checkpoint is salvaged
//!    (`CheckpointStatus::Recovered`), and the run still converges.
//!
//! The search evaluates real compiles, so the suite is release-only:
//!
//! ```text
//! cargo test --release --test fault_injection -- --include-ignored
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use zkvm_opt::study::SuiteRunner;
use zkvm_opt::tuner::{
    tune_suite, Candidate, CheckpointStatus, EvalResult, FaultConfig, FaultPlan, ServiceConfig,
    TuneDb, TuneTarget,
};
use zkvmopt_core::BatchEvaluator;
use zkvmopt_passes::PassConfig;
use zkvmopt_workloads::Workload;

const WORKLOADS: [&str; 3] = ["loop-sum", "fibonacci", "tailcall"];
const SEED: u64 = 0xFA_B1E;

fn evaluator() -> BatchEvaluator {
    let ws: Vec<&'static Workload> = WORKLOADS
        .iter()
        .map(|n| zkvm_opt::workloads::by_name(n).expect("suite workload"))
        .collect();
    SuiteRunner::new()
        .batch_evaluator(&ws, zkvm_opt::vm::VmKind::RiscZero)
        .expect("suite workloads compile")
}

fn targets(ev: &BatchEvaluator) -> Vec<TuneTarget> {
    ev.tune_targets()
}

fn classified(ev: &BatchEvaluator, widx: usize, c: &Candidate) -> EvalResult {
    let cfg = PassConfig {
        inline_threshold: c.inline_threshold,
        unroll_threshold: c.unroll_threshold,
        ..PassConfig::default()
    };
    ev.eval_classified(widx, &c.passes, &cfg)
        .map_err(|e| e.class())
}

/// One shared search shape: every test (and the aborted child process) must
/// use the identical configuration or checkpoint digests will not match.
fn config(threads: usize) -> ServiceConfig {
    ServiceConfig {
        islands: 2,
        population: 4,
        generations: 3,
        migration_interval: 2,
        seed: SEED,
        threads,
        ..Default::default()
    }
}

/// The uninterrupted, fault-free run every gate compares against.
fn reference_run(ev: &BatchEvaluator) -> (TuneDb, zkvm_opt::tuner::ServiceReport) {
    let mut db = TuneDb::in_memory();
    let report = tune_suite(&config(1), &targets(ev), &mut db, |widx, c| {
        classified(ev, widx, c)
    });
    (db, report)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("zkvmopt-fi-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile chaos run is release-only (CI: chaos)"
)]
fn transient_faults_at_ten_percent_rates_converge_to_the_fault_free_db() {
    let ev = evaluator();
    let (clean, _) = reference_run(&ev);

    // ≥10% combined transient-fault rate, injections capped strictly below
    // the service's retry budget so the true value always comes through.
    let svc = config(4);
    let faults = FaultConfig {
        panic_rate: 0.12,
        trap_rate: 0.10,
        budget_rate: 0.06,
        max_injections: 2,
        ..Default::default()
    };
    assert!(faults.max_injections as usize <= svc.max_retries);
    let plan = FaultPlan::new(faults);
    let fitness = plan.wrap(|widx, c: &Candidate| classified(&ev, widx, c));

    let mut chaos_db = TuneDb::in_memory();
    let report = tune_suite(&svc, &targets(&ev), &mut chaos_db, fitness);

    let injected = plan.injected();
    assert!(
        !injected.is_empty(),
        "the plan must actually have fired at these rates"
    );
    assert!(
        report.retries > 0,
        "injected faults must surface as retries"
    );
    assert_eq!(
        report.evaluated,
        report.fitness_evals + report.cache_hits - report.retries,
        "retry accounting must balance the budget"
    );
    assert_eq!(
        clean.to_string_pretty(),
        chaos_db.to_string_pretty(),
        "transient faults under the retry cap must not change the database"
    );
}

/// Child half of the kill/resume gate: runs the checkpointing service and
/// `abort()`s after `ZKVMOPT_FI_KILL_AFTER` fitness calls. Spawned by
/// `kill_at_arbitrary_points_then_resume_loses_no_entries`; inert (passes
/// vacuously) when the driving environment variables are absent.
#[test]
#[ignore = "subprocess half of the kill/resume gate; driven via env vars"]
fn kill_resume_child() {
    let (Ok(ckpt), Ok(kill_after)) = (
        std::env::var("ZKVMOPT_FI_CKPT"),
        std::env::var("ZKVMOPT_FI_KILL_AFTER"),
    ) else {
        return;
    };
    let kill_after: usize = kill_after.parse().expect("kill-after count");
    let ev = evaluator();
    let mut cfg = config(1);
    cfg.checkpoint_path = Some(ckpt.into());
    cfg.checkpoint_interval = 1;

    let calls = AtomicUsize::new(0);
    let mut db = TuneDb::in_memory();
    tune_suite(&cfg, &targets(&ev), &mut db, |widx, c| {
        if calls.fetch_add(1, Ordering::Relaxed) + 1 == kill_after {
            std::process::abort(); // simulated crash mid-search
        }
        classified(&ev, widx, c)
    });
    // Reachable only if the kill point exceeds the total fitness calls: the
    // parent always picks one inside the budget, so getting here is a bug.
    std::process::exit(3);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile kill/resume gate is release-only (CI: chaos)"
)]
fn kill_at_arbitrary_points_then_resume_loses_no_entries() {
    let ev = evaluator();
    let (clean_db, clean) = reference_run(&ev);
    let reference = clean_db.to_string_pretty();
    let dir = temp_dir("killresume");
    let ckpt = dir.join("service.ckpt");
    let exe = std::env::current_exe().expect("test binary path");

    // Kill very early (likely before the first checkpoint barrier), mid-run,
    // and late (most of the search already checkpointed).
    for kill_after in [3usize, 17, 40] {
        let _ = std::fs::remove_file(&ckpt);
        let status = std::process::Command::new(&exe)
            .args(["--exact", "kill_resume_child", "--ignored", "--nocapture"])
            .env("ZKVMOPT_FI_CKPT", &ckpt)
            .env("ZKVMOPT_FI_KILL_AFTER", kill_after.to_string())
            .status()
            .expect("spawn child");
        assert!(
            !status.success(),
            "kill@{kill_after}: child must die mid-search (got {status})"
        );

        // Resume against whatever checkpoint (if any) the crash left behind.
        let mut cfg = config(1);
        cfg.checkpoint_path = Some(ckpt.clone());
        let mut db = TuneDb::in_memory();
        let report = tune_suite(&cfg, &targets(&ev), &mut db, |widx, c| {
            classified(&ev, widx, c)
        });

        assert_eq!(
            db.to_string_pretty(),
            reference,
            "kill@{kill_after}: resumed database must match the uninterrupted run"
        );
        match report.checkpoint_status {
            CheckpointStatus::Absent => {
                assert_eq!(report.resumed_entries, 0, "kill@{kill_after}");
            }
            CheckpointStatus::Loaded { entries } => {
                assert_eq!(report.resumed_entries, entries, "kill@{kill_after}");
                assert!(entries > 0, "kill@{kill_after}: loaded an empty checkpoint");
            }
            ref other => panic!("kill@{kill_after}: unexpected checkpoint status {other:?}"),
        }
        // Zero redundant evaluations: the deterministic replay re-requests
        // exactly the fault-free run's key set, and every checkpointed key
        // is answered from the preload instead of a fitness call.
        assert_eq!(
            report.fitness_evals,
            clean.fitness_evals - report.resumed_entries,
            "kill@{kill_after}: checkpointed work was re-evaluated"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "real-compile recovery gate is release-only (CI: chaos)"
)]
fn corrupted_checkpoints_are_salvaged_and_still_converge() {
    let ev = evaluator();
    let (clean_db, _) = reference_run(&ev);
    let reference = clean_db.to_string_pretty();
    let dir = temp_dir("recover");
    let ckpt = dir.join("service.ckpt");

    // A complete run leaves a full checkpoint behind.
    let mut cfg = config(1);
    cfg.checkpoint_path = Some(ckpt.clone());
    let mut db = TuneDb::in_memory();
    tune_suite(&cfg, &targets(&ev), &mut db, |widx, c| {
        classified(&ev, widx, c)
    });
    assert_eq!(db.to_string_pretty(), reference);

    // Garble the middle of the file: flip one line to junk, truncate the
    // tail mid-line — the salvage path must keep the valid prefix lines.
    let text = std::fs::read_to_string(&ckpt).expect("checkpoint exists");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 4, "expected a populated checkpoint");
    let mut garbled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mid = garbled.len() / 2;
    garbled[mid] = "deadbeef not-a-number parse".to_string();
    let last = garbled.len() - 1;
    garbled[last] = garbled[last][..garbled[last].len() / 2].to_string();
    std::fs::write(&ckpt, garbled.join("\n")).expect("write garbled checkpoint");

    let mut db2 = TuneDb::in_memory();
    let report = tune_suite(&cfg, &targets(&ev), &mut db2, |widx, c| {
        classified(&ev, widx, c)
    });
    match report.checkpoint_status {
        CheckpointStatus::Recovered { kept, dropped, .. } => {
            assert!(dropped > 0, "garbled lines must be counted as dropped");
            assert_eq!(report.resumed_entries, kept);
        }
        ref other => panic!("expected Recovered, got {other:?}"),
    }
    assert_eq!(
        db2.to_string_pretty(),
        reference,
        "salvaged resume must still converge to the uninterrupted database"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
