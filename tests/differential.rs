//! Workspace-level differential tests: every optimization profile must
//! preserve guest-visible behaviour on real suite workloads, end to end
//! (frontend → passes → codegen → zkVM), against the IR-interpreter oracle.
//!
//! The suite-wide harness at the bottom runs **all 58 workloads × {O0, O1,
//! O2, O3, zk-aware} × both VM kinds** through three independent executors —
//! the IR interpreter (oracle for guest-visible outputs), the original
//! decode-per-step interpreter (`reference` feature), and the block-dispatch
//! engine — and demands matching outputs *and* bit-identical cycle
//! accounting between the two machine-code executors. It is ignored in
//! debug builds (too slow for the tier-1 `cargo test -q`); CI runs it in the
//! `test-release` job, and locally:
//!
//! ```text
//! cargo test --release --test differential -- --include-ignored
//! ```

use zkvm_opt::study::{measure, OptLevel, OptProfile, SuiteRunner};
use zkvm_opt::vm::VmKind;

/// A cross-suite sample kept small enough for debug-mode CI.
const SAMPLE: &[&str] = &[
    "polybench-atax",
    "polybench-floyd-warshall",
    "polybench-nussinov",
    "npb-ep",
    "npb-is",
    "spec-631",
    "sha2-chain",
    "merkle",
    "regex-match",
    "rsp",
    "fibonacci",
    "tailcall",
];

#[test]
fn all_opt_levels_preserve_behaviour_on_sample() {
    for name in SAMPLE {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (_, base) = measure(w, &OptProfile::baseline(), VmKind::RiscZero, false, None)
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        for level in OptLevel::ALL {
            measure(
                w,
                &OptProfile::level(level),
                VmKind::RiscZero,
                false,
                Some(&base),
            )
            .unwrap_or_else(|e| panic!("{name} at {level:?}: {e}"));
        }
        measure(
            w,
            &OptProfile::zk_o3(),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .unwrap_or_else(|e| panic!("{name} at zk-O3: {e}"));
    }
}

#[test]
fn every_single_pass_preserves_behaviour_on_two_programs() {
    for name in ["polybench-doitgen", "loop-sum"] {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (_, base) = measure(w, &OptProfile::baseline(), VmKind::Sp1, false, None)
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        for pass in zkvm_opt::study::studied_passes() {
            measure(
                w,
                &OptProfile::single_pass(pass),
                VmKind::Sp1,
                false,
                Some(&base),
            )
            .unwrap_or_else(|e| panic!("{name} under {pass}: {e}"));
        }
    }
}

#[test]
fn vm_matches_ir_interpreter_on_sample() {
    for name in SAMPLE {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let m = zkvm_opt::lang::compile_guest(&w.source).expect("compiles");
        let cfg = zkvm_opt::ir::interp::InterpConfig {
            inputs: w.inputs.clone(),
            ..Default::default()
        };
        let oracle = zkvm_opt::ir::Interp::new(&m, cfg, zkvm_opt::vm::CryptoEcalls)
            .run_main()
            .unwrap_or_else(|e| panic!("{name} oracle: {e}"));
        let prog = zkvm_opt::riscv::compile_module(&m, &zkvm_opt::riscv::TargetCostModel::zk())
            .expect("codegen");
        let r = zkvm_opt::vm::run_program(&prog, VmKind::RiscZero, &w.inputs)
            .unwrap_or_else(|e| panic!("{name} vm: {e}"));
        assert_eq!(r.exit_code as i64, oracle.exit_value, "{name} exit");
        assert_eq!(r.journal, oracle.journal, "{name} journal");
    }
}

#[test]
fn both_vms_agree_on_guest_behaviour() {
    for name in ["npb-ft", "sha3-bench", "zkvm-mnist"] {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (r0, _) = measure(
            w,
            &OptProfile::level(OptLevel::O2),
            VmKind::RiscZero,
            false,
            None,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (sp1, _) = measure(
            w,
            &OptProfile::level(OptLevel::O2),
            VmKind::Sp1,
            false,
            None,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(r0.instret, sp1.instret, "{name}: instret is VM-independent");
    }
}

/// The five profiles the suite-wide harness sweeps (the paper's main axes).
fn suite_profiles() -> Vec<OptProfile> {
    let mut ps: Vec<OptProfile> = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3]
        .iter()
        .map(|&l| OptProfile::level(l))
        .collect();
    ps.push(OptProfile::zk_o3());
    ps
}

/// All 58 workloads × {O0, O1, O2, O3, zk-aware} × both VM kinds:
/// guest-visible outputs must match the IR-interpreter oracle, and the
/// block-dispatch engine's full cost accounting must be bit-identical to the
/// reference step interpreter.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "suite-wide sweep is release-only (CI: test-release)"
)]
fn suite_wide_differential_harness() {
    let mut runner = SuiteRunner::new();
    let profiles = suite_profiles();
    let mut checked = 0usize;
    for w in zkvm_opt::workloads::all() {
        // Oracle: the IR interpreter on the *unoptimized* module.
        let m = zkvm_opt::lang::compile_guest(&w.source).expect("compiles");
        let cfg = zkvm_opt::ir::interp::InterpConfig {
            inputs: w.inputs.clone(),
            ..Default::default()
        };
        let oracle = zkvm_opt::ir::Interp::new(&m, cfg, zkvm_opt::vm::CryptoEcalls)
            .run_main()
            .unwrap_or_else(|e| panic!("{} oracle: {e}", w.name));
        for profile in &profiles {
            let cw = runner
                .compile(w, profile)
                .unwrap_or_else(|e| panic!("{} at {}: {e}", w.name, profile.name));
            for vm in VmKind::BOTH {
                let ctx = format!("{} at {} on {vm}", w.name, profile.name);
                let new = zkvm_opt::vm::run_decoded(&cw.decoded, vm, &w.inputs)
                    .unwrap_or_else(|e| panic!("{ctx} engine: {e}"));
                // Guest-visible outputs vs the oracle.
                assert_eq!(new.exit_code as i64, oracle.exit_value, "{ctx}: exit");
                assert_eq!(new.journal, oracle.journal, "{ctx}: journal");
                // Full cost accounting vs the old step interpreter.
                let old = zkvm_opt::vm::run_program_reference(&cw.program, vm, &w.inputs)
                    .unwrap_or_else(|e| panic!("{ctx} reference: {e}"));
                assert_eq!(new.instret, old.instret, "{ctx}: instret");
                assert_eq!(new.user_cycles, old.user_cycles, "{ctx}: user_cycles");
                assert_eq!(new.paging_cycles, old.paging_cycles, "{ctx}: paging_cycles");
                assert_eq!(new.total_cycles, old.total_cycles, "{ctx}: total_cycles");
                assert_eq!(new.page_ins, old.page_ins, "{ctx}: page_ins");
                assert_eq!(new.page_outs, old.page_outs, "{ctx}: page_outs");
                assert_eq!(new.segments, old.segments, "{ctx}: segments");
                assert_eq!(new.exit_code, old.exit_code, "{ctx}: exit_code");
                assert_eq!(new.halted, old.halted, "{ctx}: halted");
                assert_eq!(new.journal, old.journal, "{ctx}: journal vs reference");
                assert_eq!(new.mix, old.mix, "{ctx}: instruction mix");
                checked += 1;
            }
        }
    }
    assert_eq!(
        checked,
        58 * 5 * 2,
        "harness must cover the full {{workload x profile x vm}} matrix"
    );
}

#[test]
fn toy_prover_binds_suite_outputs() {
    let w = zkvm_opt::workloads::by_name("factorial").expect("exists");
    let pipeline = zkvm_opt::study::Pipeline::new(OptProfile::level(OptLevel::O2));
    let r = pipeline.run_workload(w, VmKind::RiscZero).expect("runs");
    let model = zkvm_opt::prover::ProvingModel::risc_zero();
    let proof = zkvm_opt::prover::toy_prove(&model, &r.exec);
    assert!(zkvm_opt::prover::toy_verify(&model, &r.exec, &proof));
}
