//! Workspace-level differential tests: every optimization profile must
//! preserve guest-visible behaviour on real suite workloads, end to end
//! (frontend → passes → codegen → zkVM), against the IR-interpreter oracle.

use zkvm_opt::study::{measure, OptLevel, OptProfile};
use zkvm_opt::vm::VmKind;

/// A cross-suite sample kept small enough for debug-mode CI.
const SAMPLE: &[&str] = &[
    "polybench-atax",
    "polybench-floyd-warshall",
    "polybench-nussinov",
    "npb-ep",
    "npb-is",
    "spec-631",
    "sha2-chain",
    "merkle",
    "regex-match",
    "rsp",
    "fibonacci",
    "tailcall",
];

#[test]
fn all_opt_levels_preserve_behaviour_on_sample() {
    for name in SAMPLE {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (_, base) = measure(w, &OptProfile::baseline(), VmKind::RiscZero, false, None)
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        for level in OptLevel::ALL {
            measure(
                w,
                &OptProfile::level(level),
                VmKind::RiscZero,
                false,
                Some(&base),
            )
            .unwrap_or_else(|e| panic!("{name} at {level:?}: {e}"));
        }
        measure(
            w,
            &OptProfile::zk_o3(),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .unwrap_or_else(|e| panic!("{name} at zk-O3: {e}"));
    }
}

#[test]
fn every_single_pass_preserves_behaviour_on_two_programs() {
    for name in ["polybench-doitgen", "loop-sum"] {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (_, base) = measure(w, &OptProfile::baseline(), VmKind::Sp1, false, None)
            .unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        for pass in zkvm_opt::study::studied_passes() {
            measure(
                w,
                &OptProfile::single_pass(pass),
                VmKind::Sp1,
                false,
                Some(&base),
            )
            .unwrap_or_else(|e| panic!("{name} under {pass}: {e}"));
        }
    }
}

#[test]
fn vm_matches_ir_interpreter_on_sample() {
    for name in SAMPLE {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let m = zkvm_opt::lang::compile_guest(&w.source).expect("compiles");
        let cfg = zkvm_opt::ir::interp::InterpConfig {
            inputs: w.inputs.clone(),
            ..Default::default()
        };
        let oracle = zkvm_opt::ir::Interp::new(&m, cfg, zkvm_opt::vm::CryptoEcalls)
            .run_main()
            .unwrap_or_else(|e| panic!("{name} oracle: {e}"));
        let prog = zkvm_opt::riscv::compile_module(&m, &zkvm_opt::riscv::TargetCostModel::zk())
            .expect("codegen");
        let r = zkvm_opt::vm::run_program(&prog, VmKind::RiscZero, &w.inputs)
            .unwrap_or_else(|e| panic!("{name} vm: {e}"));
        assert_eq!(r.exit_code as i64, oracle.exit_value, "{name} exit");
        assert_eq!(r.journal, oracle.journal, "{name} journal");
    }
}

#[test]
fn both_vms_agree_on_guest_behaviour() {
    for name in ["npb-ft", "sha3-bench", "zkvm-mnist"] {
        let w = zkvm_opt::workloads::by_name(name).expect("workload exists");
        let (r0, _) = measure(
            w,
            &OptProfile::level(OptLevel::O2),
            VmKind::RiscZero,
            false,
            None,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (sp1, _) = measure(
            w,
            &OptProfile::level(OptLevel::O2),
            VmKind::Sp1,
            false,
            None,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(r0.instret, sp1.instret, "{name}: instret is VM-independent");
    }
}

#[test]
fn toy_prover_binds_suite_outputs() {
    let w = zkvm_opt::workloads::by_name("factorial").expect("exists");
    let pipeline = zkvm_opt::study::Pipeline::new(OptProfile::level(OptLevel::O2));
    let r = pipeline.run_workload(w, VmKind::RiscZero).expect("runs");
    let model = zkvm_opt::prover::ProvingModel::risc_zero();
    let proof = zkvm_opt::prover::toy_prove(&model, &r.exec);
    assert!(zkvm_opt::prover::toy_verify(&model, &r.exec, &proof));
}
