//! Property-based differential tests for low-address memory behaviour: the
//! page-0 probe-sentinel regression class. Random programs whose loads and
//! stores are biased into `0x0..0x500` — straddling the `addr < 0x100` null
//! guard and the legal remainder of page 0 — must behave identically under
//! the reference step interpreter, the solo block-dispatch engine, the
//! stepped-only segmented dispatch, and lockstep convoys, on every
//! architectural observable (cycles, paging, segments, mix, journal, fault
//! address/pc). Hot-loop variants drive the same footprints through
//! superblock traces.

use proptest::prelude::*;
use zkvm_opt::riscv::inst::{AluImmOp, BranchCond, MemWidth};
use zkvm_opt::riscv::{Inst, Program, Reg};
use zkvm_opt::vm::{
    run_program_reference, DecodedProgram, Engine, ExecConfig, ExecError, ExecutionReport, VmKind,
    VmProfile,
};

/// One randomly placed access: store-or-load, a low address, and a width.
#[derive(Debug, Clone, Copy)]
struct Access {
    store: bool,
    addr: u32,
    width: MemWidth,
}

fn arb_access() -> impl Strategy<Value = Access> {
    (0u8..2, 0u32..0x500, 0usize..5).prop_map(|(store, addr, w)| Access {
        store: store == 1,
        addr,
        width: [
            MemWidth::Byte,
            MemWidth::ByteU,
            MemWidth::Half,
            MemWidth::HalfU,
            MemWidth::Word,
        ][w],
    })
}

fn addi(rd: Reg, rs1: Reg, imm: i32) -> Inst<Reg> {
    Inst::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn emit_access(code: &mut Vec<Inst<Reg>>, a: Access) {
    code.push(addi(Reg::T1, Reg::ZERO, a.addr as i32));
    if a.store {
        code.push(Inst::Store {
            width: a.width,
            src: Reg::A0,
            base: Reg::T1,
            offset: 0,
        });
    } else {
        code.push(Inst::Load {
            width: a.width,
            rd: Reg::A0,
            base: Reg::T1,
            offset: 0,
        });
    }
}

/// Straight-line program: the accesses in order, then `halt(a0)`.
fn straight_line(accesses: &[Access]) -> Program {
    let mut code = Vec::new();
    for &a in accesses {
        emit_access(&mut code, a);
    }
    code.push(Inst::Ecall);
    Program {
        code,
        entry: 0,
        func_entries: vec![],
        func_names: vec![],
        globals: vec![],
        spilled_vregs: 0,
    }
}

/// Hot-loop program: the accesses in a 100-iteration loop whose body is
/// split by a `jal` so superblock-trace formation can chain blocks.
fn hot_loop(accesses: &[Access]) -> Program {
    let mut code = vec![
        addi(Reg::T2, Reg::ZERO, 0),   // i = 0
        addi(Reg::T3, Reg::ZERO, 100), // limit
    ];
    let head = code.len();
    for &a in accesses {
        emit_access(&mut code, a);
    }
    let split = code.len() + 1;
    code.push(Inst::Jal {
        rd: Reg::ZERO,
        target: split,
    });
    code.push(addi(Reg::T2, Reg::T2, 1));
    code.push(Inst::Branch {
        cond: BranchCond::Lt,
        rs1: Reg::T2,
        rs2: Reg::T3,
        target: head,
    });
    code.push(Inst::Ecall);
    Program {
        code,
        entry: 0,
        func_entries: vec![],
        func_names: vec![],
        globals: vec![],
        spilled_vregs: 0,
    }
}

/// Architectural-observable equality (wall time and advisory engine stats
/// excluded), including exact fault classes.
fn assert_outcomes_match(
    label: &str,
    kind: VmKind,
    got: &Result<ExecutionReport, ExecError>,
    want: &Result<ExecutionReport, ExecError>,
) {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            assert_eq!(g.instret, w.instret, "{label}: instret ({kind})");
            assert_eq!(g.user_cycles, w.user_cycles, "{label}: cycles ({kind})");
            assert_eq!(g.paging_cycles, w.paging_cycles, "{label}: paging ({kind})");
            assert_eq!(g.total_cycles, w.total_cycles, "{label}: total ({kind})");
            assert_eq!(g.page_ins, w.page_ins, "{label}: page_ins ({kind})");
            assert_eq!(g.page_outs, w.page_outs, "{label}: page_outs ({kind})");
            assert_eq!(g.segments, w.segments, "{label}: segments ({kind})");
            assert_eq!(g.mix, w.mix, "{label}: mix ({kind})");
            assert_eq!(g.exit_code, w.exit_code, "{label}: exit ({kind})");
            assert_eq!(g.halted, w.halted, "{label}: halted ({kind})");
            assert_eq!(g.journal, w.journal, "{label}: journal ({kind})");
        }
        (Err(g), Err(w)) => assert_eq!(g, w, "{label}: error class ({kind})"),
        _ => panic!("{label}: outcome class diverged ({kind}): {got:?} vs {want:?}"),
    }
}

/// Run one generated program through every execution tier and check all of
/// them against the reference interpreter.
fn check_program(p: &Program) {
    let d = DecodedProgram::decode(p);
    for kind in VmKind::BOTH {
        let reference = run_program_reference(p, kind, &[]);
        let profile = VmProfile::for_kind(kind);

        // Solo block-dispatch engine (batched blocks + traces).
        let solo = Engine::new(&d, profile.clone(), ExecConfig::default()).run();
        assert_outcomes_match("solo", kind, &solo, &reference);

        // Stepped-only segmented dispatch; per-segment records must also
        // sum bit-identically to the report totals.
        let segmented = Engine::new(&d, profile.clone(), ExecConfig::default()).run_segmented();
        match segmented {
            Ok((report, records)) => {
                assert_outcomes_match("segmented", kind, &Ok(report.clone()), &reference);
                assert_eq!(records.len() as u64, report.segments, "record count");
                let instret: u64 = records.iter().map(|r| r.instret).sum();
                let user: u64 = records.iter().map(|r| r.user_cycles).sum();
                let ins: u64 = records.iter().map(|r| r.page_ins).sum();
                let outs: u64 = records.iter().map(|r| r.page_outs).sum();
                assert_eq!(instret, report.instret, "segment instret sum");
                assert_eq!(user, report.user_cycles, "segment cycle sum");
                assert_eq!(ins, report.page_ins, "segment page-in sum");
                assert_eq!(outs, report.page_outs, "segment page-out sum");
            }
            Err(ref e) => {
                assert_eq!(Err(e.clone()), reference, "segmented error ({kind})");
            }
        }

        // Lockstep convoys (two same-profile lanes exercise the tight
        // convoy paths) lane-checked against the reference.
        let jobs = vec![(profile.clone(), ExecConfig::default()); 2];
        for r in Engine::run_lockstep(&d, &jobs) {
            assert_outcomes_match("lockstep", kind, &r, &reference);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Straight-line low-address access sequences: first faulting access
    /// (if any) and all paging charges match the reference exactly.
    #[test]
    fn straight_line_low_addresses_match_reference(
        accesses in prop::collection::vec(arb_access(), 1..12)
    ) {
        check_program(&straight_line(&accesses));
    }

    /// The same footprints inside a hot loop: trace-following execution
    /// (and its residency probe) must not change any observable.
    #[test]
    fn hot_loop_low_addresses_match_reference(
        accesses in prop::collection::vec(arb_access(), 1..6)
    ) {
        check_program(&hot_loop(&accesses));
    }

    /// All-legal page-0 footprints (>= 0x100) must page in exactly one page
    /// for page-0-only address sets — the charge the sentinel bug elided.
    #[test]
    fn legal_page0_footprint_charges_paging(
        offsets in prop::collection::vec(0u32..0x300, 1..8)
    ) {
        let accesses: Vec<Access> = offsets
            .iter()
            .map(|&o| Access { store: false, addr: 0x100 + o, width: MemWidth::Byte })
            .collect();
        let p = straight_line(&accesses);
        let r = run_program_reference(&p, VmKind::RiscZero, &[]).expect("legal");
        let d = DecodedProgram::decode(&p);
        let e = Engine::new(&d, VmProfile::risc_zero(), ExecConfig::default())
            .run()
            .expect("legal");
        prop_assert_eq!(e.page_ins, r.page_ins);
        prop_assert_eq!(e.page_ins, 1, "one page-0 page-in");
        prop_assert_eq!(e.paging_cycles, r.paging_cycles);
    }
}
