//! Property-based tests for the predictive tuner's feature extractor: the
//! [`FeatureVector`] must be a *stable fingerprint* of program structure —
//! identical across repeated extraction, across independent compilations of
//! the same source, and across its shortest-round-trip text encoding (the
//! schema-2 tune database persists features as text, so a single ULP of
//! drift would silently perturb every k-NN distance after a reload).

use proptest::prelude::*;
use zkvm_opt::ir::{FeatureVector, FEATURE_DIM};
use zkvm_opt::passes::{run_pass, PassConfig};

/// Generated well-typed terminating programs: straight-line arithmetic, a
/// bounded loop, array traffic, a conditional, and a helper call — enough
/// structure to exercise every feature axis (loops, memory density,
/// instruction mix, branches, call fan-out, size moments).
fn program(consts: &[i32], trip: u8, arms: bool) -> String {
    let body: Vec<String> = consts
        .iter()
        .enumerate()
        .map(|(i, c)| format!("v{} = v{} * 3 + {c};", i % 3, (i + 1) % 3))
        .collect();
    let cond = if arms {
        "if (v0 % 2 == 0) { v2 += helper(v1); } else { v2 -= 1; }"
    } else {
        "v2 += helper(v1);"
    };
    format!(
        "static A: [i32; 8];
         fn helper(x: i32) -> i32 {{
           return x * 2 + 1;
         }}
         fn main() -> i32 {{
           let mut v0: i32 = read_input(0);
           let mut v1: i32 = 11;
           let mut v2: i32 = -3;
           for (let mut i: i32 = 0; i < {trip}; i += 1) {{
             {}
             A[i % 8] = v0 ^ v2;
             {cond}
           }}
           commit(v2);
           return v0 + v1 + v2;
         }}",
        body.join("\n             ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Determinism: extracting twice from one module, and once from an
    /// independently compiled copy of the same source, yields bit-identical
    /// vectors of the advertised dimension.
    #[test]
    fn extraction_is_deterministic_across_compilations(
        consts in prop::collection::vec(-1000i32..1000, 1..6),
        trip in 1u8..20,
        arms in 0u8..2,
    ) {
        let src = program(&consts, trip, arms == 1);
        let m1 = zkvm_opt::lang::compile_guest(&src).expect("generated program compiles");
        let m2 = zkvm_opt::lang::compile_guest(&src).expect("generated program compiles");
        let a = FeatureVector::extract(&m1);
        let b = FeatureVector::extract(&m1);
        let c = FeatureVector::extract(&m2);
        prop_assert_eq!(a.as_slice().len(), FEATURE_DIM);
        prop_assert_eq!(a.as_slice(), b.as_slice(), "repeated extraction drifted\n{}", &src);
        prop_assert_eq!(a.as_slice(), c.as_slice(), "recompilation drifted\n{}", &src);
        prop_assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    /// Text round-trip: the database encoding reproduces every feature
    /// bit-exactly (shortest-round-trip f64 formatting).
    #[test]
    fn text_round_trip_is_bit_exact(
        consts in prop::collection::vec(-1000i32..1000, 1..6),
        trip in 1u8..20,
        arms in 0u8..2,
    ) {
        let src = program(&consts, trip, arms == 1);
        let m = zkvm_opt::lang::compile_guest(&src).expect("generated program compiles");
        let fv = FeatureVector::extract(&m);
        let decoded = FeatureVector::from_text(&fv.to_text()).expect("round-trip parses");
        for (i, (x, y)) in fv.as_slice().iter().zip(decoded.as_slice()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "feature {} not bit-exact through text: {} vs {}", i, x, y
            );
        }
    }

    /// Optimization changes the module, so features legitimately move — but
    /// extraction must stay total, finite, and deterministic on optimized
    /// IR too (the service extracts features from the lowered module it
    /// actually tunes).
    #[test]
    fn extraction_is_stable_on_optimized_modules(
        consts in prop::collection::vec(-1000i32..1000, 1..5),
        trip in 1u8..12,
        picks in prop::collection::vec(0usize..64, 1..8),
    ) {
        let src = program(&consts, trip, true);
        let mut m = zkvm_opt::lang::compile_guest(&src).expect("generated program compiles");
        let names = zkvm_opt::study::studied_passes();
        for i in &picks {
            run_pass(names[i % names.len()], &mut m, &PassConfig::default());
        }
        let a = FeatureVector::extract(&m);
        let b = FeatureVector::extract(&m);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        prop_assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }
}
