//! The block-dispatch engine is **total** under hostile budgets and inputs:
//! for every workload in the suite, any `max_cycles` (including 0) and any
//! input vector (wrong length, extreme magnitudes), `Engine::run` returns
//! `Ok(report)` or a structured `ExecError` — it never panics.
//!
//! This is the runtime half of the fault-tolerance story: the tuning
//! service's per-candidate cycle budgets only isolate runaway candidates if
//! hitting the budget (or faulting on memory the inputs drove out of range)
//! surfaces as an error value the retry/quarantine machinery can classify.

use proptest::prelude::*;
use std::sync::OnceLock;
use zkvm_opt::riscv::TargetCostModel;
use zkvm_opt::vm::{DecodedProgram, Engine, ExecConfig, ExecError, VmKind, VmProfile};

struct Compiled {
    name: &'static str,
    prog: DecodedProgram,
    inputs: Vec<i32>,
}

/// Every suite workload compiled once at -O0 (no passes: the baseline
/// pipeline, and the cheapest compile — this file is about the engine).
fn suite() -> &'static [Compiled] {
    static SUITE: OnceLock<Vec<Compiled>> = OnceLock::new();
    SUITE.get_or_init(|| {
        zkvm_opt::workloads::all()
            .iter()
            .map(|w| {
                let m = zkvm_opt::lang::compile_guest(&w.source)
                    .unwrap_or_else(|e| panic!("{}: workload compiles: {e}", w.name));
                let p = zkvm_opt::riscv::compile_module(&m, &TargetCostModel::zk())
                    .unwrap_or_else(|e| panic!("{}: codegen: {e}", w.name));
                Compiled {
                    name: w.name,
                    prog: DecodedProgram::decode(&p),
                    inputs: w.inputs.clone(),
                }
            })
            .collect()
    })
}

/// Run one workload under a budget with the given inputs; the property is
/// that this returns at all. Structured outcomes are sanity-checked: a halt
/// report is internally consistent, a cycle-limit error only fires when the
/// budget is actually short.
fn check(c: &Compiled, kind: VmKind, max_cycles: u64, inputs: &[i32]) {
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        max_cycles,
    };
    match Engine::new(&c.prog, VmProfile::for_kind(kind), config).run() {
        Ok(r) => {
            // The halting instruction itself is exempt from the budget
            // check, so a halt may land one ecall's cost past the limit —
            // but never materially beyond it.
            assert!(r.halted, "{}: Ok(report) must be a halt", c.name);
            assert!(
                r.user_cycles <= max_cycles.saturating_add(64),
                "{}: halted run blew far past its budget ({} vs {max_cycles})",
                c.name,
                r.user_cycles
            );
        }
        Err(ExecError::CycleLimit) => {}
        Err(ExecError::MemFault { .. }) | Err(ExecError::BadPc { .. }) => {}
    }
}

/// Pinned tiny budgets over the whole suite with the genuine inputs: 0 must
/// not underflow anything, 1 exercises the first-block path, the others
/// land mid-block and mid-loop for most programs.
#[test]
fn tiny_cycle_budgets_error_cleanly_across_the_suite() {
    for c in suite() {
        for kind in VmKind::BOTH {
            for budget in [0, 1, 13, 997] {
                check(c, kind, budget, &c.inputs);
            }
        }
    }
}

/// Extreme input values with the genuine input arity: drives input-derived
/// array indexing and loop trip counts to their limits.
#[test]
fn extreme_inputs_never_panic_the_engine() {
    for c in suite() {
        for fill in [i32::MIN, i32::MAX, -1] {
            let inputs = vec![fill; c.inputs.len()];
            for kind in VmKind::BOTH {
                check(c, kind, 200_000, &inputs);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random budgets and random (possibly wrong-arity) inputs, every
    /// workload, both cost models.
    #[test]
    fn random_budgets_and_inputs_never_panic_the_engine(
        budget in 0u64..4096,
        arity in 0usize..4,
        fill in -2_000_000_000i32..2_000_000_000,
    ) {
        let inputs = vec![fill; arity];
        for c in suite() {
            for kind in VmKind::BOTH {
                check(c, kind, budget, &inputs);
            }
        }
    }
}
