//! Property tests: the zklang frontend is **total**. Arbitrary input —
//! raw byte soup, token soup, or a valid program with random bytes spliced
//! in — produces `Ok` or a structured `CompileError`; it never panics and
//! never overflows the stack (the parser's nesting guard caps recursion).
//!
//! This is the frontend half of the fault-tolerance story: the tuning
//! service treats program text as untrusted, so the parser is the first
//! isolation boundary and must reject garbage as a value, not a crash.

use proptest::prelude::*;
use zkvm_opt::lang::compile_guest;

/// Token vocabulary for structured soup: every lexeme class the language
/// knows plus a few it doesn't, so the sampler reaches deep into the parser
/// before (usually) being rejected.
const VOCAB: &[&str] = &[
    "fn",
    "main",
    "let",
    "mut",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "static",
    "i32",
    "commit",
    "read_input",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ":",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<<",
    ">>",
    "&",
    "|",
    "^",
    "!",
    "~",
    "==",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "0",
    "1",
    "42",
    "-7",
    "2147483647",
    "-2147483648",
    "99999999999999999999",
    "x",
    "y",
    "v0",
    "A",
    "main",
    "@",
    "#",
    "$",
    "\u{fffd}",
    "\"",
    "'",
];

/// A small well-formed program used as the splice-mutation base.
const SEED_PROGRAM: &str = "static A: [i32; 8];
fn helper(x: i32) -> i32 { if (x % 2 == 0) { return x / 2; } return 3 * x + 1; }
fn main() -> i32 {
  let mut s: i32 = read_input(0);
  for (let mut i: i32 = 0; i < 10; i += 1) { A[i % 8] = helper(s + i); s ^= A[i % 8]; }
  commit(s);
  return s;
}";

/// The single property under test: compiling must return, not crash. The
/// `Result` is intentionally ignored — both outcomes are acceptable, only a
/// panic or stack overflow fails the test (as an abort of the test process).
fn must_not_panic(src: &str) {
    let _ = compile_guest(src);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic_the_frontend(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
    ) {
        must_not_panic(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn token_soup_never_panics_the_frontend(
        picks in prop::collection::vec(0usize..VOCAB.len(), 0..96),
        spaced in 0u8..2,
    ) {
        let sep = if spaced == 1 { " " } else { "" };
        let soup: Vec<&str> = picks.iter().map(|i| VOCAB[*i]).collect();
        must_not_panic(&soup.join(sep));
        // The same soup wrapped where an expression is expected, so it is
        // parsed in statement position rather than rejected at the top level.
        must_not_panic(&format!("fn main() -> i32 {{ return {}; }}", soup.join(" ")));
    }

    #[test]
    fn spliced_valid_programs_never_panic_the_frontend(
        pos in 0usize..SEED_PROGRAM.len(),
        len in 0usize..24,
        junk in prop::collection::vec(0u8..=255u8, 1..24),
    ) {
        let mut bytes = SEED_PROGRAM.as_bytes().to_vec();
        let end = (pos + len).min(bytes.len());
        bytes.splice(pos..end, junk);
        must_not_panic(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn unbounded_nesting_is_rejected_not_overflowed(
        depth in 1usize..4096,
        opener in 0u8..3,
    ) {
        // Deep nesting in expression and statement position: the parser's
        // depth guard must reject it with "nesting too deep" well before the
        // stack runs out, for any depth past the cap.
        let src = match opener {
            0 => format!(
                "fn main() -> i32 {{ return {}1{}; }}",
                "(".repeat(depth),
                ")".repeat(depth)
            ),
            1 => format!("fn main() -> i32 {{ return {}1; }}", "-".repeat(depth)),
            _ => format!(
                "fn main() -> i32 {{ {} return 0; {} return 1; }}",
                "if (1) { ".repeat(depth),
                "} ".repeat(depth)
            ),
        };
        let r = compile_guest(&src);
        if depth >= 256 {
            let e = r.expect_err("deep nesting must be rejected");
            prop_assert!(
                e.message.contains("nesting too deep"),
                "unexpected diagnosis: {}", e
            );
        }
    }
}
