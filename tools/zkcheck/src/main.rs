fn main() {
    let mut ok = true;
    for f in std::env::args().skip(1) {
        let src = std::fs::read_to_string(&f).unwrap();
        match zkvmopt_lang::compile_guest(&src) {
            Ok(m) => {
                let cfg = zkvmopt_ir::interp::InterpConfig { inputs: vec![42], ..Default::default() };
                match zkvmopt_ir::Interp::new(&m, cfg, zkvmopt_ir::NopEcalls).run_main() {
                    Ok(out) => println!("OK   {f}: exit={} journal={:?} steps={}", out.exit_value, out.journal, out.steps),
                    Err(e) => { ok = false; println!("RUNERR {f}: {e:?}"); }
                }
            }
            Err(e) => { ok = false; println!("COMPILEERR {f}: {e}"); }
        }
    }
    std::process::exit(if ok {0} else {1});
}
