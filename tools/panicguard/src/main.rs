//! panicguard: a ratchet lint against new panic sites in the crates that sit
//! on the tuning service's untrusted-input path (`lang`, `core`, `tuner`,
//! `vm` — the engine executes tuner-selected candidate programs — `prover`,
//! which consumes engine-produced segment records, and `ir` / `stats`,
//! whose feature extraction and normalization feed the predictor values
//! read back from on-disk tune databases).
//!
//! The fault-tolerance contract is that untrusted program text and untrusted
//! candidate pipelines surface failures as values (`CompileError`,
//! `PipelineError`, `FailureClass`), never as panics. `catch_unwind` in the
//! service is the backstop, not the error channel — so new `.unwrap()` /
//! `.expect("...")` / `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! sites in non-test code of those crates fail CI unless the baseline is
//! consciously re-blessed.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run --manifest-path tools/panicguard/Cargo.toml            # lint
//! cargo run --manifest-path tools/panicguard/Cargo.toml -- --bless # accept
//! ```
//!
//! Counting rules, kept deliberately dumb and reviewable:
//! - only `src/**/*.rs` of the guarded crates is scanned;
//! - counting stops at the first `#[cfg(test)]` line of a file (this
//!   workspace keeps test modules at the end of each file);
//! - comment-only lines are skipped;
//! - `.expect(` only counts with a string-literal argument (`.expect("`),
//!   which distinguishes panicking expectations from the lang parser's own
//!   `expect(&Tok, ..)` method;
//! - per-file counts are compared against `baseline.txt`: any increase
//!   fails, any decrease asks for a re-bless so the ratchet only tightens.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const GUARDED: &[&str] = &[
    "crates/lang/src",
    "crates/core/src",
    "crates/ir/src",
    "crates/prover/src",
    "crates/stats/src",
    "crates/tuner/src",
    "crates/vm/src",
];
const PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(\"",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn repo_root() -> PathBuf {
    // tools/panicguard/Cargo.toml -> repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tool lives two levels under the repo root")
        .to_path_buf()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn count_sites(src: &str) -> usize {
    let mut n = 0;
    for line in src.lines() {
        let t = line.trim_start();
        if t.starts_with("#[cfg(test)]") {
            break; // test modules trail the production code in this repo
        }
        if t.starts_with("//") {
            continue;
        }
        n += PATTERNS.iter().map(|p| t.matches(p).count()).sum::<usize>();
    }
    n
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    let root = repo_root();

    let mut files = Vec::new();
    for dir in GUARDED {
        rust_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut current = String::new();
    for f in &files {
        let src = std::fs::read_to_string(f).expect("guarded source is readable");
        let rel = f.strip_prefix(&root).expect("under root");
        let n = count_sites(&src);
        if n > 0 {
            writeln!(current, "{n:4} {}", rel.display()).expect("string write");
        }
    }

    let baseline_path = root.join("tools/panicguard/baseline.txt");
    if bless {
        std::fs::write(&baseline_path, &current).expect("baseline writes");
        println!("panicguard: baseline blessed ({} guarded files)", files.len());
        return;
    }

    let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let parse = |s: &str| -> Vec<(String, usize)> {
        s.lines()
            .filter_map(|l| {
                let (n, path) = l.trim().split_once(' ')?;
                Some((path.trim().to_string(), n.trim().parse().ok()?))
            })
            .collect()
    };
    let old = parse(&baseline);
    let new = parse(&current);

    let mut failed = false;
    for (path, n) in &new {
        let was = old
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        match n.cmp(&was) {
            std::cmp::Ordering::Greater => {
                failed = true;
                eprintln!(
                    "panicguard: {path}: {n} panic sites (baseline {was}) — \
                     return a structured error instead, or re-bless with --bless"
                );
            }
            std::cmp::Ordering::Less => {
                failed = true;
                eprintln!(
                    "panicguard: {path}: {n} panic sites, down from {was} — \
                     nice; tighten the ratchet with --bless"
                );
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    for (path, was) in &old {
        if !new.iter().any(|(p, _)| p == path) {
            failed = true;
            eprintln!("panicguard: {path}: 0 panic sites, down from {was} — re-bless with --bless");
        }
    }

    if failed {
        std::process::exit(1);
    }
    let total: usize = new.iter().map(|(_, n)| n).sum();
    println!(
        "panicguard: OK — {total} baselined panic sites across {} files in {} guarded crates",
        new.len(),
        GUARDED.len()
    );
}
