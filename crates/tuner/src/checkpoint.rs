//! Crash-consistent checkpoints for an in-flight service run.
//!
//! The island-model search is deterministic: same seed, same config, same
//! targets → the same sequence of candidate evaluations, at any thread
//! count. That turns checkpointing on its head — there is no need to
//! serialize populations, RNG streams, or the scheduler. The fitness cache
//! *is* the run state: every evaluation is a pure function of its
//! `(fingerprint, canonical candidate)` key, the cache is insert-only, and
//! any subset of it is valid. A checkpoint is therefore just an atomic dump
//! of the cache, and `resume` is "replay the search from generation zero
//! with those evaluations pre-answered" — bit-identical results, zero
//! redundant fitness evaluations for everything the lost run had measured.
//!
//! ## File format (schema version 1)
//!
//! Line-oriented UTF-8, mirroring the tune database:
//!
//! ```text
//! zkvmopt-checkpoint 1 <digest:16-hex>
//! <fp:16-hex> <inline> <unroll> <cycles|!class> <pass,pass,...|->
//! ```
//!
//! The header digest binds the checkpoint to the run shape (seed, island
//! geometry, budget, targets): resuming with a different configuration
//! would replay a *different* search, so a digest mismatch discards the
//! file rather than silently warping the results. The value field is the
//! measured cycle count, or `!` + a [`FailureClass`] token for candidates
//! that failed (failures are results too — replaying them costs nothing).
//!
//! ## Failure policy
//!
//! Like [`TuneDb`](crate::TuneDb): loading never panics and never fails the
//! caller. A missing file is an absent checkpoint, a bad header or digest
//! discards the file, and a corrupt line (torn write from a crash mid-save
//! — possible only for the temp file, but operators edit things) is dropped
//! while every well-formed line is kept: a partial checkpoint just resumes
//! a bit further back. Writes go through the same temp-file + rename and
//! advisory-lock machinery as the database.

use crate::cache::FitnessKey;
use crate::fault::{EvalResult, FailureClass};
use crate::lock::FileLock;
use std::fmt;
use std::io::Write;
use std::path::Path;
use zkvmopt_passes::find_pass;

/// Current on-disk schema version. Bump on any incompatible format change.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 1;

const MAGIC: &str = "zkvmopt-checkpoint";

/// How a checkpoint load went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointStatus {
    /// No checkpoint file existed (fresh run).
    Absent,
    /// Every line parsed and the digest matched.
    Loaded {
        /// Entries restored into the fitness cache.
        entries: usize,
    },
    /// The digest did not match this run's configuration; nothing restored.
    Mismatch,
    /// Damaged file: well-formed lines were kept, the rest dropped.
    Recovered {
        /// Entries restored.
        kept: usize,
        /// Malformed or stale lines dropped.
        dropped: usize,
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for CheckpointStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointStatus::Absent => write!(f, "absent"),
            CheckpointStatus::Loaded { entries } => write!(f, "loaded {entries} entries"),
            CheckpointStatus::Mismatch => write!(f, "configuration digest mismatch; discarded"),
            CheckpointStatus::Recovered {
                kept,
                dropped,
                reason,
            } => write!(f, "recovered (kept {kept}, dropped {dropped}): {reason}"),
        }
    }
}

/// Serialize `entries` (a [`crate::ShardedFitnessCache::snapshot`]) to the
/// checkpoint text format.
pub fn checkpoint_to_string(digest: u64, entries: &[(FitnessKey, EvalResult)]) -> String {
    let mut out = format!(
        "{MAGIC} {CHECKPOINT_SCHEMA_VERSION} {}\n",
        zkvmopt_ir::analysis::fingerprint_to_hex(digest)
    );
    for (k, v) in entries {
        let seq = if k.passes.is_empty() {
            "-".to_string()
        } else {
            k.passes.join(",")
        };
        let value = match v {
            Ok(cycles) => cycles.to_string(),
            Err(class) => format!("!{}", class.token()),
        };
        out.push_str(&format!(
            "{} {} {} {value} {seq}\n",
            zkvmopt_ir::analysis::fingerprint_to_hex(k.fingerprint),
            k.inline_threshold,
            k.unroll_threshold,
        ));
    }
    out
}

/// Atomically write a checkpoint (advisory lock, temp file, rename).
///
/// # Errors
/// Returns the underlying I/O error when the file cannot be written.
pub fn save_checkpoint(
    path: &Path,
    digest: u64,
    entries: &[(FitnessKey, EvalResult)],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let _lock = FileLock::acquire(path)?;
    // Appended (not `with_extension`) so a checkpoint and a tune database
    // sharing a stem can never collide on the temp name.
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(checkpoint_to_string(digest, entries).as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Load the checkpoint at `path`, accepting it only when its header digest
/// equals `digest`. Never panics and never fails the caller; see the
/// module docs for the recovery policy.
pub fn load_checkpoint(
    path: &Path,
    digest: u64,
) -> (Vec<(FitnessKey, EvalResult)>, CheckpointStatus) {
    let text = {
        // Advisory lock so a concurrent save cannot interleave (the rename
        // is atomic, but the lock also serializes multi-run access).
        let _lock = FileLock::try_acquire(path).ok().flatten();
        match std::fs::read_to_string(path) {
            Err(_) => return (Vec::new(), CheckpointStatus::Absent),
            Ok(t) => t,
        }
    };
    let mut lines = text.lines();
    let Some(header) = lines.next() else {
        return (
            Vec::new(),
            CheckpointStatus::Recovered {
                kept: 0,
                dropped: 0,
                reason: "empty file".to_string(),
            },
        );
    };
    let mut parts = header.split_ascii_whitespace();
    match (
        parts.next(),
        parts.next().and_then(|v| v.parse::<u32>().ok()),
        parts
            .next()
            .and_then(zkvmopt_ir::analysis::fingerprint_from_hex),
    ) {
        (Some(MAGIC), Some(CHECKPOINT_SCHEMA_VERSION), Some(d)) if d == digest => {}
        (Some(MAGIC), Some(CHECKPOINT_SCHEMA_VERSION), Some(_)) => {
            return (Vec::new(), CheckpointStatus::Mismatch);
        }
        _ => {
            return (
                Vec::new(),
                CheckpointStatus::Recovered {
                    kept: 0,
                    dropped: text.lines().count().saturating_sub(1),
                    reason: format!("bad header {header:?}"),
                },
            );
        }
    }
    let mut entries = Vec::new();
    let mut dropped = 0usize;
    let mut first_error = None;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(e) => entries.push(e),
            None => {
                dropped += 1;
                first_error.get_or_insert_with(|| format!("malformed line {}", i + 2));
            }
        }
    }
    let kept = entries.len();
    let status = match first_error {
        None => CheckpointStatus::Loaded { entries: kept },
        Some(reason) => CheckpointStatus::Recovered {
            kept,
            dropped,
            reason,
        },
    };
    (entries, status)
}

/// Parse one entry line. `None` drops it: malformed fields, or a pass name
/// no longer in the registry (a stale checkpoint after a registry change —
/// the candidate can simply be re-evaluated).
fn parse_line(line: &str) -> Option<(FitnessKey, EvalResult)> {
    let mut parts = line.split_ascii_whitespace();
    let fingerprint = zkvmopt_ir::analysis::fingerprint_from_hex(parts.next()?)?;
    let inline_threshold = parts.next()?.parse().ok()?;
    let unroll_threshold = parts.next()?.parse().ok()?;
    let value = parts.next()?;
    let seq = parts.next()?;
    if parts.next().is_some() {
        return None; // trailing junk: reject rather than misread
    }
    let value: EvalResult = match value.strip_prefix('!') {
        Some(token) => Err(FailureClass::from_token(token)?),
        None => Ok(value.parse().ok()?),
    };
    let passes: Vec<&'static str> = if seq == "-" {
        Vec::new()
    } else {
        seq.split(',')
            .map(|p| find_pass(p).map(|e| e.canonical_name()))
            .collect::<Option<Vec<_>>>()?
    };
    Some((
        FitnessKey {
            fingerprint,
            passes,
            inline_threshold,
            unroll_threshold,
        },
        value,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zkvmopt-ckpt-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entries() -> Vec<(FitnessKey, EvalResult)> {
        vec![
            (
                FitnessKey {
                    fingerprint: 0xA,
                    passes: vec!["mem2reg", "gvn"],
                    inline_threshold: 225,
                    unroll_threshold: 200,
                },
                Ok(512),
            ),
            (
                FitnessKey {
                    fingerprint: 0xB,
                    passes: vec![],
                    inline_threshold: 0,
                    unroll_threshold: 0,
                },
                Err(FailureClass::Divergence),
            ),
        ]
    }

    #[test]
    fn round_trips_values_and_failures() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("run.ckpt");
        save_checkpoint(&path, 0xD16E57, &entries()).unwrap();
        let (got, status) = load_checkpoint(&path, 0xD16E57);
        assert_eq!(status, CheckpointStatus::Loaded { entries: 2 });
        assert_eq!(got, entries());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_absent_and_digest_mismatch_discards() {
        let dir = tmpdir("digest");
        let path = dir.join("run.ckpt");
        assert_eq!(load_checkpoint(&path, 1).1, CheckpointStatus::Absent);
        save_checkpoint(&path, 0xAAAA, &entries()).unwrap();
        let (got, status) = load_checkpoint(&path, 0xBBBB);
        assert_eq!(status, CheckpointStatus::Mismatch);
        assert!(got.is_empty(), "mismatched checkpoints restore nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_dropped_and_the_rest_salvaged() {
        let dir = tmpdir("salvage");
        let path = dir.join("run.ckpt");
        let good = checkpoint_to_string(7, &entries());
        std::fs::write(
            &path,
            format!("{good}000000000000000a 1 2 !nonsense mem2reg\ntorn li"),
        )
        .unwrap();
        let (got, status) = load_checkpoint(&path, 7);
        assert_eq!(got, entries());
        match status {
            CheckpointStatus::Recovered {
                kept: 2,
                dropped: 2,
                ..
            } => {}
            other => panic!("expected recovery, got {other}"),
        }
        // Garbage headers restore nothing but never panic.
        std::fs::write(&path, "\u{0}\u{1}binary junk\n").unwrap();
        let (got, status) = load_checkpoint(&path, 7);
        assert!(got.is_empty());
        assert!(matches!(status, CheckpointStatus::Recovered { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_pass_names_drop_only_their_line() {
        let dir = tmpdir("stale");
        let path = dir.join("run.ckpt");
        let mut text = checkpoint_to_string(3, &entries());
        text.push_str("000000000000000c 1 1 10 a-pass-that-never-existed\n");
        std::fs::write(&path, text).unwrap();
        let (got, status) = load_checkpoint(&path, 3);
        assert_eq!(got, entries(), "stale line dropped, the rest kept");
        assert!(matches!(
            status,
            CheckpointStatus::Recovered {
                kept: 2,
                dropped: 1,
                ..
            }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
