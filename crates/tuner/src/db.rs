//! The persistent tune database: best-known pass sequences, on disk.
//!
//! Autotuning-as-a-service re-sees the same programs constantly (repeated
//! studies, repeated user submissions), and a genetic search costs thousands
//! of fitness evaluations per program. [`TuneDb`] amortizes that: a small
//! on-disk, versioned store keyed by the program's **stable IR fingerprint**
//! (`zkvmopt_ir::stable_module_fingerprint`), mapping fingerprint → the
//! best-known canonical pass sequence, its tuned thresholds, and the cycle
//! count it measured. A service run with a warm database skips the search
//! for every already-known program outright — zero fitness evaluations —
//! and cold programs' results are recorded for the next run.
//!
//! ## File format (schema version 2)
//!
//! A line-oriented UTF-8 text file, one header plus one line per program:
//!
//! ```text
//! zkvmopt-tunedb 2
//! <fp:16-hex> <cycles> <baseline> <inline> <unroll> <pass,pass,...|-> <f,f,...|->
//! ```
//!
//! The sequence field is the comma-joined canonical pass list, or `-` for
//! the empty sequence (a program whose best-known pipeline is "run nothing").
//! Schema 2 adds two prediction fields to each entry: `<baseline>` — the
//! program's `-O3` reference cycle count (`0` = unknown) — and the trailing
//! comma-joined [`FeatureVector`](zkvmopt_ir::FeatureVector) (`-` = not
//! extracted), both consumed by [`crate::predict::Predictor`].
//!
//! **Migration:** schema-1 files (no prediction fields) load transparently —
//! every entry comes up with `baseline_cycles: 0` and empty `features`, and
//! the database is marked dirty so the next [`TuneDb::save`] rewrites it in
//! the v2 format. Versions *newer* than 2 are rejected wholesale, as before.
//!
//! ## Failure policy
//!
//! Loading **never panics** and never fails the caller:
//! - a missing file is a fresh, empty database;
//! - a bad header or a schema version newer than supported rejects the whole
//!   file (the format may have changed incompatibly) and starts empty;
//! - a corrupt *line* (truncated write, hand edit) is logged and dropped
//!   while every well-formed line is kept.
//!
//! The outcome is reported in [`TuneDb::load_status`] so tests (and
//! operators) can tell recovery from a clean load. Writes go through a
//! temp-file + rename so a crash mid-save can truncate at most the temp
//! file, never the database itself — and [`TuneDb::save`] skips the write
//! entirely when nothing changed since load, so a service checkpointing at
//! every generation barrier no longer rewrites an unchanged file each time.
//! Refreshing stored entries after a cost-model change follows the
//! golden-snapshot workflow: delete the file (or run with `warm_start` off)
//! and let the next service run re-record — the `ZKVMOPT_BLESS`-style
//! "re-measure and overwrite" flow.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current on-disk schema version. Bump on any incompatible format change.
pub const SCHEMA_VERSION: u32 = 2;

const MAGIC: &str = "zkvmopt-tunedb";

/// One stored result: the best-known tuning outcome for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneDbEntry {
    /// Stable fingerprint of the program's lowered base module.
    pub fingerprint: u64,
    /// Best-known canonical pass sequence.
    pub passes: Vec<String>,
    /// Tuned inline threshold.
    pub inline_threshold: usize,
    /// Tuned unroll threshold.
    pub unroll_threshold: usize,
    /// Measured cycle count under that pipeline.
    pub cycles: u64,
    /// The program's `-O3` reference cycle count (`0` = unknown; entries
    /// migrated from schema 1 have no baseline until re-recorded).
    pub baseline_cycles: u64,
    /// The program's extracted feature vector (empty = not extracted). The
    /// predictor only consumes entries whose length matches the current
    /// [`zkvmopt_ir::FEATURE_DIM`], so a feature-set change degrades stale
    /// entries to warm-start-only instead of corrupting predictions.
    pub features: Vec<f64>,
}

/// How the last [`TuneDb::open`] went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadStatus {
    /// No file existed: fresh, empty database.
    Fresh,
    /// Every line parsed.
    Loaded {
        /// Entries read.
        entries: usize,
    },
    /// The file was rejected or partially salvaged; searching rebuilds it.
    Recovered {
        /// Well-formed entries kept.
        kept: usize,
        /// Malformed lines dropped.
        dropped: usize,
        /// Human-readable cause (logged to stderr at load time).
        reason: String,
    },
}

impl fmt::Display for LoadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStatus::Fresh => write!(f, "fresh (no file)"),
            LoadStatus::Loaded { entries } => write!(f, "loaded {entries} entries"),
            LoadStatus::Recovered {
                kept,
                dropped,
                reason,
            } => write!(f, "recovered (kept {kept}, dropped {dropped}): {reason}"),
        }
    }
}

/// The persistent fingerprint → best-sequence store.
#[derive(Debug)]
pub struct TuneDb {
    path: PathBuf,
    entries: BTreeMap<u64, TuneDbEntry>,
    load_status: LoadStatus,
    /// Whether in-memory state diverged from the backing file since load /
    /// last save. `Cell` so [`TuneDb::save`] can clear it through `&self`.
    dirty: Cell<bool>,
}

impl TuneDb {
    /// Open (or create in memory) the database at `path`. Never fails and
    /// never panics: see the module docs for the recovery policy.
    pub fn open(path: impl Into<PathBuf>) -> TuneDb {
        let path = path.into();
        // Take the advisory lock while reading so a concurrent save cannot
        // rename mid-read. Best-effort: a lock failure (exotic filesystem)
        // degrades to the old unlocked read, it never fails the open.
        let _lock = (!path.as_os_str().is_empty())
            .then(|| crate::lock::FileLock::acquire(&path).ok())
            .flatten();
        let (entries, load_status, dirty) = match std::fs::read_to_string(&path) {
            Err(_) => (BTreeMap::new(), LoadStatus::Fresh, false),
            Ok(text) => match parse(&text) {
                Ok((entries, migrated)) => {
                    let n = entries.len();
                    // A migrated v1 file is clean data in a stale format:
                    // mark dirty so the next save upgrades it to schema 2.
                    (entries, LoadStatus::Loaded { entries: n }, migrated)
                }
                Err((kept, dropped, reason)) => {
                    eprintln!(
                        "tuner: tune database {} is damaged ({reason}); \
                         kept {} entries, dropped {dropped} — rebuilding as we search",
                        path.display(),
                        kept.len(),
                    );
                    let n = kept.len();
                    (
                        kept,
                        LoadStatus::Recovered {
                            kept: n,
                            dropped,
                            reason,
                        },
                        // A save heals the damaged file even if nothing is
                        // recorded afterwards.
                        true,
                    )
                }
            },
        };
        TuneDb {
            path,
            entries,
            load_status,
            dirty: Cell::new(dirty),
        }
    }

    /// An in-memory database never backed by a file (tests, dry runs);
    /// [`TuneDb::save`] writes to the given path only when one was opened.
    pub fn in_memory() -> TuneDb {
        TuneDb {
            path: PathBuf::new(),
            entries: BTreeMap::new(),
            load_status: LoadStatus::Fresh,
            dirty: Cell::new(false),
        }
    }

    /// How the backing file loaded.
    pub fn load_status(&self) -> &LoadStatus {
        &self.load_status
    }

    /// The backing file path (empty for [`TuneDb::in_memory`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored best for `fingerprint`, if any.
    pub fn get(&self, fingerprint: u64) -> Option<&TuneDbEntry> {
        self.entries.get(&fingerprint)
    }

    /// All entries in fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = &TuneDbEntry> {
        self.entries.values()
    }

    /// Whether in-memory state differs from the backing file ([`TuneDb::save`]
    /// is a no-op while this is `false`).
    pub fn is_dirty(&self) -> bool {
        self.dirty.get()
    }

    /// Record `entry`, keeping whichever of (stored, new) measured fewer
    /// cycles — ties keep the stored entry, so repeated equal-seed runs are
    /// idempotent. A kept stored entry that predates schema 2 (no features)
    /// is backfilled with the new entry's features and baseline, so a
    /// migrated database heals into a predictable one as programs are
    /// re-seen. Returns `true` when the database changed.
    pub fn record(&mut self, entry: TuneDbEntry) -> bool {
        match self.entries.get_mut(&entry.fingerprint) {
            Some(old) if old.cycles <= entry.cycles => {
                let mut changed = false;
                if old.features.is_empty() && !entry.features.is_empty() {
                    old.features = entry.features;
                    changed = true;
                }
                if old.baseline_cycles == 0 && entry.baseline_cycles != 0 {
                    old.baseline_cycles = entry.baseline_cycles;
                    changed = true;
                }
                if changed {
                    self.dirty.set(true);
                }
                changed
            }
            _ => {
                self.entries.insert(entry.fingerprint, entry);
                self.dirty.set(true);
                true
            }
        }
    }

    /// Remove the entry for `fingerprint` (the per-program bless/refresh
    /// path: drop, re-search, re-record). Returns the removed entry.
    pub fn remove(&mut self, fingerprint: u64) -> Option<TuneDbEntry> {
        let removed = self.entries.remove(&fingerprint);
        if removed.is_some() {
            self.dirty.set(true);
        }
        removed
    }

    /// Serialize to the schema-versioned text format.
    pub fn to_string_pretty(&self) -> String {
        let mut out = format!("{MAGIC} {SCHEMA_VERSION}\n");
        for e in self.entries.values() {
            let seq = if e.passes.is_empty() {
                "-".to_string()
            } else {
                e.passes.join(",")
            };
            out.push_str(&format!(
                "{} {} {} {} {} {seq} {}\n",
                zkvmopt_ir::analysis::fingerprint_to_hex(e.fingerprint),
                e.cycles,
                e.baseline_cycles,
                e.inline_threshold,
                e.unroll_threshold,
                features_to_text(&e.features),
            ));
        }
        out
    }

    /// Atomically persist to the opened path (temp file + rename). A
    /// [`TuneDb::in_memory`] database saves nowhere and returns `Ok`, and a
    /// clean database (nothing changed since load or the last save) skips
    /// the write+rename entirely.
    ///
    /// # Errors
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save(&self) -> std::io::Result<()> {
        if self.path.as_os_str().is_empty() || !self.dirty.get() {
            return Ok(());
        }
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        // Serialize concurrent savers: without the advisory lock, two
        // temp-file + rename writers both succeed and the survivor silently
        // drops the loser's entries.
        let _lock = crate::lock::FileLock::acquire(&self.path)?;
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_string_pretty().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.dirty.set(false);
        Ok(())
    }
}

/// Serialize a feature vector as one whitespace-free field (`-` for none).
/// Rust's shortest-round-trip `f64` formatting keeps this byte-stable across
/// processes for bit-equal features.
fn features_to_text(features: &[f64]) -> String {
    if features.is_empty() {
        return "-".to_string();
    }
    let parts: Vec<String> = features.iter().map(|v| format!("{v}")).collect();
    parts.join(",")
}

/// Parse the feature field: `-` → empty, otherwise all-finite comma-joined
/// floats. `None` rejects the line (NaN/∞ would poison k-NN distances).
fn features_from_text(s: &str) -> Option<Vec<f64>> {
    if s == "-" {
        return Some(Vec::new());
    }
    let values: Option<Vec<f64>> = s.split(',').map(|p| p.parse::<f64>().ok()).collect();
    let values = values?;
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    Some(values)
}

/// Parse the full file. `Ok((entries, migrated))` when every line parsed
/// (`migrated` = the file was a supported *older* schema and should be
/// rewritten); `Err((salvaged, dropped, reason))` otherwise — a bad header
/// salvages nothing.
#[allow(clippy::type_complexity)]
fn parse(
    text: &str,
) -> Result<(BTreeMap<u64, TuneDbEntry>, bool), (BTreeMap<u64, TuneDbEntry>, usize, String)> {
    let mut lines = text.lines();
    let version = match lines.next() {
        Some(header) => {
            let mut parts = header.split_ascii_whitespace();
            match (
                parts.next(),
                parts.next().and_then(|v| v.parse::<u32>().ok()),
            ) {
                (Some(MAGIC), Some(v)) if (1..=SCHEMA_VERSION).contains(&v) => v,
                (Some(MAGIC), Some(v)) => {
                    return Err((
                        BTreeMap::new(),
                        text.lines().count().saturating_sub(1),
                        format!("schema version {v} > supported {SCHEMA_VERSION}"),
                    ));
                }
                _ => {
                    return Err((
                        BTreeMap::new(),
                        text.lines().count().saturating_sub(1),
                        format!("bad header {header:?}"),
                    ));
                }
            }
        }
        None => {
            return Err((BTreeMap::new(), 0, "empty file".to_string()));
        }
    };
    let mut entries = BTreeMap::new();
    let mut dropped = 0usize;
    let mut first_error = None;
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match version {
            1 => parse_line_v1(line),
            _ => parse_line(line),
        };
        match parsed {
            Some(e) => {
                entries.insert(e.fingerprint, e);
            }
            None => {
                dropped += 1;
                first_error.get_or_insert_with(|| format!("malformed line {}", i + 2));
            }
        }
    }
    match first_error {
        None => Ok((entries, version < SCHEMA_VERSION)),
        Some(reason) => Err((entries, dropped, reason)),
    }
}

/// Parse the comma-joined pass-sequence field (`-` = empty sequence).
fn passes_from_text(seq: &str) -> Option<Vec<String>> {
    if seq == "-" {
        return Some(Vec::new());
    }
    let ps: Vec<String> = seq.split(',').map(str::to_string).collect();
    if ps.iter().any(String::is_empty) {
        return None;
    }
    Some(ps)
}

/// Parse one schema-2 line.
fn parse_line(line: &str) -> Option<TuneDbEntry> {
    let mut parts = line.split_ascii_whitespace();
    let fingerprint = zkvmopt_ir::analysis::fingerprint_from_hex(parts.next()?)?;
    let cycles = parts.next()?.parse().ok()?;
    let baseline_cycles = parts.next()?.parse().ok()?;
    let inline_threshold = parts.next()?.parse().ok()?;
    let unroll_threshold = parts.next()?.parse().ok()?;
    let passes = passes_from_text(parts.next()?)?;
    let features = features_from_text(parts.next()?)?;
    if parts.next().is_some() {
        return None; // trailing junk: reject rather than misread
    }
    Some(TuneDbEntry {
        fingerprint,
        passes,
        inline_threshold,
        unroll_threshold,
        cycles,
        baseline_cycles,
        features,
    })
}

/// Parse one legacy schema-1 line (no baseline, no features).
fn parse_line_v1(line: &str) -> Option<TuneDbEntry> {
    let mut parts = line.split_ascii_whitespace();
    let fingerprint = zkvmopt_ir::analysis::fingerprint_from_hex(parts.next()?)?;
    let cycles = parts.next()?.parse().ok()?;
    let inline_threshold = parts.next()?.parse().ok()?;
    let unroll_threshold = parts.next()?.parse().ok()?;
    let passes = passes_from_text(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some(TuneDbEntry {
        fingerprint,
        passes,
        inline_threshold,
        unroll_threshold,
        cycles,
        baseline_cycles: 0,
        features: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fp: u64, cycles: u64, passes: &[&str]) -> TuneDbEntry {
        TuneDbEntry {
            fingerprint: fp,
            passes: passes.iter().map(|s| s.to_string()).collect(),
            inline_threshold: 225,
            unroll_threshold: 200,
            cycles,
            baseline_cycles: cycles * 2,
            features: vec![1.0, 0.5, 1.0 / 3.0],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zkvmopt-tunedb-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("tune.db");
        let mut db = TuneDb::open(&path);
        assert_eq!(*db.load_status(), LoadStatus::Fresh);
        assert!(db.record(entry(0xA, 500, &["mem2reg", "gvn"])));
        assert!(db.record(entry(0xB, 900, &[])));
        db.save().unwrap();

        let re = TuneDb::open(&path);
        assert_eq!(*re.load_status(), LoadStatus::Loaded { entries: 2 });
        assert_eq!(re.get(0xA), db.get(0xA));
        assert_eq!(re.get(0xB), db.get(0xB));
        assert_eq!(re.get(0xB).unwrap().passes, Vec::<String>::new());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn record_keeps_the_best_and_is_idempotent() {
        let mut db = TuneDb::in_memory();
        assert!(db.record(entry(1, 1000, &["dce"])));
        assert!(!db.record(entry(1, 1000, &["gvn"])), "tie keeps stored");
        assert_eq!(db.get(1).unwrap().passes, vec!["dce"]);
        assert!(!db.record(entry(1, 2000, &["gvn"])), "worse is rejected");
        assert!(db.record(entry(1, 900, &["gvn"])), "better replaces");
        assert_eq!(db.get(1).unwrap().cycles, 900);
        assert!(db.remove(1).is_some());
        assert!(db.is_empty());
    }

    #[test]
    fn schema_version_mismatch_rejects_the_file() {
        let dir = tmpdir("version");
        let path = dir.join("tune.db");
        std::fs::write(
            &path,
            format!(
                "{MAGIC} {}\n{} 500 225 200 mem2reg\n",
                SCHEMA_VERSION + 1,
                zkvmopt_ir::analysis::fingerprint_to_hex(0xA)
            ),
        )
        .unwrap();
        let db = TuneDb::open(&path);
        assert!(db.is_empty(), "future-versioned entries must not load");
        match db.load_status() {
            LoadStatus::Recovered {
                kept: 0,
                dropped: 1,
                reason,
            } => {
                assert!(reason.contains("schema version"), "{reason}");
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_dropped_and_valid_lines_salvaged() {
        let dir = tmpdir("corrupt");
        let path = dir.join("tune.db");
        let good = format!(
            "{} 500 1000 225 200 mem2reg,gvn 1,0.5",
            zkvmopt_ir::analysis::fingerprint_to_hex(0xA)
        );
        // A truncated second record (crash mid-write) plus trailing junk.
        std::fs::write(
            &path,
            format!("{MAGIC} {SCHEMA_VERSION}\n{good}\n00abcdef012 77\nnot a line at all\n"),
        )
        .unwrap();
        let db = TuneDb::open(&path);
        assert_eq!(db.len(), 1, "the well-formed line survives");
        assert_eq!(db.get(0xA).unwrap().passes, vec!["mem2reg", "gvn"]);
        match db.load_status() {
            LoadStatus::Recovered {
                kept: 1,
                dropped: 2,
                ..
            } => {}
            other => panic!("expected recovery, got {other:?}"),
        }
        // Saving heals the file.
        db.save().unwrap();
        let healed = TuneDb::open(&path);
        assert_eq!(*healed.load_status(), LoadStatus::Loaded { entries: 1 });
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn garbage_and_empty_files_recover_to_empty() {
        let dir = tmpdir("garbage");
        for (name, content) in [
            ("binary", "\u{0}\u{1}\u{2}garbage"),
            ("empty", ""),
            ("wrong-magic", "sqlite3 1\n"),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let db = TuneDb::open(&path);
            assert!(db.is_empty(), "{name}");
            assert!(
                matches!(db.load_status(), LoadStatus::Recovered { .. }),
                "{name}: {:?}",
                db.load_status()
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_takes_the_advisory_lock_and_leaves_the_sidecar() {
        let dir = tmpdir("locking");
        let path = dir.join("tune.db");
        let mut db = TuneDb::open(&path);
        db.record(entry(0xC, 300, &["dce"]));
        db.save().unwrap();
        let sidecar = crate::lock::lock_path_for(&path);
        assert!(sidecar.exists(), "save must have created the lock sidecar");
        // A stale sidecar (left by a dead process) never blocks reopening:
        // flock dies with its descriptor.
        let re = TuneDb::open(&path);
        assert_eq!(re.len(), 1);
        // While *we* hold the lock, save from another thread still
        // completes once we release — it blocks rather than corrupts.
        let held = crate::lock::FileLock::acquire(&path).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let t = {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut other = TuneDb::in_memory();
                other.record(entry(0xD, 400, &["gvn"]));
                let other = TuneDb {
                    path,
                    entries: other.entries,
                    load_status: LoadStatus::Fresh,
                    dirty: Cell::new(true),
                };
                other.save().unwrap();
                tx.send(()).unwrap();
            })
        };
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(200))
                .is_err(),
            "save must wait for the lock holder"
        );
        drop(held);
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("save completes after release");
        t.join().unwrap();
        assert_eq!(TuneDb::open(&path).get(0xD).unwrap().cycles, 400);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn trailing_junk_on_a_line_is_rejected() {
        let hex = zkvmopt_ir::analysis::fingerprint_to_hex(0xA);
        assert!(parse_line(&format!("{hex} 500 1000 225 200 mem2reg 1,2.5")).is_some());
        assert!(parse_line(&format!("{hex} 500 1000 225 200 mem2reg 1,2.5 extra")).is_none());
        assert!(parse_line(&format!("{hex} 500 1000 225 200 mem2reg,,gvn 1")).is_none());
        assert!(parse_line(&format!("{hex} 500 1000 225 200 - -")).is_some());
        assert!(parse_line(&format!("{hex} 500 1000 225 200 mem2reg nan")).is_none());
        assert!(parse_line(&format!("{hex} 500 1000 225 200 mem2reg inf,1")).is_none());
        assert!(
            parse_line(&format!("{hex} 500 225 200 mem2reg")).is_none(),
            "v1 arity"
        );
        assert!(parse_line_v1(&format!("{hex} 500 225 200 mem2reg")).is_some());
        assert!(parse_line_v1(&format!("{hex} 500 225 200 mem2reg extra")).is_none());
    }

    /// The v1 → v2 migration: a schema-1 file loads cleanly (entries carry
    /// no features / baseline), comes up dirty, and the first save rewrites
    /// it as schema 2 — after which a reload is clean and bit-stable.
    #[test]
    fn v1_files_migrate_to_v2_on_load_and_save() {
        let dir = tmpdir("migrate");
        let path = dir.join("tune.db");
        let hex_a = zkvmopt_ir::analysis::fingerprint_to_hex(0xA);
        let hex_b = zkvmopt_ir::analysis::fingerprint_to_hex(0xB);
        std::fs::write(
            &path,
            format!("{MAGIC} 1\n{hex_a} 500 225 200 mem2reg,gvn\n{hex_b} 900 100 50 -\n"),
        )
        .unwrap();
        let db = TuneDb::open(&path);
        assert_eq!(*db.load_status(), LoadStatus::Loaded { entries: 2 });
        assert!(db.is_dirty(), "stale format must schedule a rewrite");
        let a = db.get(0xA).unwrap();
        assert_eq!(a.passes, vec!["mem2reg", "gvn"]);
        assert_eq!(a.cycles, 500);
        assert_eq!(a.baseline_cycles, 0, "v1 has no baseline");
        assert!(a.features.is_empty(), "v1 has no features");
        db.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.starts_with(&format!("{MAGIC} 2\n")),
            "save upgrades the schema: {text:?}"
        );
        let re = TuneDb::open(&path);
        assert!(!re.is_dirty());
        assert_eq!(re.get(0xA), db.get(0xA));
        assert_eq!(re.get(0xB), db.get(0xB));

        // Re-recording a migrated entry with an equal-or-worse result still
        // backfills the prediction fields.
        let mut re = re;
        assert!(re.record(entry(0xA, 500, &["mem2reg", "gvn"])));
        let healed = re.get(0xA).unwrap();
        assert_eq!(healed.cycles, 500);
        assert!(!healed.features.is_empty());
        assert_eq!(healed.baseline_cycles, 1000);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Corrupt v2 lines salvage exactly like corrupt v1 lines always did:
    /// well-formed lines survive, the file heals on save.
    #[test]
    fn corrupt_v2_feature_fields_are_dropped_not_misread() {
        let dir = tmpdir("corrupt-v2");
        let path = dir.join("tune.db");
        let good = format!(
            "{} 500 1000 225 200 mem2reg 1,2,3",
            zkvmopt_ir::analysis::fingerprint_to_hex(0xA)
        );
        let bad_feats = format!(
            "{} 600 1200 225 200 gvn 1,junk,3",
            zkvmopt_ir::analysis::fingerprint_to_hex(0xB)
        );
        std::fs::write(
            &path,
            format!("{MAGIC} {SCHEMA_VERSION}\n{good}\n{bad_feats}\n"),
        )
        .unwrap();
        let db = TuneDb::open(&path);
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(0xA).unwrap().features, vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            db.load_status(),
            LoadStatus::Recovered {
                kept: 1,
                dropped: 1,
                ..
            }
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Dirty tracking: save is a no-op until something changes, each change
    /// re-arms it, and a successful save disarms it again.
    #[test]
    fn save_skips_the_write_when_nothing_changed() {
        let dir = tmpdir("dirty");
        let path = dir.join("tune.db");
        let mut db = TuneDb::open(&path);
        assert!(!db.is_dirty());
        db.save().unwrap();
        assert!(!path.exists(), "clean fresh db must not touch the disk");

        db.record(entry(0xA, 500, &["dce"]));
        assert!(db.is_dirty());
        db.save().unwrap();
        assert!(!db.is_dirty());
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();

        // No change → no rewrite (the rename would bump the inode/mtime).
        std::thread::sleep(std::time::Duration::from_millis(20));
        db.save().unwrap();
        assert_eq!(
            std::fs::metadata(&path).unwrap().modified().unwrap(),
            mtime,
            "clean save must skip the write+rename"
        );

        // A worse record changes nothing: still clean.
        assert!(!db.record(entry(0xA, 900, &["gvn"])));
        assert!(!db.is_dirty());
        // Removal dirties.
        db.remove(0xA);
        assert!(db.is_dirty());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
