//! # zkvmopt-tuner
//!
//! A genetic pass-sequence autotuner — the workspace's OpenTuner substitute
//! (paper §4.2). Candidates are LLVM-style pass sequences up to depth 20 plus
//! the integer parameters the paper tunes (`-inline-threshold`,
//! `-unroll-threshold`); fitness is the zkVM **cycle count**, the paper's
//! cheap, noise-free proxy for execution and proving time.
//!
//! ## Candidate memoization
//!
//! Genetic search re-visits candidates constantly (crossover reassembles
//! parents, mutation undoes itself, and no-op passes pad otherwise-equal
//! sequences), and every fitness evaluation re-lowers and re-optimizes a
//! whole workload. [`autotune`] therefore canonicalizes each candidate's
//! sequence ([`canonicalize_sequence`]: resolve registry aliases, drop
//! registered no-ops, collapse idempotent adjacent repeats — all
//! output-preserving by the registry's tested metadata) and caches fitness
//! keyed on `(canonical sequence, inline_threshold, unroll_threshold)`.
//! Duplicate candidates never reach the fitness function twice;
//! [`TuneResult::cache_hits`] reports how often that fired. Fitness functions
//! must be deterministic (cycle counts are), so memoization cannot change
//! any search outcome — only its cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use zkvmopt_passes::{find_pass, pass_names, PassConfig};

pub mod cache;
pub mod checkpoint;
pub mod db;
pub mod fault;
pub mod lock;
pub mod predict;
pub mod rng;
pub mod service;

pub use cache::{FitnessKey, ShardedFitnessCache};
pub use checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointStatus, CHECKPOINT_SCHEMA_VERSION,
};
pub use db::{LoadStatus, TuneDb, TuneDbEntry, SCHEMA_VERSION};
pub use fault::{EvalResult, FailureClass, FaultConfig, FaultPlan};
pub use lock::{lock_path_for, FileLock};
pub use predict::{Prediction, Predictor};
pub use rng::{seed_from_env, SeedTree};
pub use service::{
    tune_suite, QuarantineEntry, ServiceConfig, ServiceReport, TuneTarget, WorkloadTuneReport,
};

/// One tuning candidate: a pass sequence plus parameter values.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Ordered pass names (≤ `max_depth`).
    pub passes: Vec<&'static str>,
    /// Inlining threshold (LLVM default 225).
    pub inline_threshold: usize,
    /// Unrolling budget.
    pub unroll_threshold: usize,
}

impl Candidate {
    /// The [`PassConfig`] this candidate's parameters select.
    pub fn pass_config(&self) -> PassConfig {
        PassConfig {
            inline_threshold: self.inline_threshold,
            unroll_threshold: self.unroll_threshold,
            ..PassConfig::default()
        }
    }

    /// One random candidate from the tuner's generator (the same
    /// distribution `autotune` seeds its population with): a pass sequence
    /// of depth 1..=`max_depth` drawn uniformly from the registry, plus
    /// random threshold parameters. Deterministic in `seed`, drawn through
    /// the service's splittable [`SeedTree`] (stream `(0, 0)`) so callers
    /// and the parallel tuner share one seeding discipline — this is the
    /// entry point the property-based pass tests sample sequences from.
    pub fn random(seed: u64, max_depth: usize) -> Candidate {
        let mut rng = SeedTree::new(seed).rng(0, 0);
        random_candidate(&mut rng, pass_names(), max_depth)
    }
}

/// The known-good seed candidates every population starts from (`-O2`-style
/// skeletons); shared by [`autotune`] and the parallel service's island 0.
pub(crate) fn anchor_candidates(max_depth: usize) -> Vec<Candidate> {
    let mut anchors = vec![
        Candidate {
            passes: vec![
                "mem2reg",
                "instcombine",
                "simplifycfg",
                "inline",
                "gvn",
                "dce",
            ],
            inline_threshold: 225,
            unroll_threshold: 200,
        },
        Candidate {
            passes: vec![
                "mem2reg",
                "inline",
                "sroa",
                "early-cse",
                "sccp",
                "simplifycfg",
            ],
            inline_threshold: 1000,
            unroll_threshold: 400,
        },
    ];
    for a in &mut anchors {
        a.passes.truncate(max_depth.max(1));
    }
    anchors
}

/// Tuner configuration (paper: 160 iterations per benchmark, 1600 for the
/// suite-level experiment).
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Total fitness evaluations.
    pub iterations: usize,
    /// Population size.
    pub population: usize,
    /// Maximum pass-sequence depth (paper: 20).
    pub max_depth: usize,
    /// RNG seed (the study is deterministic end to end).
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            iterations: 160,
            population: 16,
            max_depth: 20,
            seed: 0xC0FFEE,
        }
    }
}

/// Autotuning outcome.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best candidate found.
    pub best: Candidate,
    /// Its fitness (cycle count; lower is better).
    pub best_fitness: u64,
    /// Best-so-far trajectory, one entry per evaluation.
    pub history: Vec<u64>,
    /// Number of candidates evaluated (invalid ones included).
    pub evaluated: usize,
    /// Evaluations served from the candidate memo instead of re-running the
    /// fitness function (duplicates modulo [`canonicalize_sequence`]).
    pub cache_hits: usize,
}

/// Canonicalize a pass sequence for content-keyed memoization:
///
/// 1. resolve registry aliases to their canonical names (`ipconstprop` ≡
///    `ipsccp`),
/// 2. drop registered no-op passes (they never change the module),
/// 3. collapse adjacent repeats of idempotent passes (`dce dce` ≡ `dce`).
///
/// Each rewrite is output-preserving by the registry's declared (and tested)
/// metadata, so two candidates with equal canonical sequences and equal
/// thresholds compile to identical programs.
pub fn canonicalize_sequence(passes: &[&'static str]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::with_capacity(passes.len());
    for &p in passes {
        // One registry lookup per element (this runs per candidate in the
        // search loop).
        let entry = find_pass(p).unwrap_or_else(|| panic!("unknown pass `{p}`"));
        if entry.noop {
            continue;
        }
        let canon = entry.canonical_name();
        if out.last() == Some(&canon) && entry.is_idempotent() {
            continue;
        }
        out.push(canon);
    }
    out
}

pub(crate) fn random_candidate(
    rng: &mut StdRng,
    names: &[&'static str],
    max_depth: usize,
) -> Candidate {
    let depth = rng.gen_range(1..=max_depth);
    let passes = (0..depth)
        .map(|_| names[rng.gen_range(0..names.len())])
        .collect();
    Candidate {
        passes,
        inline_threshold: rng.gen_range(0..8192),
        unroll_threshold: rng.gen_range(0..2048),
    }
}

pub(crate) fn mutate(
    rng: &mut StdRng,
    c: &Candidate,
    names: &[&'static str],
    max_depth: usize,
) -> Candidate {
    let mut n = c.clone();
    match rng.gen_range(0..5) {
        0 if n.passes.len() < max_depth => {
            let at = rng.gen_range(0..=n.passes.len());
            n.passes.insert(at, names[rng.gen_range(0..names.len())]);
        }
        1 if n.passes.len() > 1 => {
            let at = rng.gen_range(0..n.passes.len());
            n.passes.remove(at);
        }
        2 => {
            let at = rng.gen_range(0..n.passes.len());
            n.passes[at] = names[rng.gen_range(0..names.len())];
        }
        3 => {
            n.inline_threshold = rng.gen_range(0..8192);
        }
        _ => {
            n.unroll_threshold = rng.gen_range(0..2048);
        }
    }
    n
}

pub(crate) fn crossover(
    rng: &mut StdRng,
    a: &Candidate,
    b: &Candidate,
    max_depth: usize,
) -> Candidate {
    let cut_a = rng.gen_range(0..=a.passes.len());
    let cut_b = rng.gen_range(0..=b.passes.len());
    let mut passes: Vec<&'static str> = a.passes[..cut_a]
        .iter()
        .chain(b.passes[cut_b..].iter())
        .copied()
        .collect();
    passes.truncate(max_depth);
    if passes.is_empty() {
        passes.push(a.passes.first().copied().unwrap_or("mem2reg"));
    }
    Candidate {
        passes,
        inline_threshold: if rng.gen_bool(0.5) {
            a.inline_threshold
        } else {
            b.inline_threshold
        },
        unroll_threshold: if rng.gen_bool(0.5) {
            a.unroll_threshold
        } else {
            b.unroll_threshold
        },
    }
}

/// Content-keyed fitness memo: candidates equal modulo canonicalization are
/// evaluated once.
struct MemoFitness<F> {
    fitness: F,
    cache: HashMap<(Vec<&'static str>, usize, usize), Option<u64>>,
    hits: usize,
}

impl<F: FnMut(&Candidate) -> Option<u64>> MemoFitness<F> {
    fn new(fitness: F) -> MemoFitness<F> {
        MemoFitness {
            fitness,
            cache: HashMap::new(),
            hits: 0,
        }
    }

    fn eval(&mut self, c: &Candidate) -> Option<u64> {
        let key = (
            canonicalize_sequence(&c.passes),
            c.inline_threshold,
            c.unroll_threshold,
        );
        if let Some(v) = self.cache.get(&key) {
            self.hits += 1;
            return *v;
        }
        let v = (self.fitness)(c);
        self.cache.insert(key, v);
        v
    }
}

/// Run the genetic search. `fitness` returns the cycle count for a candidate,
/// or `None` when the candidate is invalid (e.g. broke correctness — which
/// would be a real finding, like the paper's SP1 soundness bug, but must not
/// win the race). `fitness` must be deterministic: duplicate candidates
/// (modulo [`canonicalize_sequence`]) are served from a memo and never
/// re-evaluated.
pub fn autotune(
    config: &TunerConfig,
    fitness: impl FnMut(&Candidate) -> Option<u64>,
) -> TuneResult {
    let mut fitness = MemoFitness::new(fitness);
    let names = pass_names();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.iterations);
    let mut evaluated = 0;

    // Seed the population with random candidates plus known-good anchors.
    let mut population: Vec<(Candidate, Option<u64>)> = Vec::new();
    for a in anchor_candidates(config.max_depth) {
        population.push((a, None));
    }
    while population.len() < config.population {
        population.push((random_candidate(&mut rng, names, config.max_depth), None));
    }
    let mut best: Option<(Candidate, u64)> = None;
    let mut evals_left = config.iterations;

    // Evaluate initial population.
    for (c, f) in population.iter_mut() {
        if evals_left == 0 {
            break;
        }
        *f = fitness.eval(c);
        evaluated += 1;
        evals_left -= 1;
        if let Some(v) = *f {
            if best.as_ref().is_none_or(|(_, b)| v < *b) {
                best = Some((c.clone(), v));
            }
        }
        history.push(best.as_ref().map_or(u64::MAX, |(_, b)| *b));
    }

    while evals_left > 0 {
        // Tournament selection of two parents among evaluated candidates.
        let pick = |rng: &mut StdRng, pop: &[(Candidate, Option<u64>)]| -> Candidate {
            let mut bestc: Option<(usize, u64)> = None;
            for _ in 0..3 {
                let i = rng.gen_range(0..pop.len());
                let f = pop[i].1.unwrap_or(u64::MAX);
                if bestc.is_none_or(|(_, bf)| f < bf) {
                    bestc = Some((i, f));
                }
            }
            pop[bestc.expect("non-empty population").0].0.clone()
        };
        let p1 = pick(&mut rng, &population);
        let p2 = pick(&mut rng, &population);
        let mut child = if rng.gen_bool(0.7) {
            crossover(&mut rng, &p1, &p2, config.max_depth)
        } else {
            p1.clone()
        };
        if rng.gen_bool(0.9) {
            child = mutate(&mut rng, &child, names, config.max_depth);
        }
        let f = fitness.eval(&child);
        evaluated += 1;
        evals_left -= 1;
        if let Some(v) = f {
            if best.as_ref().is_none_or(|(_, b)| v < *b) {
                best = Some((child.clone(), v));
            }
        }
        history.push(best.as_ref().map_or(u64::MAX, |(_, b)| *b));
        // Replace the worst member.
        let worst = population
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, f))| f.unwrap_or(u64::MAX))
            .map(|(i, _)| i)
            .expect("non-empty population");
        if f.unwrap_or(u64::MAX) < population[worst].1.unwrap_or(u64::MAX) {
            population[worst] = (child, f);
        }
    }

    let (best, best_fitness) = best.expect("at least one valid candidate evaluated");
    TuneResult {
        best,
        best_fitness,
        history,
        evaluated,
        cache_hits: fitness.hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_synthetic_fitness() {
        // Fitness rewards containing mem2reg early and inline anywhere.
        let cfg = TunerConfig {
            iterations: 120,
            ..Default::default()
        };
        let r = autotune(&cfg, |c| {
            let mut score: u64 = 10_000;
            if c.passes.first() == Some(&"mem2reg") {
                score -= 4_000;
            }
            if c.passes.contains(&"inline") {
                score -= 3_000;
            }
            score += c.passes.len() as u64 * 10;
            Some(score)
        });
        assert!(r.best_fitness <= 3_500, "fitness {}", r.best_fitness);
        assert!(r.best.passes.contains(&"inline"));
        assert_eq!(r.evaluated, 120);
    }

    #[test]
    fn history_is_monotonically_non_increasing() {
        let cfg = TunerConfig {
            iterations: 60,
            ..Default::default()
        };
        let r = autotune(&cfg, |c| Some(c.passes.len() as u64 * 100 + 7));
        for w in r.history.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = TunerConfig {
            iterations: 50,
            seed: 7,
            ..Default::default()
        };
        let f = |c: &Candidate| Some(c.inline_threshold as u64 + c.passes.len() as u64);
        let a = autotune(&cfg, f);
        let b = autotune(&cfg, f);
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn canonicalization_normalizes_sequences() {
        // Aliases resolve, no-ops drop, idempotent adjacent repeats collapse.
        assert_eq!(
            canonicalize_sequence(&[
                "ipconstprop",
                "loop-data-prefetch",
                "dce",
                "dce",
                "slp-vectorizer",
                "dce",
                "instcombine",
                "instcombine",
                "strip-dead-prototypes",
            ]),
            vec!["ipsccp", "dce", "instcombine", "instcombine", "globaldce"],
        );
        // Non-adjacent repeats and non-idempotent repeats are kept: only
        // rewrites that provably preserve the compiled output are applied.
        assert_eq!(
            canonicalize_sequence(&["mem2reg", "gvn", "mem2reg"]),
            vec!["mem2reg", "gvn", "mem2reg"]
        );
        assert_eq!(
            canonicalize_sequence(&["mem2reg", "mem2reg", "mem2reg"]),
            vec!["mem2reg"]
        );
    }

    /// Duplicate candidates (modulo canonicalization) must be served from
    /// the memo: the user fitness function never sees them twice.
    #[test]
    fn memoization_skips_duplicate_candidates() {
        use std::collections::HashSet;
        let cfg = TunerConfig {
            iterations: 200,
            ..Default::default()
        };
        let mut invocations = 0usize;
        let mut seen_keys: HashSet<(Vec<&'static str>, usize, usize)> = HashSet::new();
        let r = autotune(&cfg, |c| {
            invocations += 1;
            assert!(
                seen_keys.insert((
                    canonicalize_sequence(&c.passes),
                    c.inline_threshold,
                    c.unroll_threshold
                )),
                "fitness saw the same canonical candidate twice"
            );
            Some(c.passes.len() as u64 * 100 + c.inline_threshold as u64 % 7)
        });
        assert_eq!(r.evaluated, 200);
        assert_eq!(invocations + r.cache_hits, r.evaluated);
        assert!(
            r.cache_hits > 0,
            "a 200-iteration seeded run must revisit at least one candidate"
        );
    }

    /// Memoization must not change what the search finds.
    #[test]
    fn memoization_preserves_search_determinism() {
        let cfg = TunerConfig {
            iterations: 80,
            seed: 11,
            ..Default::default()
        };
        // A fitness that is a pure function of the canonical key (the
        // documented contract).
        let f = |c: &Candidate| {
            let canon = canonicalize_sequence(&c.passes);
            Some(canon.len() as u64 * 50 + c.unroll_threshold as u64 % 13)
        };
        let a = autotune(&cfg, f);
        let b = autotune(&cfg, f);
        assert_eq!(a.best, b.best);
        assert_eq!(a.history, b.history);
        assert_eq!(a.cache_hits, b.cache_hits);
    }

    #[test]
    fn invalid_candidates_never_win() {
        let cfg = TunerConfig {
            iterations: 80,
            ..Default::default()
        };
        let r = autotune(&cfg, |c| {
            if c.passes.contains(&"licm") {
                None // "broke correctness"
            } else {
                Some(1000)
            }
        });
        assert!(!r.best.passes.contains(&"licm"));
    }
}
