//! Splittable seeded randomness for the parallel tuner.
//!
//! The island-model service runs many independent random streams at once —
//! one per `{workload × island}` — on however many worker threads the host
//! has. Reproducibility ("same seed, same study") must therefore not depend
//! on *which thread* evolves which island, only on the island's identity.
//! [`SeedTree`] provides that: every stream is derived from the single root
//! seed plus the stream's stable coordinates (workload fingerprint, island
//! index), never from shared mutable RNG state that threads would race on.
//!
//! The derivation is one round of SplitMix64-style avalanche mixing over
//! `root ⊕ mix(a) ⊕ mix(b)`, which decorrelates adjacent coordinates (seed
//! 1/island 0 vs seed 0/island 1 and so on); the streams themselves are the
//! workspace's deterministic [`StdRng`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Finalizing mixer from SplitMix64: full avalanche, bijective on `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single root seed that every random stream in a tuning run splits from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// A tree rooted at `root` (the run's one configured seed).
    pub fn new(root: u64) -> SeedTree {
        SeedTree { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The derived seed for stream `(a, b)` — e.g. `(workload fingerprint,
    /// island index)`. Pure function of `(root, a, b)`: thread scheduling
    /// can never perturb it.
    pub fn seed(&self, a: u64, b: u64) -> u64 {
        mix(self.root ^ mix(a) ^ mix(b.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// A fresh deterministic generator for stream `(a, b)`.
    pub fn rng(&self, a: u64, b: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed(a, b))
    }
}

/// The run's root seed: `ZKVMOPT_SEED` when set (and parseable as `u64`),
/// `default` otherwise. Pinning the env var makes every stream of a
/// service run — population init, evolution, migration — reproducible
/// regardless of thread count.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("ZKVMOPT_SEED") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("tuner: ignoring unparseable ZKVMOPT_SEED={v:?}");
            default
        }),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_and_decorrelated() {
        let t = SeedTree::new(42);
        assert_eq!(t.seed(7, 3), t.seed(7, 3));
        // Adjacent coordinates and the transposed pair all land elsewhere.
        let s = t.seed(7, 3);
        for other in [t.seed(7, 4), t.seed(8, 3), t.seed(3, 7), t.seed(0, 0)] {
            assert_ne!(s, other);
        }
        // Different roots shift every stream.
        assert_ne!(SeedTree::new(1).seed(7, 3), t.seed(7, 3));
    }

    #[test]
    fn split_streams_draw_independently() {
        let t = SeedTree::new(0xC0FFEE);
        let mut a = t.rng(1, 0);
        let mut b = t.rng(1, 0);
        let mut c = t.rng(1, 1);
        let draws_a: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let draws_b: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let draws_c: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(draws_a, draws_b, "same stream, same draws");
        assert_ne!(draws_a, draws_c, "sibling streams diverge");
    }
}
