//! O(db) pass-sequence prediction over the feature-indexed tune database.
//!
//! The [`TuneDb`] answers *exact* repeats (same fingerprint → warm start);
//! this module answers *similar* programs. Schema-2 entries carry the
//! program's structural [`FeatureVector`] and its
//! `-O3` baseline cycles, which turns the database into a labelled training
//! set: "programs shaped like this were best served by that sequence, at
//! this fraction of their baseline cost". A [`Predictor`] fit over the
//! database predicts a full `(passes, inline_threshold, unroll_threshold)`
//! candidate for an unseen program with **no engine execution** — the
//! O(1)-per-program amortization tier the paper's service model calls for.
//!
//! ## Model
//!
//! Deliberately simple and fully deterministic:
//!
//! 1. **Fit** (once per database): collect every entry with a
//!    current-dimension feature vector, a known baseline, and a still-valid
//!    pass sequence; fit per-dimension mean/σ ([`zkvmopt_stats::column_stats`])
//!    and z-score every stored vector so no raw scale dominates.
//! 2. **Predict** (per program): z-score the query with the *fitted*
//!    parameters, rank examples by Euclidean distance (ties broken by
//!    fingerprint), and let the `k` nearest vote for their canonical pass
//!    sequence with weight `1 / (distance + ε)`. The winning sequence's
//!    nearest voter supplies the thresholds, and the vote's weighted mean
//!    `cycles / baseline` ratio becomes the prediction's
//!    [`expected_ratio`](Prediction::expected_ratio) — the quality bar the
//!    service's acceptance test measures against.
//! 3. **Fallback**: an empty (or all-stale) database predicts the canonical
//!    `-O3` pipeline with default thresholds — always a sound answer, never
//!    a guess about quality (`expected_ratio: None`).
//!
//! Fit is O(db · dim); each prediction is O(db · dim + db log db) with a
//! tiny constant — microseconds against a database of hundreds, which is
//! what lets a service answer most programs without ever running the
//! genetic search (see `tune_suite`'s predict-first mode).

use crate::db::{TuneDb, TuneDbEntry};
use crate::{canonicalize_sequence, Candidate};
use zkvmopt_ir::{FeatureVector, FEATURE_DIM};
use zkvmopt_passes::{find_pass, PassConfig, PassManager};

/// Default number of neighbours consulted per prediction.
pub const DEFAULT_K: usize = 3;

/// Tie-breaker added to every neighbour distance so an exact feature match
/// (distance 0) gets a large-but-finite weight instead of a division by 0.
const DISTANCE_EPSILON: f64 = 1e-9;

/// One predicted tuning: a complete candidate plus the model's own estimate
/// of how good it should be.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The predicted candidate (canonical sequence, tuned thresholds).
    pub candidate: Candidate,
    /// The voters' weighted mean `cycles / baseline_cycles` — what fraction
    /// of a program's `-O3` baseline the winning sequence achieved on the
    /// programs that elected it. `None` for the `-O3` fallback: the model
    /// has no evidence to promise quality with.
    pub expected_ratio: Option<f64>,
    /// Neighbours consulted (≤ k; 0 for the fallback).
    pub neighbors: usize,
    /// Neighbours that voted for the winning sequence.
    pub votes: usize,
    /// Whether this is the no-evidence `-O3` fallback.
    pub fallback: bool,
}

/// One usable training example distilled from a database entry.
#[derive(Debug, Clone)]
struct Example {
    fingerprint: u64,
    /// Z-scored features (normalized at fit time with the global fit).
    zfeatures: Vec<f64>,
    candidate: Candidate,
    /// `cycles / baseline_cycles` of the stored tuning.
    ratio: f64,
}

/// A fitted k-NN sequence predictor. Immutable and deterministic: equal
/// databases fit equal predictors, and equal queries predict equal
/// candidates, at any thread count and in any process.
#[derive(Debug, Clone)]
pub struct Predictor {
    examples: Vec<Example>,
    means: Vec<f64>,
    sds: Vec<f64>,
    k: usize,
}

/// Rehydrate a stored entry into a canonical [`Candidate`]. `None` when a
/// stored pass name is no longer registered (stale database after a
/// registry change).
pub(crate) fn candidate_from_entry(e: &TuneDbEntry) -> Option<Candidate> {
    let passes: Option<Vec<&'static str>> = e
        .passes
        .iter()
        .map(|p| find_pass(p).map(|entry| entry.canonical_name()))
        .collect();
    Some(Candidate {
        passes: canonicalize_sequence(&passes?),
        inline_threshold: e.inline_threshold,
        unroll_threshold: e.unroll_threshold,
    })
}

/// The evidence-free fallback: the canonical `-O3` pipeline with the
/// default thresholds — the same answer a compiler gives every program it
/// has never seen.
pub fn o3_fallback() -> Candidate {
    let cfg = PassConfig::default();
    Candidate {
        passes: canonicalize_sequence(&PassManager::o3().names()),
        inline_threshold: cfg.inline_threshold,
        unroll_threshold: cfg.unroll_threshold,
    }
}

impl Predictor {
    /// Fit a predictor over every usable entry of `db`. `k = 0` is clamped
    /// to 1. Entries are skipped (degrading them to warm-start-only) when
    /// they carry no current-dimension features, no baseline, or a pass
    /// name the registry no longer knows.
    pub fn from_db(db: &TuneDb, k: usize) -> Predictor {
        Predictor::from_db_excluding(db, k, None)
    }

    /// [`Predictor::from_db`], excluding the entry with fingerprint
    /// `exclude` — the leave-one-out constructor the `predictive_tuning`
    /// bench evaluates generalization with.
    pub fn from_db_excluding(db: &TuneDb, k: usize, exclude: Option<u64>) -> Predictor {
        let mut raw: Vec<(&TuneDbEntry, Candidate)> = Vec::new();
        for e in db.iter() {
            if Some(e.fingerprint) == exclude
                || e.features.len() != FEATURE_DIM
                || e.baseline_cycles == 0
            {
                continue;
            }
            if let Some(c) = candidate_from_entry(e) {
                raw.push((e, c));
            }
        }
        let rows: Vec<&[f64]> = raw.iter().map(|(e, _)| e.features.as_slice()).collect();
        let (means, sds) = zkvmopt_stats::column_stats(&rows);
        let examples = raw
            .into_iter()
            .map(|(e, candidate)| Example {
                fingerprint: e.fingerprint,
                zfeatures: normalize(&e.features, &means, &sds),
                candidate,
                ratio: e.cycles as f64 / e.baseline_cycles as f64,
            })
            .collect();
        Predictor {
            examples,
            means,
            sds,
            k: k.max(1),
        }
    }

    /// Number of training examples the fit kept.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the fit kept no examples (every prediction falls back).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Predict a full candidate for a program with the given features.
    /// Pure: no I/O, no engine execution, no randomness.
    pub fn predict(&self, features: &FeatureVector) -> Prediction {
        if self.examples.is_empty() {
            return Prediction {
                candidate: o3_fallback(),
                expected_ratio: None,
                neighbors: 0,
                votes: 0,
                fallback: true,
            };
        }
        let q = normalize(features.as_slice(), &self.means, &self.sds);
        // Rank every example by distance; fingerprint breaks exact ties so
        // the order (hence the vote) is deterministic.
        let mut scored: Vec<(f64, usize)> = self
            .examples
            .iter()
            .enumerate()
            .map(|(i, e)| (euclidean(&q, &e.zfeatures), i))
            .collect();
        scored.sort_by(|a, b| {
            a.0.total_cmp(&b.0).then_with(|| {
                self.examples[a.1]
                    .fingerprint
                    .cmp(&self.examples[b.1].fingerprint)
            })
        });
        let k = self.k.min(scored.len());

        // Distance-weighted vote, grouped by canonical sequence. Groups are
        // kept in nearest-first insertion order, so a weight tie elects the
        // group with the closest neighbour.
        struct Group {
            key: Vec<&'static str>,
            weight: f64,
            votes: usize,
            nearest: usize,
            ratio_weighted: f64,
        }
        let mut groups: Vec<Group> = Vec::new();
        for &(d, i) in &scored[..k] {
            let e = &self.examples[i];
            let w = 1.0 / (d + DISTANCE_EPSILON);
            match groups.iter_mut().find(|g| g.key == e.candidate.passes) {
                Some(g) => {
                    g.weight += w;
                    g.votes += 1;
                    g.ratio_weighted += w * e.ratio;
                }
                None => groups.push(Group {
                    key: e.candidate.passes.clone(),
                    weight: w,
                    votes: 1,
                    nearest: i,
                    ratio_weighted: w * e.ratio,
                }),
            }
        }
        let winner = groups
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.weight.total_cmp(&b.weight).then(ib.cmp(ia)))
            .map(|(_, g)| g)
            .expect("k >= 1 examples voted");
        Prediction {
            candidate: self.examples[winner.nearest].candidate.clone(),
            expected_ratio: Some(winner.ratio_weighted / winner.weight),
            neighbors: k,
            votes: winner.votes,
            fallback: false,
        }
    }
}

/// Z-score `values` against the fitted per-dimension parameters. A constant
/// dimension (σ = 0) maps to 0 on both sides and contributes nothing to any
/// distance.
fn normalize(values: &[f64], means: &[f64], sds: &[f64]) -> Vec<f64> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| zkvmopt_stats::zscore(v, means[i], sds[i]))
        .collect()
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A db entry whose features put it at coordinate `x` on axis 0 (the
    /// remaining dimensions are constant, hence z-score-inert).
    fn entry(fp: u64, x: f64, cycles: u64, baseline: u64, passes: &[&str]) -> TuneDbEntry {
        let mut features = vec![0.5; FEATURE_DIM];
        features[0] = x;
        TuneDbEntry {
            fingerprint: fp,
            passes: passes.iter().map(|s| s.to_string()).collect(),
            inline_threshold: 100 + fp as usize,
            unroll_threshold: 200,
            cycles,
            baseline_cycles: baseline,
            features,
        }
    }

    fn fv(x: f64) -> FeatureVector {
        let mut raw = vec![0.5; FEATURE_DIM];
        raw[0] = x;
        FeatureVector::from_slice(&raw).unwrap()
    }

    #[test]
    fn empty_database_falls_back_to_o3() {
        let db = TuneDb::in_memory();
        let p = Predictor::from_db(&db, 3);
        assert!(p.is_empty());
        let pred = p.predict(&fv(1.0));
        assert!(pred.fallback);
        assert_eq!(pred.expected_ratio, None);
        assert_eq!(pred.neighbors, 0);
        assert_eq!(
            pred.candidate.passes,
            canonicalize_sequence(&PassManager::o3().names())
        );
        assert!(!pred.candidate.passes.is_empty());
    }

    #[test]
    fn nearest_neighbour_wins_and_supplies_thresholds() {
        let mut db = TuneDb::in_memory();
        db.record(entry(1, 0.0, 300, 1000, &["mem2reg", "gvn"]));
        db.record(entry(2, 10.0, 500, 1000, &["dce"]));
        let p = Predictor::from_db(&db, 1);
        assert_eq!(p.len(), 2);
        let near = p.predict(&fv(0.5));
        assert_eq!(near.candidate.passes, vec!["mem2reg", "gvn"]);
        assert_eq!(near.candidate.inline_threshold, 101, "voter's thresholds");
        let r = near.expected_ratio.unwrap();
        assert!((r - 0.3).abs() < 1e-9, "its recorded quality, got {r}");
        assert!(!near.fallback);
        let far = p.predict(&fv(9.5));
        assert_eq!(far.candidate.passes, vec!["dce"]);
        let r = far.expected_ratio.unwrap();
        assert!((r - 0.5).abs() < 1e-9, "got {r}");
    }

    /// Two agreeing moderate neighbours outvote one slightly-nearer loner
    /// when their combined weight wins — and a much nearer loner still wins:
    /// the vote is distance-*weighted*, not majority-ruled.
    #[test]
    fn votes_are_distance_weighted() {
        let mut db = TuneDb::in_memory();
        db.record(entry(1, 2.0, 400, 1000, &["gvn"]));
        db.record(entry(2, 4.0, 440, 1000, &["gvn"]));
        db.record(entry(3, 1.0, 300, 1000, &["mem2reg"]));
        let p = Predictor::from_db(&db, 3);

        // Query on top of the loner: weight ~1/ε dwarfs the pair.
        let on_loner = p.predict(&fv(1.0));
        assert_eq!(on_loner.candidate.passes, vec!["mem2reg"]);
        assert_eq!(on_loner.votes, 1);

        // Query amid the pair: their combined weight beats the loner.
        let amid_pair = p.predict(&fv(3.0));
        assert_eq!(amid_pair.candidate.passes, vec!["gvn"]);
        assert_eq!(amid_pair.votes, 2);
        assert_eq!(amid_pair.neighbors, 3);
        // Expected ratio blends the two voters, so it lies between them.
        let r = amid_pair.expected_ratio.unwrap();
        assert!(r > 0.4 && r < 0.44, "blended ratio, got {r}");
    }

    #[test]
    fn stale_and_unusable_entries_are_skipped_at_fit() {
        let mut db = TuneDb::in_memory();
        db.record(entry(1, 0.0, 300, 1000, &["mem2reg"]));
        // No baseline: warm-start-only.
        db.record(entry(2, 0.0, 300, 0, &["dce"]));
        // Wrong feature arity (e.g. pre-dating a FEATURE_DIM change).
        db.record(TuneDbEntry {
            features: vec![1.0, 2.0],
            ..entry(3, 0.0, 300, 1000, &["dce"])
        });
        // Unknown pass: stale after a registry change.
        db.record(entry(4, 0.0, 300, 1000, &["a-pass-that-never-existed"]));
        let p = Predictor::from_db(&db, 3);
        assert_eq!(p.len(), 1, "only the fully-usable entry trains");
        assert_eq!(p.predict(&fv(0.0)).candidate.passes, vec!["mem2reg"]);
    }

    #[test]
    fn leave_one_out_excludes_exactly_that_entry() {
        let mut db = TuneDb::in_memory();
        db.record(entry(1, 0.0, 300, 1000, &["mem2reg"]));
        db.record(entry(2, 10.0, 500, 1000, &["dce"]));
        let p = Predictor::from_db_excluding(&db, 3, Some(1));
        assert_eq!(p.len(), 1);
        // With its own entry excluded, the query lands on the other one.
        assert_eq!(p.predict(&fv(0.0)).candidate.passes, vec!["dce"]);
    }

    /// The determinism contract: equal databases → bit-identical
    /// predictions, including thresholds and expected ratio.
    #[test]
    fn prediction_is_deterministic() {
        let mut db = TuneDb::in_memory();
        for i in 0..20u64 {
            let passes: &[&str] = if i % 3 == 0 {
                &["mem2reg", "gvn"]
            } else if i % 3 == 1 {
                &["dce", "simplifycfg"]
            } else {
                &["inline"]
            };
            db.record(entry(i, i as f64 * 0.37, 300 + i * 11, 1000 + i, passes));
        }
        let a = Predictor::from_db(&db, 5);
        let b = Predictor::from_db(&db, 5);
        for q in [0.0, 1.7, 3.3, 7.4] {
            assert_eq!(a.predict(&fv(q)), b.predict(&fv(q)), "query {q}");
        }
    }

    /// Exact feature ties are broken by fingerprint, not insertion order.
    #[test]
    fn exact_ties_break_by_fingerprint() {
        let mut db = TuneDb::in_memory();
        db.record(entry(9, 1.0, 400, 1000, &["dce"]));
        db.record(entry(2, 1.0, 300, 1000, &["mem2reg"]));
        let p = Predictor::from_db(&db, 1);
        let pred = p.predict(&fv(1.0));
        assert_eq!(pred.candidate.passes, vec!["mem2reg"], "lower fp wins");
    }
}
