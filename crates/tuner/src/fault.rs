//! Failure classification and deterministic fault injection.
//!
//! Tuning-as-a-service evaluates millions of candidates on untrusted
//! programs, and a candidate can fail in structurally different ways: the
//! program text may not parse, a pass may produce unverifiable IR, codegen
//! may reject the module, the candidate may trap or blow its cycle budget at
//! run time, it may *diverge* from the baseline (the miscompile channel that
//! surfaced the paper's SP1 soundness bug), or the evaluator itself may
//! panic. [`FailureClass`] is the service-side vocabulary for those
//! outcomes: it is what the fitness cache stores for failing candidates,
//! what the quarantine log records, and what the retry policy keys on
//! ([`FailureClass::is_transient`]).
//!
//! The second half of this module is the chaos harness. [`FaultPlan`] wraps
//! any fitness function and injects panics, traps, budget blowouts, and
//! corrupted fitness values at configured rates — **deterministically**.
//! Every injection decision is a pure hash of `(seed, workload, canonical
//! candidate)`, and transient faults are injected a bounded number of times
//! per candidate (at most [`FaultConfig::max_injections`], which must not
//! exceed the service's retry budget). A shared per-candidate injection
//! counter guarantees that no matter how worker threads interleave, the
//! retry loop of *some* caller always reaches the true fitness value, so a
//! service run under non-corrupting faults converges to a bit-identical
//! tune database versus the fault-free run — the property the release-only
//! chaos tests pin.

use crate::rng::SeedTree;
use crate::{canonicalize_sequence, Candidate};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Why a candidate evaluation failed, as stored in the fitness cache, the
/// quarantine log, and checkpoint files. Mirrors `zkvmopt_core`'s
/// `PipelineError` taxonomy one stage at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureClass {
    /// The program text failed to lex or parse.
    Parse,
    /// The optimized module failed IR verification (a pass bug).
    Verify,
    /// RISC-V code generation rejected the module.
    Codegen,
    /// The candidate trapped at run time (memory fault, bad jump target).
    Trap,
    /// The candidate exceeded its cycle or code-size budget.
    Budget,
    /// The candidate changed observable behaviour vs the baseline
    /// (journal or exit code) — a miscompile.
    Divergence,
    /// The evaluator panicked; caught and isolated by the service.
    Panic,
}

/// A candidate evaluation outcome: measured cycles, or why it failed.
pub type EvalResult = Result<u64, FailureClass>;

impl FailureClass {
    /// Every class, in serialization order.
    pub const ALL: [FailureClass; 7] = [
        FailureClass::Parse,
        FailureClass::Verify,
        FailureClass::Codegen,
        FailureClass::Trap,
        FailureClass::Budget,
        FailureClass::Divergence,
        FailureClass::Panic,
    ];

    /// Stable one-word token used in quarantine logs and checkpoint files.
    pub fn token(self) -> &'static str {
        match self {
            FailureClass::Parse => "parse",
            FailureClass::Verify => "verify",
            FailureClass::Codegen => "codegen",
            FailureClass::Trap => "trap",
            FailureClass::Budget => "budget",
            FailureClass::Divergence => "divergence",
            FailureClass::Panic => "panic",
        }
    }

    /// Inverse of [`FailureClass::token`].
    pub fn from_token(s: &str) -> Option<FailureClass> {
        FailureClass::ALL.into_iter().find(|c| c.token() == s)
    }

    /// Whether the service retry policy should re-attempt this failure.
    /// Compile-stage outcomes (parse/verify/codegen) and divergence are
    /// deterministic functions of the candidate — retrying them burns
    /// budget for the same answer. Panics, traps, and budget blowouts can
    /// be environmental (or injected), so they get bounded retries.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FailureClass::Panic | FailureClass::Trap | FailureClass::Budget
        )
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Injection rates for [`FaultPlan`], each in `[0, 1]`.
///
/// Panic, trap, and budget faults are **transient**: a faulted candidate is
/// injected at most [`FaultConfig::max_injections`] times and then returns
/// its true fitness, so a retrying service converges to the fault-free
/// result. Corruption is **persistent**: a corrupted candidate always
/// returns the same deterministic wrong value — it models a fault the
/// service cannot detect or retry away, and is kept out of the
/// bit-identical-convergence tests by construction.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the injection hash (independent of the search seed).
    pub seed: u64,
    /// Fraction of candidates whose evaluation panics (via unwind).
    pub panic_rate: f64,
    /// Fraction of candidates that report [`FailureClass::Trap`].
    pub trap_rate: f64,
    /// Fraction of candidates that report [`FailureClass::Budget`].
    pub budget_rate: f64,
    /// Fraction of candidates whose fitness is silently corrupted.
    pub corrupt_rate: f64,
    /// Times a transient fault fires per candidate before the true value
    /// comes through. Must be ≤ the service's `max_retries` for the
    /// bit-identical-convergence guarantee to hold.
    pub max_injections: u32,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xFA_017,
            panic_rate: 0.0,
            trap_rate: 0.0,
            budget_rate: 0.0,
            corrupt_rate: 0.0,
            max_injections: 2,
        }
    }
}

/// What the plan decided for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Injection {
    None,
    /// Unwind the evaluation (caught by the service's panic isolation).
    Panic,
    Fail(FailureClass),
    /// Persistently return this wrong fitness value.
    Corrupt(u64),
}

/// A deterministic chaos wrapper around a fitness function.
///
/// Decisions derive from a [`SeedTree`] stream of the configured seed and a
/// hash of `(workload index, canonical candidate)`, so the same plan makes
/// the same decisions in every run, at any thread count, and across a
/// kill/resume boundary.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    salt: u64,
    /// Injections already fired per candidate hash (transient faults only).
    fired: Mutex<HashMap<u64, u32>>,
    injected: Mutex<Vec<FailureClass>>,
}

impl FaultPlan {
    /// A plan for `config`.
    pub fn new(config: FaultConfig) -> FaultPlan {
        let salt = SeedTree::new(config.seed).seed(0x517, 0xC4A05);
        FaultPlan {
            config,
            salt,
            fired: Mutex::new(HashMap::new()),
            injected: Mutex::new(Vec::new()),
        }
    }

    /// Total transient + corrupt injections fired so far, by class
    /// (corruption reported as [`FailureClass::Divergence`]-free: it is not
    /// in the list, being silent by design). Order is nondeterministic;
    /// counts per class are what tests should assert on.
    pub fn injected(&self) -> Vec<FailureClass> {
        self.injected.lock().expect("fault log").clone()
    }

    /// Wrap `fitness` with this plan. The wrapper is `Sync` and can back
    /// [`tune_suite`](crate::tune_suite) directly.
    pub fn wrap<'a, F>(&'a self, fitness: F) -> impl Fn(usize, &Candidate) -> EvalResult + Sync + 'a
    where
        F: Fn(usize, &Candidate) -> EvalResult + Sync + 'a,
    {
        move |widx, c| match self.decide(widx, c) {
            Injection::None => fitness(widx, c),
            Injection::Corrupt(v) => {
                // Persistent and deterministic: every evaluation of this
                // candidate sees the same wrong value, so even the benign
                // evaluate-twice race stays consistent.
                fitness(widx, c).map(|true_v| true_v ^ (v | 1))
            }
            Injection::Panic => {
                if self.fire(widx, c, FailureClass::Panic) {
                    // resume_unwind skips the global panic hook: chaos runs
                    // do not spray "thread panicked" over the test output.
                    std::panic::resume_unwind(Box::new("injected panic"));
                }
                fitness(widx, c)
            }
            Injection::Fail(class) => {
                if self.fire(widx, c, class) {
                    Err(class)
                } else {
                    fitness(widx, c)
                }
            }
        }
    }

    /// Pure decision for one candidate.
    fn decide(&self, widx: usize, c: &Candidate) -> Injection {
        let h = self.hash(widx, c);
        // Independent coin per fault kind, each from its own hash lane;
        // first match wins in a fixed order.
        let coin = |lane: u64, rate: f64| -> bool {
            let x = splitmix(h ^ self.salt.wrapping_mul(lane | 1));
            (x >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - rate
        };
        if coin(0x11, self.config.corrupt_rate) {
            return Injection::Corrupt(splitmix(h ^ 0xBAD));
        }
        if coin(0x13, self.config.panic_rate) {
            return Injection::Panic;
        }
        if coin(0x17, self.config.trap_rate) {
            return Injection::Fail(FailureClass::Trap);
        }
        if coin(0x1D, self.config.budget_rate) {
            return Injection::Fail(FailureClass::Budget);
        }
        Injection::None
    }

    /// Register one transient injection for the candidate; `false` once the
    /// per-candidate cap is spent (the true value must come through).
    fn fire(&self, widx: usize, c: &Candidate, class: FailureClass) -> bool {
        let h = self.hash(widx, c);
        let mut fired = self.fired.lock().expect("fault counters");
        let n = fired.entry(h).or_insert(0);
        if *n >= self.config.max_injections {
            return false;
        }
        *n += 1;
        drop(fired);
        self.injected.lock().expect("fault log").push(class);
        true
    }

    /// FNV-1a over `(workload, canonical candidate)`.
    fn hash(&self, widx: usize, c: &Candidate) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.salt;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(widx as u64);
        mix(c.inline_threshold as u64);
        mix(c.unroll_threshold as u64);
        for p in canonicalize_sequence(&c.passes) {
            for b in p.bytes() {
                mix(b as u64);
            }
            mix(u64::MAX);
        }
        h
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(passes: &[&'static str], inline: usize) -> Candidate {
        Candidate {
            passes: passes.to_vec(),
            inline_threshold: inline,
            unroll_threshold: 200,
        }
    }

    #[test]
    fn tokens_round_trip() {
        for c in FailureClass::ALL {
            assert_eq!(FailureClass::from_token(c.token()), Some(c));
        }
        assert_eq!(FailureClass::from_token("nonsense"), None);
        assert!(FailureClass::Panic.is_transient());
        assert!(FailureClass::Budget.is_transient());
        assert!(!FailureClass::Divergence.is_transient());
        assert!(!FailureClass::Parse.is_transient());
    }

    #[test]
    fn decisions_are_deterministic_and_rate_sensitive() {
        let plan = |rate: f64| {
            FaultPlan::new(FaultConfig {
                trap_rate: rate,
                ..Default::default()
            })
        };
        let candidates: Vec<Candidate> = (0..2000).map(|i| cand(&["mem2reg"], i)).collect();
        let hit = |p: &FaultPlan| {
            candidates
                .iter()
                .filter(|c| p.decide(3, c) != Injection::None)
                .count()
        };
        let (a, b) = (plan(0.25), plan(0.25));
        for c in &candidates {
            assert_eq!(a.decide(3, c), b.decide(3, c), "same config, same plan");
        }
        let n = hit(&a);
        assert!(
            (300..700).contains(&n),
            "25% trap rate hit {n}/2000 candidates"
        );
        assert_eq!(hit(&plan(0.0)), 0);
        assert_eq!(hit(&plan(1.0)), 2000);
    }

    #[test]
    fn transient_faults_are_capped_then_release_the_true_value() {
        let plan = FaultPlan::new(FaultConfig {
            trap_rate: 1.0,
            max_injections: 2,
            ..Default::default()
        });
        let wrapped = plan.wrap(|_, c: &Candidate| Ok(c.inline_threshold as u64));
        let c = cand(&["gvn"], 77);
        assert_eq!(wrapped(0, &c), Err(FailureClass::Trap));
        assert_eq!(wrapped(0, &c), Err(FailureClass::Trap));
        assert_eq!(wrapped(0, &c), Ok(77), "cap spent: true value");
        assert_eq!(wrapped(0, &c), Ok(77));
        assert_eq!(plan.injected().len(), 2);
    }

    #[test]
    fn injected_panics_unwind_and_are_catchable() {
        let plan = FaultPlan::new(FaultConfig {
            panic_rate: 1.0,
            max_injections: 1,
            ..Default::default()
        });
        let wrapped = plan.wrap(|_, _c: &Candidate| Ok(5));
        let c = cand(&["dce"], 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wrapped(0, &c)));
        assert!(r.is_err(), "first call must unwind");
        assert_eq!(wrapped(0, &c), Ok(5), "cap spent: true value");
    }

    #[test]
    fn corruption_is_persistent_and_deterministic() {
        let plan = FaultPlan::new(FaultConfig {
            corrupt_rate: 1.0,
            ..Default::default()
        });
        let wrapped = plan.wrap(|_, _c: &Candidate| Ok(1000));
        let c = cand(&["sccp"], 9);
        let v = wrapped(0, &c).expect("corruption returns Ok");
        assert_ne!(v, 1000, "value must actually be wrong");
        for _ in 0..5 {
            assert_eq!(wrapped(0, &c), Ok(v), "same wrong value every time");
        }
        // Canonically-equal candidates corrupt identically (cache safety).
        let alias = cand(&["sccp", "loop-data-prefetch"], 9); // no-op dropped
        assert_eq!(wrapped(0, &alias), Ok(v));
    }
}
