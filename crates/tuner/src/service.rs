//! The parallel autotuning service: island-model search over many programs
//! at once.
//!
//! The sequential [`autotune`](crate::autotune) loop tunes one program on
//! one thread — fine for one study, hopeless for tuning-as-a-service. This
//! module restructures the search the way GPU-scale combinatorial solvers
//! do: as a large population of small, independent evolution steps that
//! worker threads chew through concurrently.
//!
//! ## Shape
//!
//! - **Islands.** Each workload gets `islands` independent populations. An
//!   island evolves alone (its own RNG stream, its own selection pressure)
//!   and every `migration_interval` generations donates its elite to the
//!   next island in the ring — classic island-model diversity with a
//!   periodic exchange of winners.
//! - **Work stealing.** Every `(workload, island, generation)` step is one
//!   task in a shared ready queue; idle workers steal the next ready task
//!   regardless of which workload it belongs to, so a slow program's islands
//!   never leave threads idle while 57 other programs have work.
//! - **Generation barriers per workload.** Islands of one workload advance
//!   in lockstep (generation `g+1` is enqueued only when all of its islands
//!   finished `g`); migration happens at the barrier, in island-index order.
//!   Different workloads proceed completely independently.
//! - **Sharded fitness cache.** All candidate evaluations go through one
//!   [`ShardedFitnessCache`] keyed by `(program fingerprint, canonical
//!   sequence, thresholds)`, shared across islands *and* workloads.
//! - **Tune database.** Known programs (by stable IR fingerprint) found in
//!   the [`TuneDb`] warm-start: with [`ServiceConfig::warm_start`] set their
//!   search is skipped outright (zero fitness evaluations, counted in
//!   [`ServiceReport::db_hits`]); fresh results are recorded back.
//!
//! ## Determinism
//!
//! Same seed → same study, **regardless of thread count**. Every random
//! stream derives from the single root seed via [`SeedTree`] streams keyed
//! by `(workload fingerprint, island index)`; migration happens at fixed
//! generation numbers in fixed order; fitness is deterministic. The only
//! scheduling-dependent observables are the cache-hit/fitness-call
//! *counters* (a benign race can evaluate a shared candidate twice), never
//! the populations, the bests, or the tune-database contents. The fitness
//! function must be a pure function of `(fingerprint, candidate)` — two
//! targets with equal fingerprints must measure identically.

use crate::cache::{FitnessKey, ShardedFitnessCache};
use crate::db::{TuneDb, TuneDbEntry};
use crate::rng::SeedTree;
use crate::{
    anchor_candidates, canonicalize_sequence, crossover, mutate, random_candidate, Candidate,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use zkvmopt_passes::{find_pass, pass_names};

/// Parallel-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Independent islands (populations) per workload.
    pub islands: usize,
    /// Population size per island.
    pub population: usize,
    /// Evolution generations per island. Each generation evaluates exactly
    /// `population` candidates, so the per-workload evaluation budget is
    /// `islands × population × generations` ([`ServiceConfig::budget_per_workload`]).
    pub generations: usize,
    /// Donate each island's elite to the ring neighbour every this many
    /// generations (`0` = never migrate).
    pub migration_interval: usize,
    /// Maximum pass-sequence depth (paper: 20).
    pub max_depth: usize,
    /// Root RNG seed; every island stream splits from it.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Skip the search for programs already in the tune database.
    pub warm_start: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            islands: 4,
            population: 8,
            generations: 5,
            migration_interval: 2,
            max_depth: 20,
            seed: 0xC0FFEE,
            threads: 0,
            warm_start: true,
        }
    }
}

impl ServiceConfig {
    /// Candidate evaluations spent per cold workload (cache hits included —
    /// a hit consumes budget, it just costs no fitness call).
    pub fn budget_per_workload(&self) -> usize {
        self.islands * self.population * self.generations
    }

    /// Override the seed from `ZKVMOPT_SEED` when the env var is set.
    pub fn with_seed_from_env(mut self) -> ServiceConfig {
        self.seed = crate::rng::seed_from_env(self.seed);
        self
    }
}

/// One program to tune.
#[derive(Debug, Clone)]
pub struct TuneTarget {
    /// Display name.
    pub name: String,
    /// Stable fingerprint of the program's lowered base module — the cache
    /// and tune-database key.
    pub fingerprint: u64,
}

/// Per-workload outcome.
#[derive(Debug, Clone)]
pub struct WorkloadTuneReport {
    /// Target name.
    pub name: String,
    /// Target fingerprint.
    pub fingerprint: u64,
    /// Best candidate found (canonical form), or `None` when every
    /// evaluated candidate was invalid.
    pub best: Option<Candidate>,
    /// The best candidate's measured cycles.
    pub best_fitness: Option<u64>,
    /// Evaluation budget spent (cache hits included).
    pub evaluated: usize,
    /// Actual fitness-function calls (budget minus cache hits).
    pub fitness_evals: usize,
    /// Evaluations served by the sharded cache.
    pub cache_hits: usize,
    /// Whether the result came straight from the tune database.
    pub warm_started: bool,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-workload reports, in target order.
    pub workloads: Vec<WorkloadTuneReport>,
    /// Total evaluation budget spent.
    pub evaluated: usize,
    /// Total fitness-function calls.
    pub fitness_evals: usize,
    /// Total sharded-cache hits.
    pub cache_hits: usize,
    /// Workloads answered straight from the tune database.
    pub db_hits: usize,
    /// Tune-database entries inserted or improved by this run.
    pub db_updates: usize,
}

/// One island's private evolution state.
struct IslandState {
    rng: StdRng,
    /// Population, sorted best-first after every generation.
    pop: Vec<(Candidate, Option<u64>)>,
    best: Option<(Candidate, u64)>,
    /// Elite migrated in from the ring neighbour (arrives with its fitness:
    /// migration never costs budget).
    incoming: Option<(Candidate, Option<u64>)>,
    evaluated: usize,
    fitness_evals: usize,
    cache_hits: usize,
}

/// Shared per-workload scheduling state.
struct WorkState {
    fingerprint: u64,
    islands: Vec<Mutex<IslandState>>,
    /// Islands still running the current generation.
    remaining: AtomicUsize,
    /// Generations fully completed.
    done_gens: AtomicUsize,
}

/// Tune every target concurrently. `fitness(widx, candidate)` returns the
/// cycle count on `targets[widx]` (or `None` for invalid candidates) and
/// must be deterministic in `(targets[widx].fingerprint, candidate)`.
/// Results for known programs come from `db` when
/// [`ServiceConfig::warm_start`] is set; new results are recorded into `db`
/// (call [`TuneDb::save`] to persist them).
pub fn tune_suite<F>(
    config: &ServiceConfig,
    targets: &[TuneTarget],
    db: &mut TuneDb,
    fitness: F,
) -> ServiceReport
where
    F: Fn(usize, &Candidate) -> Option<u64> + Sync,
{
    assert!(config.islands >= 1, "need at least one island");
    assert!(config.population >= 1, "need a non-empty population");
    assert!(config.generations >= 1, "need at least one generation");
    assert!(config.max_depth >= 1, "need depth >= 1");

    let seeds = SeedTree::new(config.seed);
    let names = pass_names();

    // Resolve warm starts first: a known fingerprint costs nothing.
    let mut reports: Vec<Option<WorkloadTuneReport>> = Vec::with_capacity(targets.len());
    let mut cold: Vec<usize> = Vec::new();
    let mut db_hits = 0usize;
    for (widx, t) in targets.iter().enumerate() {
        match db.get(t.fingerprint).filter(|_| config.warm_start) {
            Some(e) => match candidate_from_db(e) {
                Some(best) => {
                    db_hits += 1;
                    reports.push(Some(WorkloadTuneReport {
                        name: t.name.clone(),
                        fingerprint: t.fingerprint,
                        best: Some(best),
                        best_fitness: Some(e.cycles),
                        evaluated: 0,
                        fitness_evals: 0,
                        cache_hits: 0,
                        warm_started: true,
                    }));
                }
                None => {
                    // A stored pass no longer exists in the registry: the
                    // entry is stale. Search fresh and overwrite.
                    eprintln!(
                        "tuner: tune-db entry for {} ({:016x}) names an unknown pass; re-searching",
                        t.name, t.fingerprint
                    );
                    cold.push(widx);
                    reports.push(None);
                }
            },
            None => {
                cold.push(widx);
                reports.push(None);
            }
        }
    }

    let cache = ShardedFitnessCache::new();
    let work: Vec<WorkState> = cold
        .iter()
        .map(|&widx| WorkState {
            fingerprint: targets[widx].fingerprint,
            islands: (0..config.islands)
                .map(|i| {
                    Mutex::new(IslandState {
                        rng: seeds.rng(targets[widx].fingerprint, i as u64),
                        pop: Vec::new(),
                        best: None,
                        incoming: None,
                        evaluated: 0,
                        fitness_evals: 0,
                        cache_hits: 0,
                    })
                })
                .collect(),
            remaining: AtomicUsize::new(config.islands),
            done_gens: AtomicUsize::new(0),
        })
        .collect();

    if !cold.is_empty() {
        run_scheduler(config, &cold, &work, &cache, &fitness, names);
    }

    // Collect island results and record fresh bests into the database.
    let mut db_updates = 0usize;
    for (ci, &widx) in cold.iter().enumerate() {
        let t = &targets[widx];
        let mut best: Option<(Candidate, u64)> = None;
        let (mut evaluated, mut fitness_evals, mut cache_hits) = (0, 0, 0);
        for island in &work[ci].islands {
            let s = island.lock().expect("island");
            evaluated += s.evaluated;
            fitness_evals += s.fitness_evals;
            cache_hits += s.cache_hits;
            if let Some((c, f)) = &s.best {
                // Strict `<` keeps the lowest island index on ties —
                // deterministic because island order is.
                if best.as_ref().is_none_or(|(_, bf)| f < bf) {
                    best = Some((c.clone(), *f));
                }
            }
        }
        let best = best.map(|(c, f)| (canonical_candidate(&c), f));
        if let Some((c, f)) = &best {
            if db.record(TuneDbEntry {
                fingerprint: t.fingerprint,
                passes: c.passes.iter().map(|p| p.to_string()).collect(),
                inline_threshold: c.inline_threshold,
                unroll_threshold: c.unroll_threshold,
                cycles: *f,
            }) {
                db_updates += 1;
            }
        }
        reports[widx] = Some(WorkloadTuneReport {
            name: t.name.clone(),
            fingerprint: t.fingerprint,
            best_fitness: best.as_ref().map(|(_, f)| *f),
            best: best.map(|(c, _)| c),
            evaluated,
            fitness_evals,
            cache_hits,
            warm_started: false,
        });
    }

    let workloads: Vec<WorkloadTuneReport> = reports
        .into_iter()
        .map(|r| r.expect("every target reported"))
        .collect();
    ServiceReport {
        evaluated: workloads.iter().map(|w| w.evaluated).sum(),
        fitness_evals: workloads.iter().map(|w| w.fitness_evals).sum(),
        cache_hits: workloads.iter().map(|w| w.cache_hits).sum(),
        db_hits,
        db_updates,
        workloads,
    }
}

/// The work-stealing loop: a shared ready queue of `(cold index, island)`
/// tasks, per-workload generation barriers, termination via an outstanding
/// task counter.
fn run_scheduler<F>(
    config: &ServiceConfig,
    cold: &[usize],
    work: &[WorkState],
    cache: &ShardedFitnessCache,
    fitness: &F,
    names: &'static [&'static str],
) where
    F: Fn(usize, &Candidate) -> Option<u64> + Sync,
{
    let queue: Mutex<VecDeque<(usize, usize)>> = Mutex::new(
        (0..cold.len())
            .flat_map(|ci| (0..config.islands).map(move |i| (ci, i)))
            .collect(),
    );
    let ready = Condvar::new();
    let outstanding = AtomicUsize::new(cold.len() * config.islands * config.generations);
    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    }
    .max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next ready island task, or exit once every
                // island-generation in the run has been processed.
                let task = {
                    let mut q = queue.lock().expect("task queue");
                    loop {
                        if let Some(t) = q.pop_front() {
                            break Some(t);
                        }
                        if outstanding.load(Ordering::SeqCst) == 0 {
                            break None;
                        }
                        q = ready.wait(q).expect("task queue");
                    }
                };
                let Some((ci, island_idx)) = task else {
                    return;
                };
                let w = &work[ci];
                let gen = w.done_gens.load(Ordering::SeqCst);
                {
                    let mut island = w.islands[island_idx].lock().expect("island");
                    run_generation(
                        config,
                        &mut island,
                        gen,
                        island_idx,
                        w.fingerprint,
                        cold[ci],
                        cache,
                        fitness,
                        names,
                    );
                }
                // Generation barrier: the last island of this generation
                // migrates elites and releases the next generation.
                if w.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let done = w.done_gens.fetch_add(1, Ordering::SeqCst) + 1;
                    if done < config.generations {
                        if config.migration_interval > 0
                            && config.islands > 1
                            && done.is_multiple_of(config.migration_interval)
                        {
                            migrate_ring(w);
                        }
                        w.remaining.store(config.islands, Ordering::SeqCst);
                        let mut q = queue.lock().expect("task queue");
                        q.extend((0..config.islands).map(|i| (ci, i)));
                        drop(q);
                        ready.notify_all();
                    }
                }
                if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ready.notify_all();
                }
            });
        }
    });
}

/// Evolve one island by one generation. Deterministic in the island's RNG
/// state and population; costs exactly `config.population` budget.
#[allow(clippy::too_many_arguments)]
fn run_generation<F>(
    config: &ServiceConfig,
    island: &mut IslandState,
    gen: usize,
    island_idx: usize,
    fingerprint: u64,
    widx: usize,
    cache: &ShardedFitnessCache,
    fitness: &F,
    names: &'static [&'static str],
) where
    F: Fn(usize, &Candidate) -> Option<u64> + Sync,
{
    let eval = |island: &mut IslandState, c: &Candidate| -> Option<u64> {
        let key = FitnessKey {
            fingerprint,
            passes: canonicalize_sequence(&c.passes),
            inline_threshold: c.inline_threshold,
            unroll_threshold: c.unroll_threshold,
        };
        island.evaluated += 1;
        match cache.get(&key) {
            Some(v) => {
                island.cache_hits += 1;
                v
            }
            None => {
                let v = fitness(widx, c);
                island.fitness_evals += 1;
                cache.insert(key, v);
                v
            }
        }
    };

    if gen == 0 {
        // Initial population: island 0 carries the known-good anchors, every
        // island fills up with its own random candidates.
        let mut init: Vec<Candidate> = Vec::with_capacity(config.population);
        if island_idx == 0 {
            init.extend(anchor_candidates(config.max_depth));
            init.truncate(config.population);
        }
        while init.len() < config.population {
            init.push(random_candidate(&mut island.rng, names, config.max_depth));
        }
        island.pop = init
            .into_iter()
            .map(|c| {
                let f = eval(island, &c);
                (c, f)
            })
            .collect();
    } else {
        // Accept the ring migrant (already measured by the donor island).
        if let Some(m) = island.incoming.take() {
            let worst = island.pop.len() - 1;
            island.pop[worst] = m;
            sort_pop(&mut island.pop);
        }
        // μ+λ: breed `population` children, keep the best `population` of
        // parents ∪ children (stable sort: parents win ties).
        let mut children: Vec<(Candidate, Option<u64>)> = Vec::with_capacity(config.population);
        for _ in 0..config.population {
            let p1 = tournament(&mut island.rng, &island.pop);
            let p2 = tournament(&mut island.rng, &island.pop);
            let mut child = if island.rng.gen_bool(0.7) {
                crossover(&mut island.rng, &p1, &p2, config.max_depth)
            } else {
                p1.clone()
            };
            if island.rng.gen_bool(0.9) {
                child = mutate(&mut island.rng, &child, names, config.max_depth);
            }
            let f = eval(island, &child);
            children.push((child, f));
        }
        island.pop.append(&mut children);
        sort_pop(&mut island.pop);
        island.pop.truncate(config.population);
    }
    if island.pop.len() > 1 {
        sort_pop(&mut island.pop);
    }
    // Track the island best (first-found wins ties: deterministic, since
    // evaluation order is).
    for (c, f) in &island.pop {
        if let Some(v) = f {
            if island.best.as_ref().is_none_or(|(_, b)| v < b) {
                island.best = Some((c.clone(), *v));
            }
        }
    }
}

/// Stable best-first order; invalid candidates (`None`) sink to the back.
fn sort_pop(pop: &mut [(Candidate, Option<u64>)]) {
    pop.sort_by_key(|(_, f)| f.unwrap_or(u64::MAX));
}

/// Tournament selection (size 3) over the island's population.
fn tournament(rng: &mut StdRng, pop: &[(Candidate, Option<u64>)]) -> Candidate {
    let mut best: Option<(usize, u64)> = None;
    for _ in 0..3 {
        let i = rng.gen_range(0..pop.len());
        let f = pop[i].1.unwrap_or(u64::MAX);
        if best.is_none_or(|(_, bf)| f < bf) {
            best = Some((i, f));
        }
    }
    pop[best.expect("non-empty population").0].0.clone()
}

/// Ring migration at a generation barrier: island `i`'s best population
/// member moves to island `i+1 (mod n)`'s inbox. Runs with every island of
/// the workload quiescent, in island-index order — fully deterministic.
fn migrate_ring(w: &WorkState) {
    let n = w.islands.len();
    let elites: Vec<Option<(Candidate, Option<u64>)>> = (0..n)
        .map(|i| {
            let s = w.islands[i].lock().expect("island");
            s.pop.first().cloned()
        })
        .collect();
    for (i, elite) in elites.into_iter().enumerate() {
        if let Some(e) = elite {
            w.islands[(i + 1) % n].lock().expect("island").incoming = Some(e);
        }
    }
}

/// A candidate in canonical form (aliases resolved, no-ops dropped) — what
/// the tune database stores and reports present.
fn canonical_candidate(c: &Candidate) -> Candidate {
    Candidate {
        passes: canonicalize_sequence(&c.passes),
        inline_threshold: c.inline_threshold,
        unroll_threshold: c.unroll_threshold,
    }
}

/// Rehydrate a stored entry into a [`Candidate`]. `None` when a stored pass
/// name is no longer registered (stale database after a registry change).
fn candidate_from_db(e: &TuneDbEntry) -> Option<Candidate> {
    let passes: Option<Vec<&'static str>> = e
        .passes
        .iter()
        .map(|p| find_pass(p).map(|entry| entry.canonical_name()))
        .collect();
    Some(Candidate {
        passes: passes?,
        inline_threshold: e.inline_threshold,
        unroll_threshold: e.unroll_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap synthetic fitness: deterministic pure function of
    /// (fingerprint, canonical candidate) — the documented contract.
    fn synthetic(fp: u64, c: &Candidate) -> Option<u64> {
        let canon = canonicalize_sequence(&c.passes);
        let mut score = 10_000 + (fp % 7) * 100;
        if canon.first() == Some(&"mem2reg") {
            score -= 4_000;
        }
        if canon.contains(&"inline") {
            score -= 3_000;
        }
        score += canon.len() as u64 * 10;
        score += (c.inline_threshold as u64) % 13;
        if canon.contains(&"licm") {
            return None; // exercise the invalid-candidate path
        }
        Some(score)
    }

    fn targets(n: usize) -> Vec<TuneTarget> {
        (0..n)
            .map(|i| TuneTarget {
                name: format!("w{i}"),
                fingerprint: 0x1000 + i as u64,
            })
            .collect()
    }

    fn run(cfg: &ServiceConfig, db: &mut TuneDb, n: usize) -> ServiceReport {
        let ts = targets(n);
        tune_suite(cfg, &ts, db, |widx, c| synthetic(ts[widx].fingerprint, c))
    }

    #[test]
    fn spends_exactly_the_budget_and_finds_good_candidates() {
        let cfg = ServiceConfig {
            threads: 4,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let r = run(&cfg, &mut db, 3);
        assert_eq!(r.workloads.len(), 3);
        assert_eq!(r.evaluated, 3 * cfg.budget_per_workload());
        assert_eq!(r.db_hits, 0);
        assert_eq!(r.db_updates, 3);
        for w in &r.workloads {
            assert!(!w.warm_started);
            assert_eq!(w.evaluated, cfg.budget_per_workload());
            assert_eq!(w.evaluated, w.fitness_evals + w.cache_hits);
            let f = w.best_fitness.expect("found a valid candidate");
            assert!(f < 7_000, "search should beat the random floor, got {f}");
            assert!(!w.best.as_ref().unwrap().passes.contains(&"licm"));
            assert_eq!(db.get(w.fingerprint).unwrap().cycles, f);
        }
    }

    /// The satellite regression test: two multi-threaded runs with one
    /// pinned seed must produce bit-identical tune databases — thread
    /// scheduling can influence throughput counters only, never results.
    #[test]
    fn four_thread_runs_with_equal_seed_produce_identical_databases() {
        let cfg = ServiceConfig {
            islands: 3,
            population: 6,
            generations: 6,
            threads: 4,
            seed: 0xFEED,
            ..Default::default()
        };
        let mut runs = Vec::new();
        for threads in [4, 4, 1, 8] {
            let cfg = ServiceConfig {
                threads,
                ..cfg.clone()
            };
            let mut db = TuneDb::in_memory();
            let r = run(&cfg, &mut db, 4);
            runs.push((db.to_string_pretty(), r));
        }
        for (text, r) in &runs[1..] {
            assert_eq!(
                *text, runs[0].0,
                "tune database must not depend on thread count"
            );
            for (a, b) in r.workloads.iter().zip(&runs[0].1.workloads) {
                assert_eq!(a.best, b.best);
                assert_eq!(a.best_fitness, b.best_fitness);
                assert_eq!(a.evaluated, b.evaluated);
            }
        }
    }

    #[test]
    fn different_seeds_search_differently() {
        let mut dbs = Vec::new();
        for seed in [1u64, 2] {
            let cfg = ServiceConfig {
                seed,
                threads: 2,
                generations: 3,
                ..Default::default()
            };
            let mut db = TuneDb::in_memory();
            run(&cfg, &mut db, 2);
            dbs.push(db.to_string_pretty());
        }
        assert_ne!(dbs[0], dbs[1], "seed must steer the search");
    }

    /// Warm start: a populated database answers instantly — zero budget,
    /// zero fitness calls, result identical to what was stored.
    #[test]
    fn warm_start_skips_search_with_zero_evaluations() {
        let cfg = ServiceConfig {
            threads: 4,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let cold = run(&cfg, &mut db, 3);
        assert_eq!(db.len(), 3);

        let warm = run(&cfg, &mut db, 3);
        assert_eq!(warm.db_hits, 3);
        assert_eq!(warm.evaluated, 0, "no budget spent");
        assert_eq!(warm.fitness_evals, 0, "zero redundant fitness evaluations");
        assert_eq!(warm.db_updates, 0);
        for (c, w) in cold.workloads.iter().zip(&warm.workloads) {
            assert!(w.warm_started);
            assert_eq!(w.best_fitness, c.best_fitness);
            assert_eq!(w.best, c.best);
        }

        // With warm_start off, the database is ignored (but stays intact).
        let re = tune_suite(
            &ServiceConfig {
                warm_start: false,
                ..cfg
            },
            &targets(3),
            &mut db,
            |widx, c| synthetic(targets(3)[widx].fingerprint, c),
        );
        assert_eq!(re.db_hits, 0);
        assert!(re.fitness_evals > 0);
    }

    /// Duplicate programs (equal fingerprints) share the fitness cache
    /// across workloads: the second copy's search runs almost entirely on
    /// cache hits in single-threaded mode.
    #[test]
    fn equal_fingerprints_share_the_cache_across_workloads() {
        let cfg = ServiceConfig {
            threads: 1,
            generations: 3,
            ..Default::default()
        };
        let ts = vec![
            TuneTarget {
                name: "a".into(),
                fingerprint: 42,
            },
            TuneTarget {
                name: "b".into(),
                fingerprint: 42,
            },
        ];
        let mut db = TuneDb::in_memory();
        let r = tune_suite(&cfg, &ts, &mut db, |_, c| synthetic(42, c));
        let (a, b) = (&r.workloads[0], &r.workloads[1]);
        // Identical RNG streams (same fingerprint) generate identical
        // candidates, so the clone is served from the cache wholesale.
        assert_eq!(b.fitness_evals, 0, "duplicate program re-measured");
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(r.db_hits, 0);
        assert_eq!(db.len(), 1, "one fingerprint, one entry");
    }

    #[test]
    fn stale_db_entries_with_unknown_passes_are_researched() {
        let cfg = ServiceConfig {
            threads: 2,
            generations: 2,
            ..Default::default()
        };
        let ts = targets(1);
        let mut db = TuneDb::in_memory();
        db.record(TuneDbEntry {
            fingerprint: ts[0].fingerprint,
            passes: vec!["a-pass-that-never-existed".into()],
            inline_threshold: 1,
            unroll_threshold: 1,
            cycles: 1, // "unbeatably good", but unusable
        });
        let r = tune_suite(&cfg, &ts, &mut db, |widx, c| {
            synthetic(ts[widx].fingerprint, c)
        });
        assert_eq!(r.db_hits, 0, "stale entry must not warm-start");
        assert!(r.fitness_evals > 0);
        assert!(r.workloads[0].best.is_some());
    }

    #[test]
    fn single_island_single_thread_degenerates_to_a_plain_ga() {
        let cfg = ServiceConfig {
            islands: 1,
            population: 4,
            generations: 4,
            threads: 1,
            migration_interval: 0,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let r = run(&cfg, &mut db, 1);
        assert_eq!(r.evaluated, 16);
        assert!(r.workloads[0].best_fitness.is_some());
    }

    /// Migration must help search: an island that never finds the good
    /// region imports the elite from one that does. With migration off the
    /// islands stay independent (weaker coupling is at least not *worse*
    /// when fitness is unimodal — here we just pin behaviour: results stay
    /// deterministic and valid either way).
    #[test]
    fn migration_interval_zero_disables_migration_deterministically() {
        for interval in [0usize, 1, 3] {
            let cfg = ServiceConfig {
                islands: 2,
                population: 4,
                generations: 4,
                migration_interval: interval,
                threads: 3,
                ..Default::default()
            };
            let mut a = TuneDb::in_memory();
            let mut b = TuneDb::in_memory();
            let ra = run(&cfg, &mut a, 2);
            let rb = run(&cfg, &mut b, 2);
            assert_eq!(
                a.to_string_pretty(),
                b.to_string_pretty(),
                "interval {interval}"
            );
            assert_eq!(ra.evaluated, rb.evaluated);
        }
    }
}
