//! The parallel autotuning service: island-model search over many programs
//! at once.
//!
//! The sequential [`autotune`](crate::autotune) loop tunes one program on
//! one thread — fine for one study, hopeless for tuning-as-a-service. This
//! module restructures the search the way GPU-scale combinatorial solvers
//! do: as a large population of small, independent evolution steps that
//! worker threads chew through concurrently.
//!
//! ## Shape
//!
//! - **Islands.** Each workload gets `islands` independent populations. An
//!   island evolves alone (its own RNG stream, its own selection pressure)
//!   and every `migration_interval` generations donates its elite to the
//!   next island in the ring — classic island-model diversity with a
//!   periodic exchange of winners.
//! - **Work stealing.** Every `(workload, island, generation)` step is one
//!   task in a shared ready queue; idle workers steal the next ready task
//!   regardless of which workload it belongs to, so a slow program's islands
//!   never leave threads idle while 57 other programs have work.
//! - **Generation barriers per workload.** Islands of one workload advance
//!   in lockstep (generation `g+1` is enqueued only when all of its islands
//!   finished `g`); migration happens at the barrier, in island-index order.
//!   Different workloads proceed completely independently.
//! - **Sharded fitness cache.** All candidate evaluations go through one
//!   [`ShardedFitnessCache`] keyed by `(program fingerprint, canonical
//!   sequence, thresholds)`, shared across islands *and* workloads.
//! - **Tune database.** Known programs (by stable IR fingerprint) found in
//!   the [`TuneDb`] warm-start: with [`ServiceConfig::warm_start`] set their
//!   search is skipped outright (zero fitness evaluations, counted in
//!   [`ServiceReport::db_hits`]); fresh results are recorded back.
//!
//! ## Fault tolerance
//!
//! The service assumes hostile inputs and partial failures:
//!
//! - **Panic isolation.** Every fitness call runs under `catch_unwind`; a
//!   panicking evaluation becomes [`FailureClass::Panic`] instead of
//!   killing the island (and poisoning its lock).
//! - **Bounded retries.** Transient failures ([`FailureClass::is_transient`]:
//!   panic, trap, budget) are retried up to [`ServiceConfig::max_retries`]
//!   times before the failure is accepted; deterministic compile-stage
//!   failures are never retried.
//! - **Quarantine.** Candidates whose final outcome is a failure are
//!   reported per workload ([`WorkloadTuneReport::quarantined`]) and
//!   optionally appended to a quarantine log file, carrying the canonical
//!   sequence and the failure class.
//! - **Demotion.** A workload whose islands produce *zero* valid candidates
//!   for [`ServiceConfig::demote_after`] consecutive generations stops
//!   burning budget: its remaining generations are cancelled and it falls
//!   back to the baseline (empty) sequence.
//! - **Checkpoint/resume.** With [`ServiceConfig::checkpoint_path`] set,
//!   the fitness cache is dumped atomically at generation barriers; a rerun
//!   with the same configuration resumes from it with zero redundant
//!   fitness evaluations (see [`crate::checkpoint`]).
//!
//! ## Determinism
//!
//! Same seed → same study, **regardless of thread count**. Every random
//! stream derives from the single root seed via [`SeedTree`] streams keyed
//! by `(workload fingerprint, island index)`; migration happens at fixed
//! generation numbers in fixed order; fitness is deterministic. The only
//! scheduling-dependent observables are the cache-hit/fitness-call
//! *counters* (a benign race can evaluate a shared candidate twice), never
//! the populations, the bests, or the tune-database contents. The fitness
//! function must be a pure function of `(fingerprint, candidate)` — two
//! targets with equal fingerprints must measure identically. Those
//! properties survive faults: a kill + resume replays the identical search
//! with the checkpointed evaluations pre-answered, and injected transient
//! faults (see [`crate::fault`]) are retried until the true value lands.

use crate::cache::{FitnessKey, ShardedFitnessCache};
use crate::checkpoint::{load_checkpoint, save_checkpoint, CheckpointStatus};
use crate::db::{TuneDb, TuneDbEntry};
use crate::fault::{EvalResult, FailureClass};
use crate::predict::{candidate_from_entry, Predictor};
use crate::rng::SeedTree;
use crate::{
    anchor_candidates, canonicalize_sequence, crossover, mutate, random_candidate, Candidate,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use zkvmopt_ir::FeatureVector;
use zkvmopt_passes::pass_names;

/// Quarantine entries kept in memory per workload; the rest are counted in
/// [`WorkloadTuneReport::quarantine_total`] (the log file gets everything).
const QUARANTINE_CAP: usize = 64;

/// Parallel-service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Independent islands (populations) per workload.
    pub islands: usize,
    /// Population size per island.
    pub population: usize,
    /// Evolution generations per island. Each generation evaluates exactly
    /// `population` candidates, so the per-workload evaluation budget is
    /// `islands × population × generations` ([`ServiceConfig::budget_per_workload`]).
    pub generations: usize,
    /// Donate each island's elite to the ring neighbour every this many
    /// generations (`0` = never migrate).
    pub migration_interval: usize,
    /// Maximum pass-sequence depth (paper: 20).
    pub max_depth: usize,
    /// Root RNG seed; every island stream splits from it.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Skip the search for programs already in the tune database.
    pub warm_start: bool,
    /// Re-attempts for a transiently failing evaluation (panic, trap,
    /// budget — see [`FailureClass::is_transient`]) before the failure is
    /// accepted and cached.
    pub max_retries: usize,
    /// Cancel a workload's remaining generations after this many
    /// *consecutive* generations in which no island produced a single
    /// valid candidate (`0` = never demote).
    pub demote_after: usize,
    /// Dump the fitness cache here at generation barriers; on start, resume
    /// from it when its digest matches this run (`None` = no checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Write a checkpoint every this many generation barriers (≥ 1).
    pub checkpoint_interval: usize,
    /// Write the quarantine log here after the run (`None` = in-report only).
    pub quarantine_path: Option<PathBuf>,
    /// Predict-first mode: before searching a cold workload whose
    /// [`TuneTarget::features`] are known, ask the [`Predictor`] for a
    /// candidate and measure it **once**. Within
    /// [`ServiceConfig::predict_margin`] of the database's recorded quality
    /// the workload is served on the spot (~1 fitness evaluation, counted in
    /// [`ServiceReport::predicted_hits`]); otherwise the prediction seeds
    /// island 0 and the genetic search runs as offline refinement.
    pub predict: bool,
    /// Neighbours consulted per prediction (k-NN; `0` is clamped to 1).
    pub predict_k: usize,
    /// Acceptance margin: a measured prediction is accepted when
    /// `measured ≤ baseline × expected_ratio × (1 + predict_margin)`.
    pub predict_margin: f64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            islands: 4,
            population: 8,
            generations: 5,
            migration_interval: 2,
            max_depth: 20,
            seed: 0xC0FFEE,
            threads: 0,
            warm_start: true,
            max_retries: 3,
            demote_after: 3,
            checkpoint_path: None,
            checkpoint_interval: 1,
            quarantine_path: None,
            predict: false,
            predict_k: 3,
            predict_margin: 0.10,
        }
    }
}

impl ServiceConfig {
    /// Candidate evaluations spent per cold workload (cache hits included —
    /// a hit consumes budget, it just costs no fitness call).
    pub fn budget_per_workload(&self) -> usize {
        self.islands * self.population * self.generations
    }

    /// Override the seed from `ZKVMOPT_SEED` when the env var is set.
    pub fn with_seed_from_env(mut self) -> ServiceConfig {
        self.seed = crate::rng::seed_from_env(self.seed);
        self
    }

    /// Digest binding a checkpoint to this run's shape: the search-relevant
    /// configuration plus the target fingerprints. Two runs with equal
    /// digests replay the identical candidate stream, which is what makes
    /// resuming from the other's checkpoint sound.
    pub fn run_digest(&self, targets: &[TuneTarget]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.islands as u64);
        mix(self.population as u64);
        mix(self.generations as u64);
        mix(self.migration_interval as u64);
        mix(self.max_depth as u64);
        mix(self.seed);
        mix(self.max_retries as u64);
        mix(self.demote_after as u64);
        mix(self.predict as u64);
        mix(self.predict_k as u64);
        mix(self.predict_margin.to_bits());
        for t in targets {
            mix(t.fingerprint);
        }
        h
    }
}

/// One program to tune.
#[derive(Debug, Clone)]
pub struct TuneTarget {
    /// Display name.
    pub name: String,
    /// Stable fingerprint of the program's lowered base module — the cache
    /// and tune-database key.
    pub fingerprint: u64,
    /// Structural features of the base module, for predict-first mode and
    /// for recording into the schema-2 database (`None` = never predicted;
    /// the workload always searches).
    pub features: Option<FeatureVector>,
    /// The program's `-O3` reference cycles — the denominator of the
    /// predictor's quality ratios and the acceptance test's baseline
    /// (`None` = not measured; predictions for this target never accept).
    pub baseline_cycles: Option<u64>,
}

impl TuneTarget {
    /// A target with no prediction metadata (always searched when cold).
    pub fn new(name: impl Into<String>, fingerprint: u64) -> TuneTarget {
        TuneTarget {
            name: name.into(),
            fingerprint,
            features: None,
            baseline_cycles: None,
        }
    }

    /// Attach the prediction metadata predict-first mode consumes.
    pub fn with_prediction(mut self, features: FeatureVector, baseline_cycles: u64) -> TuneTarget {
        self.features = Some(features);
        self.baseline_cycles = Some(baseline_cycles);
        self
    }
}

/// One quarantined candidate: its canonical form and why it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The failing candidate (canonical sequence).
    pub candidate: Candidate,
    /// The recorded failure class.
    pub class: FailureClass,
}

/// Per-workload outcome.
#[derive(Debug, Clone)]
pub struct WorkloadTuneReport {
    /// Target name.
    pub name: String,
    /// Target fingerprint.
    pub fingerprint: u64,
    /// Best candidate found (canonical form), or `None` when every
    /// evaluated candidate was invalid.
    pub best: Option<Candidate>,
    /// The best candidate's measured cycles.
    pub best_fitness: Option<u64>,
    /// Evaluation budget spent (cache hits included).
    pub evaluated: usize,
    /// Actual fitness-function calls (budget minus cache hits, plus
    /// retries).
    pub fitness_evals: usize,
    /// Evaluations served by the sharded cache.
    pub cache_hits: usize,
    /// Transient-failure re-attempts ([`ServiceConfig::max_retries`]).
    pub retries: usize,
    /// Whether the result came straight from the tune database.
    pub warm_started: bool,
    /// Whether the result is an accepted prediction (served with ~1 fitness
    /// evaluation instead of a genetic search).
    pub predicted: bool,
    /// Whether the search was cancelled early ([`ServiceConfig::demote_after`])
    /// and the workload fell back to its baseline sequence.
    pub demoted: bool,
    /// Candidates whose final outcome was a failure (the first 64, in
    /// deterministic key order).
    pub quarantined: Vec<QuarantineEntry>,
    /// Total failing candidates for this workload (may exceed
    /// `quarantined.len()`).
    pub quarantine_total: usize,
}

/// Whole-run outcome.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-workload reports, in target order.
    pub workloads: Vec<WorkloadTuneReport>,
    /// Total evaluation budget spent.
    pub evaluated: usize,
    /// Total fitness-function calls.
    pub fitness_evals: usize,
    /// Total sharded-cache hits.
    pub cache_hits: usize,
    /// Total transient-failure re-attempts.
    pub retries: usize,
    /// Workloads answered straight from the tune database.
    pub db_hits: usize,
    /// Workloads served by an accepted prediction (predict-first mode).
    pub predicted_hits: usize,
    /// Tune-database entries inserted or improved by this run.
    pub db_updates: usize,
    /// Workloads demoted to their baseline sequence.
    pub demoted: usize,
    /// Total quarantined (failing) candidates across workloads.
    pub quarantine_total: usize,
    /// How the checkpoint (if configured) loaded at start of run.
    pub checkpoint_status: CheckpointStatus,
    /// Checkpoint entries restored into the fitness cache — evaluations
    /// this run will never have to repeat.
    pub resumed_entries: usize,
}

/// One island's private evolution state.
struct IslandState {
    rng: StdRng,
    /// Population, sorted best-first after every generation.
    pop: Vec<(Candidate, Option<u64>)>,
    best: Option<(Candidate, u64)>,
    /// Elite migrated in from the ring neighbour (arrives with its fitness:
    /// migration never costs budget).
    incoming: Option<(Candidate, Option<u64>)>,
    evaluated: usize,
    fitness_evals: usize,
    cache_hits: usize,
    retries: usize,
}

/// Shared per-workload scheduling state.
struct WorkState {
    fingerprint: u64,
    /// Rejected prediction seeding island 0's initial population
    /// (predict-first mode's refinement path).
    seed: Option<Candidate>,
    islands: Vec<Mutex<IslandState>>,
    /// Islands still running the current generation.
    remaining: AtomicUsize,
    /// Generations fully completed.
    done_gens: AtomicUsize,
    /// Valid (Ok) evaluations in the generation now running.
    valid_in_gen: AtomicUsize,
    /// Consecutive completed generations with zero valid evaluations.
    failed_gens: AtomicUsize,
    /// Whether the workload's remaining generations were cancelled.
    demoted: AtomicBool,
}

/// Periodic checkpoint writer shared by the worker threads.
struct CheckpointSink<'a> {
    path: &'a Path,
    digest: u64,
    interval: usize,
    barriers: AtomicUsize,
    write_lock: Mutex<()>,
}

impl CheckpointSink<'_> {
    /// Called at every generation barrier; dumps the cache every
    /// `interval`-th call. Best-effort: an unwritable checkpoint degrades
    /// to a longer resume, never a failed run.
    fn barrier(&self, cache: &ShardedFitnessCache) {
        let n = self.barriers.fetch_add(1, Ordering::SeqCst) + 1;
        if !n.is_multiple_of(self.interval) {
            return;
        }
        let _guard = self.write_lock.lock().expect("checkpoint writer");
        if let Err(e) = save_checkpoint(self.path, self.digest, &cache.snapshot()) {
            eprintln!(
                "tuner: checkpoint write to {} failed ({e}); continuing without",
                self.path.display()
            );
        }
    }
}

/// Evaluate `fitness` once with panic isolation and the bounded transient
/// retry policy. Returns the accepted outcome and the number of fitness
/// calls made (≥ 1; every call after the first is a retry).
fn eval_with_retries<F>(
    config: &ServiceConfig,
    fitness: &F,
    widx: usize,
    c: &Candidate,
) -> (EvalResult, usize)
where
    F: Fn(usize, &Candidate) -> EvalResult + Sync,
{
    let mut calls = 0usize;
    loop {
        let r =
            catch_unwind(AssertUnwindSafe(|| fitness(widx, c))).unwrap_or(Err(FailureClass::Panic));
        calls += 1;
        match r {
            Err(class) if class.is_transient() && calls <= config.max_retries => continue,
            r => return (r, calls),
        }
    }
}

/// Tune every target concurrently. `fitness(widx, candidate)` returns the
/// cycle count on `targets[widx]` (or the [`FailureClass`] describing why
/// the candidate failed) and must be deterministic in
/// `(targets[widx].fingerprint, candidate)`. A panicking fitness call is
/// caught and treated as [`FailureClass::Panic`]. Results for known
/// programs come from `db` when [`ServiceConfig::warm_start`] is set; new
/// results are recorded into `db` (call [`TuneDb::save`] to persist them).
pub fn tune_suite<F>(
    config: &ServiceConfig,
    targets: &[TuneTarget],
    db: &mut TuneDb,
    fitness: F,
) -> ServiceReport
where
    F: Fn(usize, &Candidate) -> EvalResult + Sync,
{
    assert!(config.islands >= 1, "need at least one island");
    assert!(config.population >= 1, "need a non-empty population");
    assert!(config.generations >= 1, "need at least one generation");
    assert!(config.max_depth >= 1, "need depth >= 1");
    assert!(config.checkpoint_interval >= 1, "interval >= 1");

    let seeds = SeedTree::new(config.seed);
    let names = pass_names();
    let digest = config.run_digest(targets);

    // Resolve warm starts first: a known fingerprint costs nothing.
    let mut reports: Vec<Option<WorkloadTuneReport>> = Vec::with_capacity(targets.len());
    let mut cold: Vec<usize> = Vec::new();
    let mut db_hits = 0usize;
    for (widx, t) in targets.iter().enumerate() {
        match db.get(t.fingerprint).filter(|_| config.warm_start) {
            Some(e) => match candidate_from_entry(e) {
                Some(best) => {
                    db_hits += 1;
                    reports.push(Some(WorkloadTuneReport {
                        name: t.name.clone(),
                        fingerprint: t.fingerprint,
                        best: Some(best),
                        best_fitness: Some(e.cycles),
                        evaluated: 0,
                        fitness_evals: 0,
                        cache_hits: 0,
                        retries: 0,
                        warm_started: true,
                        predicted: false,
                        demoted: false,
                        quarantined: Vec::new(),
                        quarantine_total: 0,
                    }));
                }
                None => {
                    // A stored pass no longer exists in the registry: the
                    // entry is stale. Search fresh and overwrite.
                    eprintln!(
                        "tuner: tune-db entry for {} ({:016x}) names an unknown pass; re-searching",
                        t.name, t.fingerprint
                    );
                    cold.push(widx);
                    reports.push(None);
                }
            },
            None => {
                cold.push(widx);
                reports.push(None);
            }
        }
    }

    // Resume: restore the previous attempt's evaluations into the cache.
    let cache = ShardedFitnessCache::new();
    let mut checkpoint_status = CheckpointStatus::Absent;
    let mut resumed_entries = 0usize;
    if let Some(path) = &config.checkpoint_path {
        let (entries, status) = load_checkpoint(path, digest);
        resumed_entries = cache.preload(entries);
        match &status {
            CheckpointStatus::Absent | CheckpointStatus::Loaded { .. } => {}
            other => eprintln!(
                "tuner: checkpoint {}: {other}; resuming from what survived",
                path.display()
            ),
        }
        checkpoint_status = status;
    }
    let sink = config
        .checkpoint_path
        .as_deref()
        .map(|path| CheckpointSink {
            path,
            digest,
            interval: config.checkpoint_interval,
            barriers: AtomicUsize::new(0),
            write_lock: Mutex::new(()),
        });

    // Predict-first: for each cold workload with known features, measure
    // the predicted candidate exactly once (through the shared cache, so a
    // subsequent search re-uses it). Accepted → served on the spot;
    // rejected → the candidate seeds island 0 of the genetic search.
    // Sequential in target order, so fully deterministic.
    let mut db_updates = 0usize;
    let mut predicted_hits = 0usize;
    let mut seeds_for: Vec<Option<Candidate>> = vec![None; targets.len()];
    let mut predict_costs: Vec<(usize, usize, usize, usize)> = vec![(0, 0, 0, 0); targets.len()];
    if config.predict && !cold.is_empty() {
        let predictor = Predictor::from_db(db, config.predict_k);
        let mut still_cold = Vec::with_capacity(cold.len());
        for &widx in &cold {
            let t = &targets[widx];
            let Some(features) = &t.features else {
                still_cold.push(widx);
                continue;
            };
            let prediction = predictor.predict(features);
            let candidate = canonical_candidate(&prediction.candidate);
            let key = FitnessKey {
                fingerprint: t.fingerprint,
                passes: candidate.passes.clone(),
                inline_threshold: candidate.inline_threshold,
                unroll_threshold: candidate.unroll_threshold,
            };
            let (mut fitness_evals, mut cache_hits, mut retries) = (0usize, 0usize, 0usize);
            let r = match cache.get(&key) {
                Some(v) => {
                    cache_hits += 1;
                    v
                }
                None => {
                    let (r, calls) = eval_with_retries(config, &fitness, widx, &candidate);
                    fitness_evals += calls;
                    retries += calls - 1;
                    cache.insert(key, r);
                    r
                }
            };
            let accepted = match (r, t.baseline_cycles, prediction.expected_ratio) {
                (Ok(measured), Some(base), Some(ratio)) if base > 0 => {
                    measured as f64 <= base as f64 * ratio * (1.0 + config.predict_margin)
                }
                _ => false,
            };
            if accepted {
                let measured = r.expect("accepted implies a measurement");
                predicted_hits += 1;
                if db.record(TuneDbEntry {
                    fingerprint: t.fingerprint,
                    passes: candidate.passes.iter().map(|p| p.to_string()).collect(),
                    inline_threshold: candidate.inline_threshold,
                    unroll_threshold: candidate.unroll_threshold,
                    cycles: measured,
                    baseline_cycles: t.baseline_cycles.unwrap_or(0),
                    features: features.as_slice().to_vec(),
                }) {
                    db_updates += 1;
                }
                reports[widx] = Some(WorkloadTuneReport {
                    name: t.name.clone(),
                    fingerprint: t.fingerprint,
                    best: Some(candidate),
                    best_fitness: Some(measured),
                    evaluated: 1,
                    fitness_evals,
                    cache_hits,
                    retries,
                    warm_started: false,
                    predicted: true,
                    demoted: false,
                    quarantined: Vec::new(),
                    quarantine_total: 0,
                });
            } else {
                // The measurement was spent either way; carry its cost into
                // the workload's search report so the accounting invariant
                // (evaluated = fitness + hits − retries) holds.
                predict_costs[widx] = (1, fitness_evals, cache_hits, retries);
                seeds_for[widx] = Some(candidate);
                still_cold.push(widx);
            }
        }
        cold = still_cold;
    }

    let work: Vec<WorkState> = cold
        .iter()
        .map(|&widx| WorkState {
            fingerprint: targets[widx].fingerprint,
            seed: seeds_for[widx].clone(),
            islands: (0..config.islands)
                .map(|i| {
                    Mutex::new(IslandState {
                        rng: seeds.rng(targets[widx].fingerprint, i as u64),
                        pop: Vec::new(),
                        best: None,
                        incoming: None,
                        evaluated: 0,
                        fitness_evals: 0,
                        cache_hits: 0,
                        retries: 0,
                    })
                })
                .collect(),
            remaining: AtomicUsize::new(config.islands),
            done_gens: AtomicUsize::new(0),
            valid_in_gen: AtomicUsize::new(0),
            failed_gens: AtomicUsize::new(0),
            demoted: AtomicBool::new(false),
        })
        .collect();

    if !cold.is_empty() {
        run_scheduler(config, &cold, &work, &cache, &fitness, names, sink.as_ref());
    }

    // Quarantine: every cached failure, grouped per fingerprint. Derived
    // from the cache snapshot so it is deterministic at any thread count
    // (the set of evaluated candidates is; only counters wobble).
    let failures: Vec<(FitnessKey, FailureClass)> = cache
        .snapshot()
        .into_iter()
        .filter_map(|(k, v)| v.err().map(|class| (k, class)))
        .collect();

    // Collect island results and record fresh bests into the database.
    for (ci, &widx) in cold.iter().enumerate() {
        let t = &targets[widx];
        let mut best: Option<(Candidate, u64)> = None;
        // Start from what the rejected prediction already spent (zeros when
        // predict-first was off or skipped this workload).
        let (mut evaluated, mut fitness_evals, mut cache_hits, mut retries) = predict_costs[widx];
        for island in &work[ci].islands {
            let s = island.lock().expect("island");
            evaluated += s.evaluated;
            fitness_evals += s.fitness_evals;
            cache_hits += s.cache_hits;
            retries += s.retries;
            if let Some((c, f)) = &s.best {
                // Strict `<` keeps the lowest island index on ties —
                // deterministic because island order is.
                if best.as_ref().is_none_or(|(_, bf)| f < bf) {
                    best = Some((c.clone(), *f));
                }
            }
        }
        let demoted = work[ci].demoted.load(Ordering::SeqCst);
        if demoted && best.is_none() {
            // Graceful degradation: a fully-failing workload falls back to
            // the baseline (empty) sequence — "run nothing" is always a
            // legitimate pipeline, provided it actually evaluates.
            let baseline = Candidate {
                passes: Vec::new(),
                inline_threshold: 225,
                unroll_threshold: 200,
            };
            let key = FitnessKey {
                fingerprint: t.fingerprint,
                passes: Vec::new(),
                inline_threshold: baseline.inline_threshold,
                unroll_threshold: baseline.unroll_threshold,
            };
            evaluated += 1;
            let r = match cache.get(&key) {
                Some(v) => {
                    cache_hits += 1;
                    v
                }
                None => {
                    let (r, calls) = eval_with_retries(config, &fitness, widx, &baseline);
                    fitness_evals += calls;
                    retries += calls - 1;
                    cache.insert(key, r);
                    r
                }
            };
            if let Ok(f) = r {
                best = Some((baseline, f));
            }
        }
        let best = best.map(|(c, f)| (canonical_candidate(&c), f));
        if let Some((c, f)) = &best {
            if db.record(TuneDbEntry {
                fingerprint: t.fingerprint,
                passes: c.passes.iter().map(|p| p.to_string()).collect(),
                inline_threshold: c.inline_threshold,
                unroll_threshold: c.unroll_threshold,
                cycles: *f,
                baseline_cycles: t.baseline_cycles.unwrap_or(0),
                features: t
                    .features
                    .as_ref()
                    .map(|fv| fv.as_slice().to_vec())
                    .unwrap_or_default(),
            }) {
                db_updates += 1;
            }
        }
        let mut quarantined: Vec<QuarantineEntry> = Vec::new();
        let mut quarantine_total = 0usize;
        for (k, class) in failures
            .iter()
            .filter(|(k, _)| k.fingerprint == t.fingerprint)
        {
            quarantine_total += 1;
            if quarantined.len() < QUARANTINE_CAP {
                quarantined.push(QuarantineEntry {
                    candidate: Candidate {
                        passes: k.passes.clone(),
                        inline_threshold: k.inline_threshold,
                        unroll_threshold: k.unroll_threshold,
                    },
                    class: *class,
                });
            }
        }
        reports[widx] = Some(WorkloadTuneReport {
            name: t.name.clone(),
            fingerprint: t.fingerprint,
            best_fitness: best.as_ref().map(|(_, f)| *f),
            best: best.map(|(c, _)| c),
            evaluated,
            fitness_evals,
            cache_hits,
            retries,
            warm_started: false,
            predicted: false,
            demoted,
            quarantined,
            quarantine_total,
        });
    }

    if let Some(path) = &config.quarantine_path {
        if let Err(e) = write_quarantine_log(path, &failures) {
            eprintln!(
                "tuner: quarantine log write to {} failed ({e}); \
                 failures remain in the in-memory report",
                path.display()
            );
        }
    }

    let workloads: Vec<WorkloadTuneReport> = reports
        .into_iter()
        .map(|r| r.expect("every target reported"))
        .collect();
    ServiceReport {
        evaluated: workloads.iter().map(|w| w.evaluated).sum(),
        fitness_evals: workloads.iter().map(|w| w.fitness_evals).sum(),
        cache_hits: workloads.iter().map(|w| w.cache_hits).sum(),
        retries: workloads.iter().map(|w| w.retries).sum(),
        db_hits,
        predicted_hits,
        db_updates,
        demoted: workloads.iter().filter(|w| w.demoted).count(),
        quarantine_total: failures.len(),
        checkpoint_status,
        resumed_entries,
        workloads,
    }
}

/// Atomic (tmp + rename) dump of every cached failure:
/// `<fp> <class> <inline> <unroll> <seq|->` per line.
fn write_quarantine_log(
    path: &Path,
    failures: &[(FitnessKey, FailureClass)],
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::from("zkvmopt-quarantine 1\n");
    for (k, class) in failures {
        let seq = if k.passes.is_empty() {
            "-".to_string()
        } else {
            k.passes.join(",")
        };
        out.push_str(&format!(
            "{} {} {} {} {seq}\n",
            zkvmopt_ir::analysis::fingerprint_to_hex(k.fingerprint),
            class.token(),
            k.inline_threshold,
            k.unroll_threshold,
        ));
    }
    let tmp = {
        let mut os = path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(out.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The work-stealing loop: a shared ready queue of `(cold index, island)`
/// tasks, per-workload generation barriers, termination via an outstanding
/// task counter.
#[allow(clippy::too_many_arguments)]
fn run_scheduler<F>(
    config: &ServiceConfig,
    cold: &[usize],
    work: &[WorkState],
    cache: &ShardedFitnessCache,
    fitness: &F,
    names: &'static [&'static str],
    sink: Option<&CheckpointSink<'_>>,
) where
    F: Fn(usize, &Candidate) -> EvalResult + Sync,
{
    let queue: Mutex<VecDeque<(usize, usize)>> = Mutex::new(
        (0..cold.len())
            .flat_map(|ci| (0..config.islands).map(move |i| (ci, i)))
            .collect(),
    );
    let ready = Condvar::new();
    let outstanding = AtomicUsize::new(cold.len() * config.islands * config.generations);
    let workers = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    }
    .max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next ready island task, or exit once every
                // island-generation in the run has been processed.
                let task = {
                    let mut q = queue.lock().expect("task queue");
                    loop {
                        if let Some(t) = q.pop_front() {
                            break Some(t);
                        }
                        if outstanding.load(Ordering::SeqCst) == 0 {
                            break None;
                        }
                        q = ready.wait(q).expect("task queue");
                    }
                };
                let Some((ci, island_idx)) = task else {
                    return;
                };
                let w = &work[ci];
                let gen = w.done_gens.load(Ordering::SeqCst);
                let valid = {
                    let mut island = w.islands[island_idx].lock().expect("island");
                    run_generation(
                        config,
                        &mut island,
                        gen,
                        island_idx,
                        w.fingerprint,
                        w.seed.as_ref(),
                        cold[ci],
                        cache,
                        fitness,
                        names,
                    )
                };
                w.valid_in_gen.fetch_add(valid, Ordering::SeqCst);
                // Generation barrier: the last island of this generation
                // migrates elites and releases the next generation.
                if w.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    let done = w.done_gens.fetch_add(1, Ordering::SeqCst) + 1;
                    let valid_total = w.valid_in_gen.swap(0, Ordering::SeqCst);
                    let failed = if valid_total == 0 {
                        w.failed_gens.fetch_add(1, Ordering::SeqCst) + 1
                    } else {
                        w.failed_gens.store(0, Ordering::SeqCst);
                        0
                    };
                    if let Some(s) = sink {
                        s.barrier(cache);
                    }
                    if done < config.generations {
                        if config.demote_after > 0 && failed >= config.demote_after {
                            // Demote: cancel the remaining generations —
                            // burning the rest of the budget on a workload
                            // that cannot produce a valid candidate starves
                            // the healthy ones. The collection phase falls
                            // back to the baseline sequence.
                            w.demoted.store(true, Ordering::SeqCst);
                            let skipped = (config.generations - done) * config.islands;
                            outstanding.fetch_sub(skipped, Ordering::SeqCst);
                        } else {
                            if config.migration_interval > 0
                                && config.islands > 1
                                && done.is_multiple_of(config.migration_interval)
                            {
                                migrate_ring(w);
                            }
                            w.remaining.store(config.islands, Ordering::SeqCst);
                            let mut q = queue.lock().expect("task queue");
                            q.extend((0..config.islands).map(|i| (ci, i)));
                            drop(q);
                            ready.notify_all();
                        }
                    }
                }
                if outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ready.notify_all();
                }
            });
        }
    });
}

/// Evolve one island by one generation. Deterministic in the island's RNG
/// state and population; costs exactly `config.population` budget. Returns
/// the number of valid (Ok) evaluations, for the demotion policy.
#[allow(clippy::too_many_arguments)]
fn run_generation<F>(
    config: &ServiceConfig,
    island: &mut IslandState,
    gen: usize,
    island_idx: usize,
    fingerprint: u64,
    seed: Option<&Candidate>,
    widx: usize,
    cache: &ShardedFitnessCache,
    fitness: &F,
    names: &'static [&'static str],
) -> usize
where
    F: Fn(usize, &Candidate) -> EvalResult + Sync,
{
    let mut valid = 0usize;
    let mut eval = |island: &mut IslandState, c: &Candidate| -> Option<u64> {
        let key = FitnessKey {
            fingerprint,
            passes: canonicalize_sequence(&c.passes),
            inline_threshold: c.inline_threshold,
            unroll_threshold: c.unroll_threshold,
        };
        island.evaluated += 1;
        let r = match cache.get(&key) {
            Some(v) => {
                island.cache_hits += 1;
                v
            }
            None => {
                let (r, calls) = eval_with_retries(config, fitness, widx, c);
                island.fitness_evals += calls;
                island.retries += calls - 1;
                cache.insert(key, r);
                r
            }
        };
        if r.is_ok() {
            valid += 1;
        }
        r.ok()
    };

    if gen == 0 {
        // Initial population: island 0 carries the rejected prediction (if
        // any) plus the known-good anchors; every island fills up with its
        // own random candidates.
        let mut init: Vec<Candidate> = Vec::with_capacity(config.population);
        if island_idx == 0 {
            if let Some(s) = seed {
                init.push(s.clone());
            }
            init.extend(anchor_candidates(config.max_depth));
            init.truncate(config.population);
        }
        while init.len() < config.population {
            init.push(random_candidate(&mut island.rng, names, config.max_depth));
        }
        island.pop = init
            .into_iter()
            .map(|c| {
                let f = eval(island, &c);
                (c, f)
            })
            .collect();
    } else {
        // Accept the ring migrant (already measured by the donor island).
        if let Some(m) = island.incoming.take() {
            let worst = island.pop.len() - 1;
            island.pop[worst] = m;
            sort_pop(&mut island.pop);
        }
        // μ+λ: breed `population` children, keep the best `population` of
        // parents ∪ children (stable sort: parents win ties).
        let mut children: Vec<(Candidate, Option<u64>)> = Vec::with_capacity(config.population);
        for _ in 0..config.population {
            let p1 = tournament(&mut island.rng, &island.pop);
            let p2 = tournament(&mut island.rng, &island.pop);
            let mut child = if island.rng.gen_bool(0.7) {
                crossover(&mut island.rng, &p1, &p2, config.max_depth)
            } else {
                p1.clone()
            };
            if island.rng.gen_bool(0.9) {
                child = mutate(&mut island.rng, &child, names, config.max_depth);
            }
            let f = eval(island, &child);
            children.push((child, f));
        }
        island.pop.append(&mut children);
        sort_pop(&mut island.pop);
        island.pop.truncate(config.population);
    }
    if island.pop.len() > 1 {
        sort_pop(&mut island.pop);
    }
    // Track the island best (first-found wins ties: deterministic, since
    // evaluation order is).
    for (c, f) in &island.pop {
        if let Some(v) = f {
            if island.best.as_ref().is_none_or(|(_, b)| v < b) {
                island.best = Some((c.clone(), *v));
            }
        }
    }
    valid
}

/// Stable best-first order; invalid candidates (`None`) sink to the back.
fn sort_pop(pop: &mut [(Candidate, Option<u64>)]) {
    pop.sort_by_key(|(_, f)| f.unwrap_or(u64::MAX));
}

/// Tournament selection (size 3) over the island's population.
fn tournament(rng: &mut StdRng, pop: &[(Candidate, Option<u64>)]) -> Candidate {
    let mut best: Option<(usize, u64)> = None;
    for _ in 0..3 {
        let i = rng.gen_range(0..pop.len());
        let f = pop[i].1.unwrap_or(u64::MAX);
        if best.is_none_or(|(_, bf)| f < bf) {
            best = Some((i, f));
        }
    }
    pop[best.expect("non-empty population").0].0.clone()
}

/// Ring migration at a generation barrier: island `i`'s best population
/// member moves to island `i+1 (mod n)`'s inbox. Runs with every island of
/// the workload quiescent, in island-index order — fully deterministic.
fn migrate_ring(w: &WorkState) {
    let n = w.islands.len();
    let elites: Vec<Option<(Candidate, Option<u64>)>> = (0..n)
        .map(|i| {
            let s = w.islands[i].lock().expect("island");
            s.pop.first().cloned()
        })
        .collect();
    for (i, elite) in elites.into_iter().enumerate() {
        if let Some(e) = elite {
            w.islands[(i + 1) % n].lock().expect("island").incoming = Some(e);
        }
    }
}

/// A candidate in canonical form (aliases resolved, no-ops dropped) — what
/// the tune database stores and reports present.
fn canonical_candidate(c: &Candidate) -> Candidate {
    Candidate {
        passes: canonicalize_sequence(&c.passes),
        inline_threshold: c.inline_threshold,
        unroll_threshold: c.unroll_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultPlan};

    /// A cheap synthetic fitness: deterministic pure function of
    /// (fingerprint, canonical candidate) — the documented contract.
    fn synthetic(fp: u64, c: &Candidate) -> EvalResult {
        let canon = canonicalize_sequence(&c.passes);
        let mut score = 10_000 + (fp % 7) * 100;
        if canon.first() == Some(&"mem2reg") {
            score -= 4_000;
        }
        if canon.contains(&"inline") {
            score -= 3_000;
        }
        score += canon.len() as u64 * 10;
        score += (c.inline_threshold as u64) % 13;
        if canon.contains(&"licm") {
            return Err(FailureClass::Divergence); // exercise the failure path
        }
        Ok(score)
    }

    fn targets(n: usize) -> Vec<TuneTarget> {
        (0..n)
            .map(|i| TuneTarget::new(format!("w{i}"), 0x1000 + i as u64))
            .collect()
    }

    fn run(cfg: &ServiceConfig, db: &mut TuneDb, n: usize) -> ServiceReport {
        let ts = targets(n);
        tune_suite(cfg, &ts, db, |widx, c| synthetic(ts[widx].fingerprint, c))
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zkvmopt-service-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spends_exactly_the_budget_and_finds_good_candidates() {
        let cfg = ServiceConfig {
            threads: 4,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let r = run(&cfg, &mut db, 3);
        assert_eq!(r.workloads.len(), 3);
        assert_eq!(r.evaluated, 3 * cfg.budget_per_workload());
        assert_eq!(r.db_hits, 0);
        assert_eq!(r.db_updates, 3);
        assert_eq!(r.retries, 0, "divergence failures are never retried");
        assert_eq!(r.demoted, 0);
        for w in &r.workloads {
            assert!(!w.warm_started);
            assert_eq!(w.evaluated, cfg.budget_per_workload());
            assert_eq!(w.evaluated, w.fitness_evals + w.cache_hits - w.retries);
            let f = w.best_fitness.expect("found a valid candidate");
            assert!(f < 7_000, "search should beat the random floor, got {f}");
            assert!(!w.best.as_ref().unwrap().passes.contains(&"licm"));
            assert_eq!(db.get(w.fingerprint).unwrap().cycles, f);
            // Every licm-bearing candidate landed in quarantine, classed.
            assert!(w.quarantine_total >= w.quarantined.len());
            for q in &w.quarantined {
                assert_eq!(q.class, FailureClass::Divergence);
                assert!(q.candidate.passes.contains(&"licm"));
            }
        }
    }

    /// The satellite regression test: two multi-threaded runs with one
    /// pinned seed must produce bit-identical tune databases — thread
    /// scheduling can influence throughput counters only, never results.
    #[test]
    fn four_thread_runs_with_equal_seed_produce_identical_databases() {
        let cfg = ServiceConfig {
            islands: 3,
            population: 6,
            generations: 6,
            threads: 4,
            seed: 0xFEED,
            ..Default::default()
        };
        let mut runs = Vec::new();
        for threads in [4, 4, 1, 8] {
            let cfg = ServiceConfig {
                threads,
                ..cfg.clone()
            };
            let mut db = TuneDb::in_memory();
            let r = run(&cfg, &mut db, 4);
            runs.push((db.to_string_pretty(), r));
        }
        for (text, r) in &runs[1..] {
            assert_eq!(
                *text, runs[0].0,
                "tune database must not depend on thread count"
            );
            for (a, b) in r.workloads.iter().zip(&runs[0].1.workloads) {
                assert_eq!(a.best, b.best);
                assert_eq!(a.best_fitness, b.best_fitness);
                assert_eq!(a.evaluated, b.evaluated);
                assert_eq!(a.quarantine_total, b.quarantine_total, "{}", a.name);
                assert_eq!(a.quarantined, b.quarantined, "{}", a.name);
            }
        }
    }

    #[test]
    fn different_seeds_search_differently() {
        let mut dbs = Vec::new();
        for seed in [1u64, 2] {
            let cfg = ServiceConfig {
                seed,
                threads: 2,
                generations: 3,
                ..Default::default()
            };
            let mut db = TuneDb::in_memory();
            run(&cfg, &mut db, 2);
            dbs.push(db.to_string_pretty());
        }
        assert_ne!(dbs[0], dbs[1], "seed must steer the search");
    }

    /// Warm start: a populated database answers instantly — zero budget,
    /// zero fitness calls, result identical to what was stored.
    #[test]
    fn warm_start_skips_search_with_zero_evaluations() {
        let cfg = ServiceConfig {
            threads: 4,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let cold = run(&cfg, &mut db, 3);
        assert_eq!(db.len(), 3);

        let warm = run(&cfg, &mut db, 3);
        assert_eq!(warm.db_hits, 3);
        assert_eq!(warm.evaluated, 0, "no budget spent");
        assert_eq!(warm.fitness_evals, 0, "zero redundant fitness evaluations");
        assert_eq!(warm.db_updates, 0);
        for (c, w) in cold.workloads.iter().zip(&warm.workloads) {
            assert!(w.warm_started);
            assert_eq!(w.best_fitness, c.best_fitness);
            assert_eq!(w.best, c.best);
        }

        // With warm_start off, the database is ignored (but stays intact).
        let re = tune_suite(
            &ServiceConfig {
                warm_start: false,
                ..cfg
            },
            &targets(3),
            &mut db,
            |widx, c| synthetic(targets(3)[widx].fingerprint, c),
        );
        assert_eq!(re.db_hits, 0);
        assert!(re.fitness_evals > 0);
    }

    /// Duplicate programs (equal fingerprints) share the fitness cache
    /// across workloads: the second copy's search runs almost entirely on
    /// cache hits in single-threaded mode.
    #[test]
    fn equal_fingerprints_share_the_cache_across_workloads() {
        let cfg = ServiceConfig {
            threads: 1,
            generations: 3,
            ..Default::default()
        };
        let ts = vec![TuneTarget::new("a", 42), TuneTarget::new("b", 42)];
        let mut db = TuneDb::in_memory();
        let r = tune_suite(&cfg, &ts, &mut db, |_, c| synthetic(42, c));
        let (a, b) = (&r.workloads[0], &r.workloads[1]);
        // Identical RNG streams (same fingerprint) generate identical
        // candidates, so the clone is served from the cache wholesale.
        assert_eq!(b.fitness_evals, 0, "duplicate program re-measured");
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(r.db_hits, 0);
        assert_eq!(db.len(), 1, "one fingerprint, one entry");
    }

    #[test]
    fn stale_db_entries_with_unknown_passes_are_researched() {
        let cfg = ServiceConfig {
            threads: 2,
            generations: 2,
            ..Default::default()
        };
        let ts = targets(1);
        let mut db = TuneDb::in_memory();
        db.record(TuneDbEntry {
            fingerprint: ts[0].fingerprint,
            passes: vec!["a-pass-that-never-existed".into()],
            inline_threshold: 1,
            unroll_threshold: 1,
            cycles: 1, // "unbeatably good", but unusable
            baseline_cycles: 0,
            features: Vec::new(),
        });
        let r = tune_suite(&cfg, &ts, &mut db, |widx, c| {
            synthetic(ts[widx].fingerprint, c)
        });
        assert_eq!(r.db_hits, 0, "stale entry must not warm-start");
        assert!(r.fitness_evals > 0);
        assert!(r.workloads[0].best.is_some());
    }

    #[test]
    fn single_island_single_thread_degenerates_to_a_plain_ga() {
        let cfg = ServiceConfig {
            islands: 1,
            population: 4,
            generations: 4,
            threads: 1,
            migration_interval: 0,
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let r = run(&cfg, &mut db, 1);
        assert_eq!(r.evaluated, 16);
        assert!(r.workloads[0].best_fitness.is_some());
    }

    /// Migration must help search: an island that never finds the good
    /// region imports the elite from one that does. With migration off the
    /// islands stay independent (weaker coupling is at least not *worse*
    /// when fitness is unimodal — here we just pin behaviour: results stay
    /// deterministic and valid either way).
    #[test]
    fn migration_interval_zero_disables_migration_deterministically() {
        for interval in [0usize, 1, 3] {
            let cfg = ServiceConfig {
                islands: 2,
                population: 4,
                generations: 4,
                migration_interval: interval,
                threads: 3,
                ..Default::default()
            };
            let mut a = TuneDb::in_memory();
            let mut b = TuneDb::in_memory();
            let ra = run(&cfg, &mut a, 2);
            let rb = run(&cfg, &mut b, 2);
            assert_eq!(
                a.to_string_pretty(),
                b.to_string_pretty(),
                "interval {interval}"
            );
            assert_eq!(ra.evaluated, rb.evaluated);
        }
    }

    /// Panic isolation + bounded retries: a fitness function that panics
    /// and traps transiently (via the deterministic fault plan, capped
    /// below the retry budget) yields a bit-identical database to the
    /// fault-free run, with the retries surfaced in the report.
    #[test]
    fn transient_faults_converge_to_the_fault_free_database() {
        let cfg = ServiceConfig {
            islands: 2,
            population: 6,
            generations: 4,
            threads: 4,
            seed: 0xFA_B1E,
            max_retries: 3,
            ..Default::default()
        };
        let ts = targets(3);

        let mut clean_db = TuneDb::in_memory();
        let clean = tune_suite(&cfg, &ts, &mut clean_db, |widx, c| {
            synthetic(ts[widx].fingerprint, c)
        });

        let plan = FaultPlan::new(FaultConfig {
            seed: 0xBAD5EED,
            panic_rate: 0.10,
            trap_rate: 0.10,
            budget_rate: 0.05,
            max_injections: 2, // ≤ max_retries: convergence guaranteed
            ..Default::default()
        });
        let mut chaos_db = TuneDb::in_memory();
        let wrapped = plan.wrap(|widx: usize, c: &Candidate| synthetic(ts[widx].fingerprint, c));
        let chaos = tune_suite(&cfg, &ts, &mut chaos_db, &wrapped);

        assert!(
            !plan.injected().is_empty(),
            "the plan must actually have injected faults"
        );
        assert!(chaos.retries > 0, "injected faults must surface as retries");
        assert_eq!(
            chaos_db.to_string_pretty(),
            clean_db.to_string_pretty(),
            "non-corrupting faults must not change the tune database"
        );
        for (a, b) in chaos.workloads.iter().zip(&clean.workloads) {
            assert_eq!(a.best, b.best, "{}", a.name);
            assert_eq!(a.best_fitness, b.best_fitness, "{}", a.name);
            assert_eq!(a.evaluated, b.evaluated, "{}", a.name);
            assert_eq!(a.quarantined, b.quarantined, "{}", a.name);
            assert_eq!(a.evaluated, a.fitness_evals + a.cache_hits - a.retries);
        }
    }

    /// A workload whose evaluations always fail is demoted after
    /// `demote_after` consecutive empty generations instead of burning its
    /// whole budget, and falls back to the baseline sequence when even that
    /// is all the run ever measured. Healthy workloads are untouched.
    #[test]
    fn hopeless_workloads_are_demoted_and_fall_back_to_baseline() {
        let cfg = ServiceConfig {
            islands: 2,
            population: 4,
            generations: 6,
            threads: 3,
            demote_after: 2,
            ..Default::default()
        };
        let ts = targets(2);
        let poisoned = ts[1].fingerprint;
        let mut db = TuneDb::in_memory();
        let r = tune_suite(&cfg, &ts, &mut db, |widx, c| {
            if ts[widx].fingerprint == poisoned {
                // Baseline (empty sequence) still works: demotion has a
                // fallback to land on. Everything else traps.
                if canonicalize_sequence(&c.passes).is_empty() {
                    Ok(77_777)
                } else {
                    Err(FailureClass::Trap)
                }
            } else {
                synthetic(ts[widx].fingerprint, c)
            }
        });

        let healthy = &r.workloads[0];
        assert!(!healthy.demoted);
        assert_eq!(healthy.evaluated, cfg.budget_per_workload());

        let sick = &r.workloads[1];
        assert!(sick.demoted, "all-failing workload must demote");
        assert!(
            sick.evaluated < cfg.budget_per_workload(),
            "demotion must cancel the remaining budget ({} evals)",
            sick.evaluated
        );
        assert_eq!(r.demoted, 1);
        let best = sick.best.as_ref().expect("baseline fallback");
        assert!(best.passes.is_empty(), "fallback is the empty sequence");
        assert_eq!(sick.best_fitness, Some(77_777));
        assert_eq!(db.get(poisoned).unwrap().cycles, 77_777);
        assert!(sick.quarantine_total > 0, "failures were quarantined");
        assert!(sick.retries > 0, "traps are transient: retried");
    }

    /// Even a workload with **no** valid outcome at all (baseline included)
    /// completes with `best: None` — the service degrades, never hangs or
    /// panics.
    #[test]
    fn totally_hostile_workloads_complete_with_no_best() {
        let cfg = ServiceConfig {
            islands: 2,
            population: 3,
            generations: 5,
            threads: 2,
            demote_after: 1,
            ..Default::default()
        };
        let ts = targets(1);
        let mut db = TuneDb::in_memory();
        let r = tune_suite(&cfg, &ts, &mut db, |_, _c| {
            Err::<u64, _>(FailureClass::Codegen)
        });
        let w = &r.workloads[0];
        assert!(w.demoted);
        assert_eq!(w.best, None);
        assert_eq!(w.best_fitness, None);
        assert_eq!(w.retries, 0, "codegen failures are deterministic");
        assert!(db.is_empty(), "nothing valid, nothing recorded");
    }

    /// A panicking fitness function (raw `panic!`, no fault plan) is
    /// isolated: the run completes, the panics class as `Panic`, and the
    /// panicking candidates are quarantined.
    #[test]
    fn raw_panics_in_fitness_are_isolated_and_classified() {
        let cfg = ServiceConfig {
            islands: 2,
            population: 4,
            generations: 3,
            threads: 2,
            ..Default::default()
        };
        let ts = targets(1);
        let mut db = TuneDb::in_memory();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let r = tune_suite(&cfg, &ts, &mut db, |widx, c| {
            if canonicalize_sequence(&c.passes).contains(&"gvn") {
                panic!("evaluator bug");
            }
            synthetic(ts[widx].fingerprint, c)
        });
        std::panic::set_hook(prev);
        let w = &r.workloads[0];
        assert!(w.best.is_some(), "search survives panicking candidates");
        assert!(!w.best.as_ref().unwrap().passes.contains(&"gvn"));
        assert!(
            w.quarantined.iter().any(|q| q.class == FailureClass::Panic),
            "panics must be classified and quarantined"
        );
        assert!(w.retries > 0, "panics are transient: retried");
    }

    /// Checkpoint/resume at the unit level: a completed run leaves a
    /// checkpoint holding every evaluation; a second run with the same
    /// configuration resumes from it and needs **zero** fitness calls to
    /// produce the bit-identical database. A corrupted checkpoint degrades
    /// to a partial resume, never a wrong result.
    #[test]
    fn resume_from_checkpoint_repeats_no_evaluations() {
        let dir = tmpdir("resume");
        let ckpt = dir.join("run.ckpt");
        let cfg = ServiceConfig {
            islands: 2,
            population: 5,
            generations: 4,
            threads: 3,
            warm_start: false, // force the search; resume must do the saving
            checkpoint_path: Some(ckpt.clone()),
            ..Default::default()
        };
        let mut db1 = TuneDb::in_memory();
        let first = run(&cfg, &mut db1, 2);
        assert_eq!(first.checkpoint_status, CheckpointStatus::Absent);
        assert!(first.fitness_evals > 0);
        assert!(ckpt.exists(), "barriers must have written the checkpoint");

        let mut db2 = TuneDb::in_memory();
        let resumed = run(&cfg, &mut db2, 2);
        assert!(matches!(
            resumed.checkpoint_status,
            CheckpointStatus::Loaded { .. }
        ));
        assert!(resumed.resumed_entries > 0);
        assert_eq!(
            resumed.fitness_evals, 0,
            "a full checkpoint answers every evaluation"
        );
        assert_eq!(db2.to_string_pretty(), db1.to_string_pretty());

        // Corrupt the checkpoint: tail lines survive, the run completes
        // with the same database.
        let text = std::fs::read_to_string(&ckpt).unwrap();
        let keep = text.lines().count() / 2;
        let mut torn: String = text.lines().take(keep).collect::<Vec<_>>().join("\n");
        torn.push_str("\ntorn-li");
        std::fs::write(&ckpt, torn).unwrap();
        let mut db4 = TuneDb::in_memory();
        let salvaged = run(&cfg, &mut db4, 2);
        assert!(matches!(
            salvaged.checkpoint_status,
            CheckpointStatus::Recovered { .. }
        ));
        assert!(salvaged.resumed_entries > 0);
        assert_eq!(db4.to_string_pretty(), db1.to_string_pretty());

        // A different seed must reject the checkpoint (digest mismatch)
        // rather than resume a different search from it.
        let mut db3 = TuneDb::in_memory();
        let other = run(
            &ServiceConfig {
                seed: cfg.seed + 1,
                ..cfg.clone()
            },
            &mut db3,
            2,
        );
        assert_eq!(other.checkpoint_status, CheckpointStatus::Mismatch);
        assert!(other.fitness_evals > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn fv(x: f64) -> FeatureVector {
        let mut raw = vec![0.5; zkvmopt_ir::FEATURE_DIM];
        raw[0] = x;
        FeatureVector::from_slice(&raw).unwrap()
    }

    /// The synthetic `-O3` reference: the do-nothing score of [`synthetic`],
    /// comfortably above any tuned result (ratio < 1).
    fn synthetic_baseline(fp: u64) -> u64 {
        10_000 + (fp % 7) * 100
    }

    /// Targets with prediction metadata: feature coordinate `i` on axis 0,
    /// baseline from [`synthetic_baseline`].
    fn predictable_targets(n: usize) -> Vec<TuneTarget> {
        (0..n)
            .map(|i| {
                let fp = 0x1000 + i as u64;
                TuneTarget::new(format!("w{i}"), fp)
                    .with_prediction(fv(i as f64), synthetic_baseline(fp))
            })
            .collect()
    }

    /// Predict-first end to end: a database populated by real searches
    /// serves a similar unseen program with exactly one fitness evaluation.
    #[test]
    fn predicted_hit_serves_with_one_evaluation() {
        let cfg = ServiceConfig {
            threads: 2,
            generations: 3,
            ..Default::default()
        };
        let ts = predictable_targets(3);
        let mut db = TuneDb::in_memory();
        tune_suite(&cfg, &ts, &mut db, |widx, c| {
            synthetic(ts[widx].fingerprint, c)
        });
        assert_eq!(db.len(), 3);
        for e in db.iter() {
            assert!(!e.features.is_empty(), "searches record features");
            assert_eq!(e.baseline_cycles, synthetic_baseline(e.fingerprint));
        }

        // An unseen program shaped like w0 (same features, same fp % 7 so
        // the synthetic fitness behaves identically): the predictor lifts
        // w0's sequence and the one measurement lands inside the margin.
        let fp_new = 0x1000 + 7;
        let unseen =
            vec![TuneTarget::new("unseen", fp_new)
                .with_prediction(fv(0.0), synthetic_baseline(fp_new))];
        let pcfg = ServiceConfig {
            predict: true,
            ..cfg.clone()
        };
        let r = tune_suite(&pcfg, &unseen, &mut db, |_, c| synthetic(fp_new, c));
        assert_eq!(r.predicted_hits, 1);
        assert_eq!(r.db_hits, 0);
        let w = &r.workloads[0];
        assert!(w.predicted);
        assert!(!w.warm_started);
        assert_eq!(w.evaluated, 1, "one measurement, no search");
        assert_eq!(w.fitness_evals, 1);
        assert_eq!(
            w.best,
            db.get(0x1000).map(|e| Candidate {
                passes: e
                    .passes
                    .iter()
                    .map(|p| zkvmopt_passes::find_pass(p).unwrap().canonical_name())
                    .collect(),
                inline_threshold: e.inline_threshold,
                unroll_threshold: e.unroll_threshold,
            }),
            "served w0's tuning"
        );
        let e = db.get(fp_new).expect("accepted prediction recorded");
        assert_eq!(Some(e.cycles), w.best_fitness);
        assert_eq!(e.baseline_cycles, synthetic_baseline(fp_new));
        assert!(!e.features.is_empty());

        // Second visit: now a plain warm start.
        let again = tune_suite(&pcfg, &unseen, &mut db, |_, c| synthetic(fp_new, c));
        assert_eq!(again.db_hits, 1);
        assert_eq!(again.predicted_hits, 0);
        assert_eq!(again.evaluated, 0);
    }

    /// A rejected prediction costs its one measurement, then seeds the
    /// genetic search instead of replacing it.
    #[test]
    fn rejected_prediction_seeds_the_search() {
        let cfg = ServiceConfig {
            threads: 2,
            generations: 3,
            ..Default::default()
        };
        let ts = predictable_targets(3);
        let mut db = TuneDb::in_memory();
        tune_suite(&cfg, &ts, &mut db, |widx, c| {
            synthetic(ts[widx].fingerprint, c)
        });

        // A program whose behaviour defies its neighbours: every candidate
        // measures 50 000 cycles, far outside the accepted ratio band.
        let fp_new = 0x1000 + 14;
        let unseen =
            vec![TuneTarget::new("defiant", fp_new)
                .with_prediction(fv(0.0), synthetic_baseline(fp_new))];
        let pcfg = ServiceConfig {
            predict: true,
            ..cfg.clone()
        };
        let r = tune_suite(&pcfg, &unseen, &mut db, |_, _c| Ok(50_000));
        assert_eq!(r.predicted_hits, 0);
        let w = &r.workloads[0];
        assert!(!w.predicted);
        assert_eq!(
            w.evaluated,
            pcfg.budget_per_workload() + 1,
            "full search plus the rejected measurement"
        );
        assert_eq!(w.evaluated, w.fitness_evals + w.cache_hits - w.retries);
        assert_eq!(w.best_fitness, Some(50_000));
        assert_eq!(db.get(fp_new).unwrap().cycles, 50_000);
    }

    /// Predict-first determinism: with one pre-populated database, runs at
    /// 1, 4, and 8 threads produce bit-identical databases and results —
    /// the satellite acceptance gate.
    #[test]
    fn predict_first_is_deterministic_across_thread_counts() {
        let warm_cfg = ServiceConfig {
            threads: 2,
            generations: 3,
            seed: 0xFEED,
            ..Default::default()
        };
        let seed_ts = predictable_targets(3);
        // Mixed phase-2 suite: one predictable hit, one defiant miss.
        let unseen: Vec<TuneTarget> = vec![
            TuneTarget::new("hit", 0x1000 + 7)
                .with_prediction(fv(0.0), synthetic_baseline(0x1000 + 7)),
            TuneTarget::new("miss", 0x2111).with_prediction(fv(1.0), synthetic_baseline(0x2111)),
        ];
        let fitness = |widx: usize, c: &Candidate| -> EvalResult {
            if unseen[widx].fingerprint == 0x2111 {
                Ok(60_000)
            } else {
                synthetic(unseen[widx].fingerprint, c)
            }
        };
        let mut runs = Vec::new();
        for threads in [1usize, 4, 8] {
            let mut db = TuneDb::in_memory();
            tune_suite(&warm_cfg, &seed_ts, &mut db, |widx, c| {
                synthetic(seed_ts[widx].fingerprint, c)
            });
            let pcfg = ServiceConfig {
                threads,
                predict: true,
                ..warm_cfg.clone()
            };
            let r = tune_suite(&pcfg, &unseen, &mut db, fitness);
            assert_eq!(r.predicted_hits, 1, "threads={threads}");
            runs.push((db.to_string_pretty(), r));
        }
        for (text, r) in &runs[1..] {
            assert_eq!(*text, runs[0].0, "db must not depend on thread count");
            for (a, b) in r.workloads.iter().zip(&runs[0].1.workloads) {
                assert_eq!(a.best, b.best, "{}", a.name);
                assert_eq!(a.best_fitness, b.best_fitness, "{}", a.name);
                assert_eq!(a.predicted, b.predicted, "{}", a.name);
                assert_eq!(a.evaluated, b.evaluated, "{}", a.name);
            }
        }
    }

    /// The quarantine log file: every cached failure, atomically written,
    /// line-parseable, stable across reruns.
    #[test]
    fn quarantine_log_is_written_and_deterministic() {
        let dir = tmpdir("quarantine");
        let log = dir.join("quarantine.log");
        let cfg = ServiceConfig {
            islands: 2,
            population: 6,
            generations: 3,
            threads: 2,
            quarantine_path: Some(log.clone()),
            ..Default::default()
        };
        let mut db = TuneDb::in_memory();
        let r = run(&cfg, &mut db, 2);
        let text = std::fs::read_to_string(&log).expect("log written");
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("zkvmopt-quarantine 1"));
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), r.quarantine_total);
        for line in &body {
            let parts: Vec<&str> = line.split_ascii_whitespace().collect();
            assert_eq!(parts.len(), 5, "{line:?}");
            assert!(FailureClass::from_token(parts[1]).is_some(), "{line:?}");
            assert!(parts[4].contains("licm"), "{line:?}");
        }
        let mut db2 = TuneDb::in_memory();
        run(&cfg, &mut db2, 2);
        assert_eq!(
            std::fs::read_to_string(&log).unwrap(),
            text,
            "equal seeds produce the identical quarantine log"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
