//! The concurrent sharded fitness cache.
//!
//! Generalizes the sequential tuner's per-run fitness memo into a
//! `DashMap`-style sharded map shared by **every island of every workload**
//! in a service run: keys carry the workload's stable IR fingerprint, so one
//! map serves the whole suite, and lock contention is spread over
//! fingerprint-hashed shards instead of one global mutex. Islands searching
//! the same workload (and duplicate programs across workloads with equal
//! fingerprints) therefore never pay for the same candidate twice.
//!
//! Values are classified [`EvalResult`]s: a failing candidate caches *why*
//! it failed, which is what the quarantine log and checkpoint files are
//! derived from.
//!
//! Concurrency contract: fitness is deterministic (cycle counts are), so a
//! benign race — two threads missing on the same key and both evaluating —
//! computes the same value twice and the second insert is a no-op. Search
//! *results* can never depend on scheduling; only the hit/miss counters can
//! wobble by the handful of racy duplicates, which is why the service
//! reports them as throughput statistics, not as part of the deterministic
//! outcome.

use crate::fault::EvalResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: one candidate on one program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FitnessKey {
    /// Stable fingerprint of the target's lowered base module
    /// (`zkvmopt_ir::stable_module_fingerprint`).
    pub fingerprint: u64,
    /// The candidate's **canonical** pass sequence
    /// ([`crate::canonicalize_sequence`]).
    pub passes: Vec<&'static str>,
    /// Inline threshold.
    pub inline_threshold: usize,
    /// Unroll threshold.
    pub unroll_threshold: usize,
}

/// Number of shards: enough that 8–16 worker threads rarely collide, small
/// enough that an empty cache stays cheap.
const SHARDS: usize = 64;

/// A sharded concurrent map from [`FitnessKey`] to its classified
/// evaluation outcome.
#[derive(Debug)]
pub struct ShardedFitnessCache {
    shards: Vec<Mutex<HashMap<FitnessKey, EvalResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ShardedFitnessCache {
    fn default() -> ShardedFitnessCache {
        ShardedFitnessCache::new()
    }
}

impl ShardedFitnessCache {
    /// An empty cache.
    pub fn new() -> ShardedFitnessCache {
        ShardedFitnessCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &FitnessKey) -> &Mutex<HashMap<FitnessKey, EvalResult>> {
        // FNV-1a over the key's fixed-width fields plus the canonical pass
        // pointers' names; `Hash` for HashMap stays the std one.
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(key.fingerprint);
        mix(key.inline_threshold as u64);
        mix(key.unroll_threshold as u64);
        for p in &key.passes {
            for b in p.bytes() {
                mix(b as u64);
            }
            mix(u64::MAX);
        }
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Look `key` up, counting a hit or miss.
    pub fn get(&self, key: &FitnessKey) -> Option<EvalResult> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard")
            .get(key)
            .copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record `value` for `key`. First write wins on the benign
    /// evaluate-twice race (both writers hold the same deterministic value).
    pub fn insert(&self, key: FitnessKey, value: EvalResult) {
        self.shard(&key)
            .lock()
            .expect("cache shard")
            .entry(key)
            .or_insert(value);
    }

    /// Preload entries (a resumed checkpoint) without touching the
    /// hit/miss counters. First write wins, as with [`Self::insert`].
    /// Returns the number of entries actually added.
    pub fn preload(&self, entries: impl IntoIterator<Item = (FitnessKey, EvalResult)>) -> usize {
        let mut added = 0usize;
        for (key, value) in entries {
            let mut shard = self.shard(&key).lock().expect("cache shard");
            if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(key) {
                e.insert(value);
                added += 1;
            }
        }
        added
    }

    /// A point-in-time copy of every cached entry, in a deterministic
    /// order (sorted by key). Because the cache is insert-only and every
    /// value is a pure function of its key, *any* snapshot — even one taken
    /// while workers are mid-generation — is a valid checkpoint: resuming
    /// from it replays the search with those evaluations pre-answered.
    pub fn snapshot(&self) -> Vec<(FitnessKey, EvalResult)> {
        let mut out: Vec<(FitnessKey, EvalResult)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard")
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|(a, _), (b, _)| {
            (
                a.fingerprint,
                &a.passes,
                a.inline_threshold,
                a.unroll_threshold,
            )
                .cmp(&(
                    b.fingerprint,
                    &b.passes,
                    b.inline_threshold,
                    b.unroll_threshold,
                ))
        });
        out
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit rate in `[0, 1]` (`0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FailureClass;

    fn key(fp: u64, passes: &[&'static str], inline: usize, unroll: usize) -> FitnessKey {
        FitnessKey {
            fingerprint: fp,
            passes: passes.to_vec(),
            inline_threshold: inline,
            unroll_threshold: unroll,
        }
    }

    #[test]
    fn get_insert_round_trip_with_counters() {
        let c = ShardedFitnessCache::new();
        let k = key(7, &["mem2reg", "gvn"], 225, 200);
        assert_eq!(c.get(&k), None);
        c.insert(k.clone(), Ok(1234));
        assert_eq!(c.get(&k), Some(Ok(1234)));
        // Failing candidates cache too, with their class: failure is a
        // result.
        let bad = key(7, &["licm"], 0, 0);
        assert_eq!(c.get(&bad), None);
        c.insert(bad.clone(), Err(FailureClass::Divergence));
        assert_eq!(c.get(&bad), Some(Err(FailureClass::Divergence)));
        assert_eq!(c.stats(), (2, 2));
        assert_eq!(c.len(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn keys_distinguish_workload_sequence_and_thresholds() {
        let c = ShardedFitnessCache::new();
        c.insert(key(1, &["dce"], 10, 20), Ok(1));
        assert_eq!(c.get(&key(2, &["dce"], 10, 20)), None, "fingerprint");
        assert_eq!(c.get(&key(1, &["gvn"], 10, 20)), None, "sequence");
        assert_eq!(c.get(&key(1, &["dce"], 11, 20)), None, "inline");
        assert_eq!(c.get(&key(1, &["dce"], 10, 21)), None, "unroll");
        assert_eq!(c.get(&key(1, &["dce"], 10, 20)), Some(Ok(1)));
    }

    #[test]
    fn first_insert_wins_and_concurrent_use_is_safe() {
        let c = ShardedFitnessCache::new();
        let k = key(3, &["sccp"], 1, 2);
        c.insert(k.clone(), Ok(10));
        c.insert(k.clone(), Ok(99)); // racy duplicate: ignored
        assert_eq!(c.get(&k), Some(Ok(10)));

        let shared = ShardedFitnessCache::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let shared = &shared;
                s.spawn(move || {
                    for i in 0..256u64 {
                        let k = key(i % 32, &["mem2reg"], (t % 2) as usize, i as usize % 8);
                        if shared.get(&k).is_none() {
                            shared.insert(k, Ok(i % 32));
                        }
                    }
                });
            }
        });
        // Every key maps to the deterministic value regardless of which
        // thread inserted it.
        for i in 0..32u64 {
            for inline in 0..2usize {
                for unroll in 0..8usize {
                    if let Some(v) = shared.get(&key(i, &["mem2reg"], inline, unroll)) {
                        assert_eq!(v, Ok(i));
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_is_sorted_and_preload_round_trips() {
        let c = ShardedFitnessCache::new();
        c.insert(key(9, &["gvn"], 1, 1), Ok(50));
        c.insert(key(2, &["dce"], 0, 0), Err(FailureClass::Trap));
        c.insert(key(2, &["mem2reg", "dce"], 0, 0), Ok(7));
        let snap = c.snapshot();
        assert_eq!(snap.len(), 3);
        let fps: Vec<u64> = snap.iter().map(|(k, _)| k.fingerprint).collect();
        assert_eq!(fps, vec![2, 2, 9], "sorted by key");

        let re = ShardedFitnessCache::new();
        assert_eq!(re.preload(snap.clone()), 3);
        assert_eq!(re.preload(snap.clone()), 0, "idempotent");
        assert_eq!(re.snapshot(), snap);
        assert_eq!(re.stats(), (0, 0), "preload leaves counters untouched");
    }
}
