//! Advisory file locking for the persistent tune state.
//!
//! Two service runs pointed at the same tune database (or checkpoint) must
//! not interleave their temp-file + rename writes: both renames succeed,
//! but the survivor silently drops the loser's entries. [`FileLock`] wraps
//! the OS advisory lock (`std::fs::File::lock`, stable since Rust 1.89) on
//! a `<path>.lock` sidecar file:
//!
//! - the lock is **advisory** — it coordinates cooperating zkvmopt
//!   processes, it does not stop an unrelated program from writing;
//! - it is released automatically when the process exits *or dies* (the
//!   OS drops the lock with the file descriptor), so a killed service run
//!   never wedges the next one — the property the kill/resume chaos test
//!   relies on;
//! - the sidecar file itself is left in place (removing it would race
//!   another process that just opened it).

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// An exclusive advisory lock on `<path>.lock`, held until drop.
#[derive(Debug)]
pub struct FileLock {
    file: File,
    lock_path: PathBuf,
}

/// The sidecar lock path guarding `path`.
pub fn lock_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

impl FileLock {
    /// Block until the exclusive lock on `<path>.lock` is acquired.
    ///
    /// # Errors
    /// Returns the underlying I/O error when the sidecar cannot be created
    /// or the lock operation itself fails.
    pub fn acquire(path: &Path) -> io::Result<FileLock> {
        let lock_path = lock_path_for(path);
        let file = open_sidecar(&lock_path)?;
        file.lock()?;
        Ok(FileLock { file, lock_path })
    }

    /// Try to take the lock without blocking; `Ok(None)` when another
    /// process holds it.
    ///
    /// # Errors
    /// Returns the underlying I/O error when the sidecar cannot be created
    /// or the lock operation fails for a reason other than contention.
    pub fn try_acquire(path: &Path) -> io::Result<Option<FileLock>> {
        let lock_path = lock_path_for(path);
        let file = open_sidecar(&lock_path)?;
        match file.try_lock() {
            Ok(()) => Ok(Some(FileLock { file, lock_path })),
            Err(std::fs::TryLockError::WouldBlock) => Ok(None),
            Err(std::fs::TryLockError::Error(e)) => Err(e),
        }
    }

    /// The sidecar file this lock holds.
    pub fn path(&self) -> &Path {
        &self.lock_path
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        // Best-effort: the OS releases the lock with the descriptor anyway.
        let _ = self.file.unlock();
    }
}

fn open_sidecar(lock_path: &Path) -> io::Result<File> {
    if let Some(dir) = lock_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    File::options()
        .create(true)
        .truncate(false)
        .write(true)
        .open(lock_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zkvmopt-lock-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exclusive_while_held_then_reacquirable() {
        let dir = tmpdir("basic");
        let db = dir.join("tune.db");
        let held = FileLock::acquire(&db).expect("first lock");
        assert!(held.path().ends_with("tune.db.lock"));
        assert!(
            FileLock::try_acquire(&db)
                .expect("try_lock io ok")
                .is_none(),
            "second lock must be refused while the first is held"
        );
        drop(held);
        assert!(
            FileLock::try_acquire(&db)
                .expect("try_lock io ok")
                .is_some(),
            "lock must be reacquirable after release"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn blocking_acquire_waits_for_the_holder() {
        let dir = tmpdir("blocking");
        let db = dir.join("tune.db");
        let held = FileLock::acquire(&db).expect("first lock");
        let (tx, rx) = std::sync::mpsc::channel();
        let db2 = db.clone();
        let t = std::thread::spawn(move || {
            let l = FileLock::acquire(&db2).expect("eventually acquires");
            tx.send(()).unwrap();
            drop(l);
        });
        assert!(
            rx.try_recv().is_err(),
            "waiter must not acquire while we hold the lock"
        );
        drop(held);
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("waiter acquires after release");
        t.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
