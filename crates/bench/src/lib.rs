//! # zkvmopt-bench
//!
//! The experiment harness: shared machinery that regenerates every table and
//! figure of the paper. Each Criterion bench target prints its paper-style
//! rows (on a reduced default scale) and then measures the underlying
//! computation; the `report` binary (`cargo run -p zkvmopt-bench --release
//! --bin report`) runs the full-scale version and emits the data recorded in
//! EXPERIMENTS.md.

use zkvmopt_core::{gain, Measurement, OptLevel, OptProfile, RunReport, SuiteRunner};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::Workload;

pub mod trajectory;

pub use trajectory::smoke;

/// One pass-impact observation: percent gains vs. baseline.
#[derive(Debug, Clone)]
pub struct Impact {
    /// Workload name.
    pub workload: String,
    /// Profile (pass or level) name.
    pub profile: String,
    /// VM.
    pub vm: VmKind,
    /// Gain in zkVM execution time (+ = faster).
    pub exec_gain: f64,
    /// Gain in proving time.
    pub prove_gain: f64,
    /// Gain in cycle count.
    pub cycles_gain: f64,
    /// Gain in dynamic instruction count.
    pub instret_gain: f64,
    /// Gain in paging cycles (negative = more paging).
    pub paging_gain: f64,
    /// Gain in native x86 time (when measured).
    pub x86_gain: Option<f64>,
    /// Raw optimized measurement.
    pub measurement: Measurement,
}

/// Default reduced workload set for `cargo bench` (representative across
/// suites; the `report` binary uses all 58).
pub fn bench_workloads() -> Vec<&'static Workload> {
    [
        "polybench-floyd-warshall",
        "polybench-gemm",
        "polybench-trmm",
        "polybench-durbin",
        "npb-lu",
        "npb-mg",
        "fibonacci",
        "loop-sum",
        "tailcall",
        "sha2-bench",
    ]
    .iter()
    .map(|n| zkvmopt_workloads::by_name(n).expect("bench workload exists"))
    .collect()
}

/// Baseline runs for a workload on both VMs (+x86 when asked).
pub struct BaselineRuns {
    /// Per-VM baseline (indexed by `VmKind::BOTH` order).
    pub by_vm: Vec<(VmKind, Measurement, RunReport)>,
}

/// Measure the baseline for `w` on the given VMs through the batched runner
/// (the baseline program is compiled once and reused across VMs).
///
/// # Panics
/// Panics when the baseline itself fails — the suite guarantees it cannot.
pub fn baseline(
    runner: &mut SuiteRunner,
    w: &Workload,
    vms: &[VmKind],
    with_x86: bool,
) -> BaselineRuns {
    let by_vm = vms
        .iter()
        .map(|&vm| {
            let (m, r) = runner
                .measure(w, &OptProfile::baseline(), vm, with_x86, None)
                .unwrap_or_else(|e| panic!("baseline {} on {vm}: {e}", w.name));
            (vm, m, r)
        })
        .collect();
    BaselineRuns { by_vm }
}

/// Measure `profile` against an established baseline, producing an [`Impact`].
/// Returns `None` when the profile fails on this workload (reported and
/// skipped, like the paper's invalid autotuner candidates).
pub fn impact_vs_baseline(
    runner: &mut SuiteRunner,
    w: &Workload,
    profile: &OptProfile,
    vm: VmKind,
    base_m: &Measurement,
    base_r: &RunReport,
    with_x86: bool,
) -> Option<Impact> {
    match runner.measure(w, profile, vm, with_x86, Some(base_r)) {
        Ok((m, _)) => {
            let x86_gain = match (base_m.x86_ms, m.x86_ms) {
                (Some(b), Some(n)) => Some(gain(b, n)),
                _ => None,
            };
            Some(Impact {
                workload: w.name.to_string(),
                profile: profile.name.clone(),
                vm,
                exec_gain: gain(base_m.exec_ms, m.exec_ms),
                prove_gain: gain(base_m.prove_ms, m.prove_ms),
                cycles_gain: gain(base_m.cycles as f64, m.cycles as f64),
                instret_gain: gain(base_m.instret as f64, m.instret as f64),
                paging_gain: gain(
                    base_m.paging_cycles.max(1) as f64,
                    m.paging_cycles.max(1) as f64,
                ),
                x86_gain,
                measurement: m,
            })
        }
        Err(e) => {
            eprintln!("  [skip] {} / {} on {vm}: {e}", w.name, profile.name);
            None
        }
    }
}

/// Per-profile metric columns for one workload: the zkVM cost metrics and
/// performance numbers the correlation tables consume, one row per profile
/// that validated. Collected by [`metric_columns`] so Table 2 (bench and
/// report binary) share one collection path.
#[derive(Debug, Clone, Default)]
pub struct MetricColumns {
    /// Dynamic instruction count per profile.
    pub instret: Vec<f64>,
    /// Paging cycles per profile.
    pub paging: Vec<f64>,
    /// zkVM execution time (ms) per profile.
    pub exec_ms: Vec<f64>,
    /// Proving time (ms) per profile.
    pub prove_ms: Vec<f64>,
}

/// Measure `profiles` against an established baseline and collect the
/// correlation-table metric columns (failed profiles are skipped, like the
/// paper's invalid autotuner candidates).
pub fn metric_columns(
    runner: &mut SuiteRunner,
    w: &Workload,
    profiles: &[OptProfile],
    vm: VmKind,
    base_m: &Measurement,
    base_r: &RunReport,
) -> MetricColumns {
    let mut cols = MetricColumns::default();
    for p in profiles {
        if let Some(i) = impact_vs_baseline(runner, w, p, vm, base_m, base_r, false) {
            cols.instret.push(i.measurement.instret as f64);
            cols.paging.push(i.measurement.paging_cycles as f64);
            cols.exec_ms.push(i.measurement.exec_ms);
            cols.prove_ms.push(i.measurement.prove_ms);
        }
    }
    cols
}

/// Run a (workloads × profiles × vms) impact matrix through one batched
/// [`SuiteRunner`]: every {workload × profile} compiles once (baselines
/// included), and all executions go through the block-dispatch engine.
pub fn impact_matrix(
    workloads: &[&Workload],
    profiles: &[OptProfile],
    vms: &[VmKind],
    with_x86: bool,
) -> Vec<Impact> {
    let mut runner = SuiteRunner::new();
    let mut out = Vec::new();
    for w in workloads {
        let base = baseline(&mut runner, w, vms, with_x86);
        for (vm, bm, br) in &base.by_vm {
            for p in profiles {
                if let Some(i) = impact_vs_baseline(&mut runner, w, p, *vm, bm, br, with_x86) {
                    out.push(i);
                }
            }
        }
    }
    out
}

/// Mean of a selector over impacts matching (profile, vm).
pub fn mean_gain(
    impacts: &[Impact],
    profile: &str,
    vm: VmKind,
    select: impl Fn(&Impact) -> f64,
) -> f64 {
    let xs: Vec<f64> = impacts
        .iter()
        .filter(|i| i.profile == profile && i.vm == vm)
        .map(select)
        .collect();
    zkvmopt_stats::mean(&xs)
}

/// All standard-level profiles (Fig. 5 axis).
pub fn level_profiles() -> Vec<OptProfile> {
    OptLevel::ALL
        .iter()
        .map(|l| OptProfile::level(*l))
        .collect()
}

/// Single-pass profiles for a pass-name list.
pub fn pass_profiles(names: &[&'static str]) -> Vec<OptProfile> {
    names.iter().map(|n| OptProfile::single_pass(n)).collect()
}

/// Render a percent with sign.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Print a paper-style header line.
pub fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_workload_set_resolves() {
        let ws = bench_workloads();
        assert_eq!(ws.len(), 10);
    }

    #[test]
    fn impact_math_signs() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new();
        let base = baseline(&mut runner, w, &[VmKind::Sp1], false);
        let (vm, bm, br) = &base.by_vm[0];
        let o2 = OptProfile::level(OptLevel::O2);
        let i = impact_vs_baseline(&mut runner, w, &o2, *vm, bm, br, false).expect("runs");
        assert!(
            i.cycles_gain > 0.0,
            "-O2 must speed up loop-sum: {}",
            i.cycles_gain
        );
        assert!(i.instret_gain > 0.0);
    }
}
