//! Full-scale experiment regeneration: prints every table and figure of the
//! paper from the complete 58-program suite.
//!
//! Usage:
//!   report [--quick] [--fig3] [--fig4] [--fig5] [--table1] [--table2]
//!          [--table6] [--fig14] [--all]
//!
//! With `--quick` the pass axis shrinks to the paper's top-25 and the
//! workload set to a representative subset, keeping the run in minutes.
//! Without flags, `--all --quick` is assumed.

use zkvmopt_bench::{
    bench_workloads, header, impact_matrix, mean_gain, pass_profiles, pct, Impact,
};
use zkvmopt_core::{categorize, EffectCategory, OptLevel, OptProfile, SuiteRunner, KEY_PASSES};
use zkvmopt_stats::{kendall_tau, mean, pearson, summarize};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::Workload;

struct Options {
    quick: bool,
    sections: Vec<String>,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut sections = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quick" => quick = true,
            "--all" => sections.push("all".to_string()),
            s if s.starts_with("--") => sections.push(s[2..].to_string()),
            _ => {}
        }
    }
    if sections.is_empty() {
        quick = true;
        sections.push("all".to_string());
    }
    Options { quick, sections }
}

fn want(o: &Options, s: &str) -> bool {
    o.sections.iter().any(|x| x == s || x == "all")
}

fn workload_set(o: &Options) -> Vec<&'static Workload> {
    if o.quick {
        bench_workloads()
    } else {
        zkvmopt_workloads::all().iter().collect()
    }
}

fn pass_axis(o: &Options) -> Vec<&'static str> {
    if o.quick {
        KEY_PASSES.to_vec()
    } else {
        zkvmopt_core::studied_passes().to_vec()
    }
}

fn main() {
    let o = parse_args();
    println!("zkvm-opt experiment report (quick = {})", o.quick);

    let mut pass_impacts: Option<Vec<Impact>> = None;
    let ensure_pass_impacts = |o: &Options| -> Vec<Impact> {
        impact_matrix(
            &workload_set(o),
            &pass_profiles(&pass_axis(o)),
            &VmKind::BOTH,
            false,
        )
    };

    if want(&o, "fig3") || want(&o, "fig4") || want(&o, "table1") {
        pass_impacts = Some(ensure_pass_impacts(&o));
    }

    if want(&o, "fig3") {
        let impacts = pass_impacts.as_ref().expect("computed");
        for vm in VmKind::BOTH {
            header(&format!("Figure 3 ({vm}): mean gain per pass vs baseline"));
            let mut rows: Vec<(String, f64, f64, f64)> = pass_axis(&o)
                .iter()
                .map(|p| {
                    (
                        p.to_string(),
                        mean_gain(impacts, p, vm, |i| i.exec_gain),
                        mean_gain(impacts, p, vm, |i| i.prove_gain),
                        mean_gain(impacts, p, vm, |i| i.cycles_gain),
                    )
                })
                .collect();
            rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
            println!(
                "{:<26} {:>9} {:>9} {:>9}",
                "pass", "exec", "prove", "cycles"
            );
            for (p, e, pr, cy) in rows.iter().take(25) {
                println!("{p:<26} {:>9} {:>9} {:>9}", pct(*e), pct(*pr), pct(*cy));
            }
        }
    }

    if want(&o, "fig4") {
        let impacts = pass_impacts.as_ref().expect("computed");
        for vm in VmKind::BOTH {
            header(&format!(
                "Figure 4 ({vm}): effect categories per pass (exec)"
            ));
            println!(
                "{:<26} {:>6} {:>7} {:>6} {:>6}",
                "pass", "<=-5%", "-5..-2", "2..5", ">=5%"
            );
            for p in pass_axis(&o) {
                let mut c = [0usize; 4];
                for i in impacts.iter().filter(|i| i.profile == p && i.vm == vm) {
                    match categorize(i.exec_gain) {
                        EffectCategory::SevereLoss => c[0] += 1,
                        EffectCategory::ModerateLoss => c[1] += 1,
                        EffectCategory::ModerateGain => c[2] += 1,
                        EffectCategory::SevereGain => c[3] += 1,
                        EffectCategory::Neutral => {}
                    }
                }
                if c.iter().sum::<usize>() > 0 {
                    println!("{p:<26} {:>6} {:>7} {:>6} {:>6}", c[0], c[1], c[2], c[3]);
                }
            }
        }
    }

    if want(&o, "table1") {
        let impacts = pass_impacts.as_ref().expect("computed");
        header("Table 1: gain/loss instance counts (>2% / <-2%)");
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            "zkVM", "exec gain", "exec loss", "prove gain", "prove loss"
        );
        for vm in VmKind::BOTH {
            let count = |sel: &dyn Fn(&Impact) -> f64, pos: bool| {
                impacts
                    .iter()
                    .filter(|i| i.vm == vm)
                    .filter(|i| if pos { sel(i) > 2.0 } else { sel(i) < -2.0 })
                    .count()
            };
            println!(
                "{:<10} {:>12} {:>12} {:>12} {:>12}",
                vm.name(),
                count(&|i| i.exec_gain, true),
                count(&|i| i.exec_gain, false),
                count(&|i| i.prove_gain, true),
                count(&|i| i.prove_gain, false)
            );
        }
    }

    if want(&o, "fig5") {
        let levels: Vec<OptProfile> = OptLevel::ALL
            .iter()
            .map(|l| OptProfile::level(*l))
            .collect();
        let impacts = impact_matrix(&workload_set(&o), &levels, &VmKind::BOTH, false);
        header("Figure 5: -Ox levels vs baseline");
        println!(
            "{:<6} {:>14} {:>14} {:>14} {:>14}",
            "level", "R0 exec", "R0 prove", "SP1 exec", "SP1 prove"
        );
        for l in OptLevel::ALL {
            println!(
                "{:<6} {:>14} {:>14} {:>14} {:>14}",
                l.flag(),
                pct(mean_gain(&impacts, l.flag(), VmKind::RiscZero, |i| i.exec_gain)),
                pct(mean_gain(&impacts, l.flag(), VmKind::RiscZero, |i| i.prove_gain)),
                pct(mean_gain(&impacts, l.flag(), VmKind::Sp1, |i| i.exec_gain)),
                pct(mean_gain(&impacts, l.flag(), VmKind::Sp1, |i| i.prove_gain)),
            );
        }
    }

    if want(&o, "table2") {
        header("Table 2: Kendall tau / Pearson (cost metric vs performance)");
        let ws = workload_set(&o);
        let mut runner = SuiteRunner::new();
        for vm in VmKind::BOTH {
            let mut tau_ie = Vec::new();
            let mut r_ie = Vec::new();
            let mut tau_pe = Vec::new();
            let mut r_pe = Vec::new();
            for w in &ws {
                let base = zkvmopt_bench::baseline(&mut runner, w, &[vm], false);
                let (v, bm, br) = &base.by_vm[0];
                let cols = zkvmopt_bench::metric_columns(
                    &mut runner,
                    w,
                    &pass_profiles(KEY_PASSES),
                    *v,
                    bm,
                    br,
                );
                tau_ie.push(kendall_tau(&cols.instret, &cols.exec_ms));
                r_ie.push(pearson(&cols.instret, &cols.exec_ms));
                if vm == VmKind::RiscZero {
                    tau_pe.push(kendall_tau(&cols.paging, &cols.exec_ms));
                    r_pe.push(pearson(&cols.paging, &cols.exec_ms));
                }
            }
            println!(
                "{:<10} instr->exec   tau {:>5.2}  pearson {:>5.2}",
                vm.name(),
                mean(&tau_ie),
                mean(&r_ie)
            );
            if vm == VmKind::RiscZero {
                println!(
                    "{:<10} paging->exec  tau {:>5.2}  pearson {:>5.2}",
                    vm.name(),
                    mean(&tau_pe),
                    mean(&r_pe)
                );
            }
        }
    }

    if want(&o, "table6") {
        header("Table 6: baseline statistics (modelled seconds)");
        for vm in VmKind::BOTH {
            let mut exec = Vec::new();
            let mut prove = Vec::new();
            for w in zkvmopt_workloads::all() {
                let r = zkvmopt_core::Pipeline::new(OptProfile::baseline())
                    .run_workload(w, vm)
                    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
                exec.push(r.exec_ms / 1e3);
                prove.push(r.prove_ms / 1e3);
            }
            let e = summarize(&exec);
            let p = summarize(&prove);
            println!(
                "{:<10} exec : min {:.3} max {:.3} mean {:.3} median {:.3}",
                vm.name(),
                e.min,
                e.max,
                e.mean,
                e.median
            );
            println!(
                "{:<10} prove: min {:.3} max {:.3} mean {:.3} median {:.3}",
                vm.name(),
                p.min,
                p.max,
                p.mean,
                p.median
            );
        }
    }

    if want(&o, "fig14") {
        header("Figure 14: zk-aware -O3 vs stock -O3, full suite");
        let ws = workload_set(&o);
        let mut runner = SuiteRunner::new();
        let mut r0_gains = Vec::new();
        let mut sp1_gains = Vec::new();
        for w in &ws {
            for vm in VmKind::BOTH {
                let Ok((o3, o3r)) =
                    runner.measure(w, &OptProfile::level(OptLevel::O3), vm, false, None)
                else {
                    continue;
                };
                let Ok((zk, _)) = runner.measure(w, &OptProfile::zk_o3(), vm, false, Some(&o3r))
                else {
                    continue;
                };
                let g = zkvmopt_core::gain(o3.exec_ms, zk.exec_ms);
                if g.abs() > 2.0 {
                    println!("{:<26} {:<10} {:>8}", w.name, vm.name(), pct(g));
                }
                match vm {
                    VmKind::RiscZero => r0_gains.push(g),
                    VmKind::Sp1 => sp1_gains.push(g),
                }
            }
        }
        println!(
            "-> average: RISC Zero {} | SP1 {}",
            pct(mean(&r0_gains)),
            pct(mean(&sp1_gains))
        );
    }

    println!("\nreport complete.");
}
