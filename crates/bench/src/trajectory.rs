//! Bench-trajectory recording: a tiny machine-readable side channel for CI.
//!
//! The CI `bench-trajectory` job runs the throughput benches in smoke mode
//! with `ZKVMOPT_BENCH_JSON=BENCH_<sha>.json`; each bench calls
//! [`record`] with its headline metrics (geomean speedups, eval counts,
//! cache hit rates) and the metrics from every bench in the job accumulate
//! into one JSON document, uploaded as a workflow artifact. Diffing the
//! artifacts of two commits gives the performance trajectory of the repo
//! without re-running anything.
//!
//! The document is deliberately minimal — the workspace's `serde` is an
//! offline marker-only shim, so the format is a hand-rolled subset of JSON
//! (one nesting level, string keys, finite `f64` values, sorted keys):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "benches": {
//!     "engine_throughput": {
//!       "geomean_speedup": 11.32,
//!       "workloads": 58.0
//!     }
//!   }
//! }
//! ```
//!
//! [`record`] merges: it re-reads the target file, replaces this bench's
//! entry, keeps everything else, and rewrites atomically. An unparseable
//! existing file is reported and replaced, never panicked over.

use std::collections::BTreeMap;
use std::path::Path;

/// Document schema version.
pub const SCHEMA: u64 = 1;

/// Whether the benches should run in reduced "smoke" scale
/// (`ZKVMOPT_BENCH_SMOKE=1`) — CI sets this; local full runs don't.
pub fn smoke() -> bool {
    std::env::var("ZKVMOPT_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// One bench's flat metric map.
pub type Metrics = BTreeMap<String, f64>;

/// A whole trajectory document: bench name → metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// Per-bench metrics, rendered in sorted order.
    pub benches: BTreeMap<String, Metrics>,
}

impl Trajectory {
    /// Render as canonical JSON (sorted keys, two-space indent, `\n` ends).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"benches\": {");
        let mut first_bench = true;
        for (bench, metrics) in &self.benches {
            if !first_bench {
                out.push(',');
            }
            first_bench = false;
            out.push_str(&format!("\n    {}: {{", quote(bench)));
            let mut first_metric = true;
            for (k, v) in metrics {
                if !first_metric {
                    out.push(',');
                }
                first_metric = false;
                out.push_str(&format!("\n      {}: {}", quote(k), number(*v)));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a document previously produced by [`Trajectory::to_json`].
    /// `None` on anything outside the subset (foreign tools, corruption).
    pub fn from_json(text: &str) -> Option<Trajectory> {
        let mut p = Parser {
            s: text.as_bytes(),
            i: 0,
        };
        p.expect(b'{')?;
        let mut t = Trajectory::default();
        let mut seen_schema = false;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    if p.number()? != SCHEMA as f64 {
                        return None;
                    }
                    seen_schema = true;
                }
                "benches" => {
                    p.expect(b'{')?;
                    if !p.try_expect(b'}') {
                        loop {
                            let bench = p.string()?;
                            p.expect(b':')?;
                            p.expect(b'{')?;
                            let mut m = Metrics::new();
                            if !p.try_expect(b'}') {
                                loop {
                                    let k = p.string()?;
                                    p.expect(b':')?;
                                    m.insert(k, p.number()?);
                                    if !p.try_expect(b',') {
                                        break;
                                    }
                                }
                                p.expect(b'}')?;
                            }
                            t.benches.insert(bench, m);
                            if !p.try_expect(b',') {
                                break;
                            }
                        }
                        p.expect(b'}')?;
                    }
                }
                _ => return None,
            }
            if !p.try_expect(b',') {
                break;
            }
        }
        p.expect(b'}')?;
        p.skip_ws();
        if p.i != p.s.len() || !seen_schema {
            return None;
        }
        Some(t)
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite `f64` as JSON (integers without a fraction; non-finite
/// values clamp to 0, JSON has no NaN/Inf).
fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn try_expect(&mut self, b: u8) -> bool {
        let save = self.i;
        if self.expect(b).is_some() {
            true
        } else {
            self.i = save;
            false
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let &b = self.s.get(self.i)?;
            self.i += 1;
            match b {
                b'"' => return Some(out),
                b'\\' => {
                    let &e = self.s.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                b => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let start = self.i;
        while self
            .s
            .get(self.i)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
    }
}

/// Merge `metrics` for bench `name` into the trajectory file named by the
/// `ZKVMOPT_BENCH_JSON` env var (no-op when unset, so plain `cargo bench`
/// stays side-effect free). Unparseable existing files are reported on
/// stderr and replaced.
pub fn record(name: &str, metrics: &[(&str, f64)]) {
    let Ok(path) = std::env::var("ZKVMOPT_BENCH_JSON") else {
        return;
    };
    record_at(Path::new(&path), name, metrics);
}

/// [`record`] against an explicit path (testable core).
pub fn record_at(path: &Path, name: &str, metrics: &[(&str, f64)]) {
    let mut t = match std::fs::read_to_string(path) {
        Ok(text) => Trajectory::from_json(&text).unwrap_or_else(|| {
            eprintln!(
                "bench: replacing unparseable trajectory file {}",
                path.display()
            );
            Trajectory::default()
        }),
        Err(_) => Trajectory::default(),
    };
    t.benches.insert(
        name.to_string(),
        metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    );
    let tmp = path.with_extension("json.tmp");
    let write = std::fs::write(&tmp, t.to_json()).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = write {
        eprintln!("bench: cannot write trajectory {}: {e}", path.display());
    } else {
        println!("trajectory: recorded {name} -> {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_the_canonical_document() {
        let mut t = Trajectory::default();
        t.benches.insert(
            "engine_throughput".into(),
            [
                ("geomean_speedup".into(), 11.32),
                ("workloads".into(), 58.0),
            ]
            .into_iter()
            .collect(),
        );
        t.benches.insert("empty_bench".into(), Metrics::new());
        let json = t.to_json();
        assert!(json.starts_with("{\n  \"schema\": 1,\n  \"benches\": {"));
        assert!(json.contains("\"geomean_speedup\": 11.32"));
        assert!(json.contains("\"workloads\": 58"), "{json}");
        assert_eq!(Trajectory::from_json(&json), Some(t));
        // Empty documents round-trip too.
        let empty = Trajectory::default();
        assert_eq!(Trajectory::from_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn rejects_foreign_or_corrupt_documents() {
        for bad in [
            "",
            "{}",
            "{\"schema\": 2, \"benches\": {}}",
            "{\"schema\": 1, \"benches\": {}} trailing",
            "{\"schema\": 1, \"benches\": {\"b\": {\"k\": \"string\"}}}",
            "{\"schema\": 1, \"unknown\": {}}",
            "not json at all",
        ] {
            assert_eq!(Trajectory::from_json(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn record_at_merges_across_benches_and_replaces_corruption() {
        let dir = std::env::temp_dir().join(format!("zkvmopt-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        record_at(&path, "engine", &[("geomean_speedup", 2.5)]);
        record_at(
            &path,
            "tuner",
            &[("speedup", 3.0), ("cache_hit_rate", 0.75)],
        );
        // Re-recording a bench replaces only its own entry.
        record_at(&path, "engine", &[("geomean_speedup", 2.75)]);

        let t = Trajectory::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(t.benches.len(), 2);
        assert_eq!(t.benches["engine"]["geomean_speedup"], 2.75);
        assert_eq!(t.benches["tuner"]["cache_hit_rate"], 0.75);

        // A corrupt file is replaced, not fatal.
        std::fs::write(&path, "{{{{ nope").unwrap();
        record_at(&path, "fresh", &[("v", 1.0)]);
        let t = Trajectory::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(t.benches.len(), 1);
        assert_eq!(t.benches["fresh"]["v"], 1.0);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
