//! Figure 10: licm's paging/instruction blow-up grows with loop nesting depth
//! (paper: depth 4 shows +46% paging and +155% instructions vs +7%/+25% at
//! depth 2).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{baseline, header, impact_vs_baseline};
use zkvmopt_core::{OptProfile, SuiteRunner};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::{Suite, Workload};

fn nest_src(depth: u32) -> String {
    // for k { for j { ... v[idx] = 42; } }: stores against a flat array.
    let n = match depth {
        1 => 20000,
        2 => 160,
        3 => 28,
        _ => 12,
    };
    let mut body = String::from("idx = (idx * 13 + 7) % 16384; V[idx] = 42; acc += idx;");
    let vars = ["k", "j", "i", "l"];
    for d in (0..depth).rev() {
        let v = vars[d as usize];
        body = format!("for (let mut {v}: i32 = 0; {v} < {n}; {v} += 1) {{ {body} }}");
    }
    format!(
        "static V: [i32; 16384];
         fn main() -> i32 {{
           let mut idx: i32 = read_input(0);
           let mut acc: i32 = 0;
           {body}
           commit(V[idx % 16384]);
           commit(acc);
           return V[0];
         }}"
    )
}

fn report() {
    let mut runner = SuiteRunner::new();
    header("Figure 10: licm impact vs loop nesting depth (RISC Zero)");
    println!(
        "{:<7} {:>14} {:>14}",
        "depth", "instret delta", "paging delta"
    );
    let mut deltas = Vec::new();
    for depth in [1u32, 2, 4] {
        let w = Workload {
            name: "nest",
            suite: Suite::Other,
            source: nest_src(depth),
            inputs: vec![3],
            uses_precompile: false,
        };
        let base = baseline(&mut runner, &w, &[VmKind::RiscZero], false);
        let (vm, bm, br) = &base.by_vm[0];
        let i = impact_vs_baseline(
            &mut runner,
            &w,
            &OptProfile::single_pass("licm"),
            *vm,
            bm,
            br,
            false,
        )
        .expect("licm runs");
        // Negative gain = increase in the metric.
        println!(
            "{depth:<7} {:>13.1}% {:>13.1}%",
            -i.instret_gain, -i.paging_gain
        );
        deltas.push((-i.instret_gain, -i.paging_gain));
    }
    let _ = deltas;
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig10/licm_depth4", |b| {
        let w = Workload {
            name: "nest4",
            suite: Suite::Other,
            source: nest_src(4),
            inputs: vec![3],
            uses_precompile: false,
        };
        b.iter(|| {
            zkvmopt_core::measure(
                &w,
                &OptProfile::single_pass("licm"),
                VmKind::RiscZero,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
