//! Figure 4: per-pass counts of severe/moderate gains and losses.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{bench_workloads, header, impact_matrix, pass_profiles};
use zkvmopt_core::{categorize, EffectCategory, KEY_PASSES};
use zkvmopt_vm::VmKind;

fn report() {
    let workloads = bench_workloads();
    let profiles = pass_profiles(KEY_PASSES);
    let impacts = impact_matrix(&workloads, &profiles, &VmKind::BOTH, false);
    for vm in VmKind::BOTH {
        header(&format!(
            "Figure 4 ({vm}): effect categories per pass (exec time)"
        ));
        println!(
            "{:<22} {:>6} {:>6} {:>6} {:>6}",
            "pass", "<=-5%", "-5..-2", "2..5", ">=5%"
        );
        for p in KEY_PASSES {
            let mut c = [0usize; 4];
            for i in impacts.iter().filter(|i| i.profile == *p && i.vm == vm) {
                match categorize(i.exec_gain) {
                    EffectCategory::SevereLoss => c[0] += 1,
                    EffectCategory::ModerateLoss => c[1] += 1,
                    EffectCategory::ModerateGain => c[2] += 1,
                    EffectCategory::SevereGain => c[3] += 1,
                    EffectCategory::Neutral => {}
                }
            }
            println!("{p:<22} {:>6} {:>6} {:>6} {:>6}", c[0], c[1], c[2], c[3]);
        }
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig04/categorize", |b| {
        b.iter(|| {
            (0..1000)
                .map(|i| categorize((i as f64 - 500.0) / 40.0))
                .filter(|c| *c == EffectCategory::SevereGain)
                .count()
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
