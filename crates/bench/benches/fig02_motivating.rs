//! Figure 2 (motivating examples): strength reduction (2a) and loop fission
//! (2b) help x86 but hurt zkVMs.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, OptProfile, Pipeline};
use zkvmopt_vm::VmKind;

const DIV8: &str = "
    fn main() -> i32 {
      let mut s: i32 = 0;
      for (let mut i: i32 = 1; i < 4000; i += 1) { s += (i + read_input(0)) / 8; }
      commit(s); return s;
    }";

const FUSED: &str = "
    const N: i32 = 8192;
    static A: [i32; 8192]; static B: [i32; 8192];
    fn main() -> i32 {
      for (let mut i: i32 = 0; i < N; i += 1) { A[i] = 1; B[i] = 2; }
      commit(A[17] + B[99]); return A[0];
    }";

const FISSIONED: &str = "
    const N: i32 = 8192;
    static A: [i32; 8192]; static B: [i32; 8192];
    fn main() -> i32 {
      for (let mut i: i32 = 0; i < N; i += 1) { A[i] = 1; }
      for (let mut i: i32 = 0; i < N; i += 1) { B[i] = 2; }
      commit(A[17] + B[99]); return A[0];
    }";

fn run_case(src: &str, profile: OptProfile) -> (f64, f64, f64) {
    let p = Pipeline::new(profile).with_x86();
    let r0 = p.run_source(src, &[3], VmKind::RiscZero).expect("runs");
    (
        r0.x86.as_ref().expect("x86 measured").time_ms,
        r0.exec_ms,
        r0.prove_ms,
    )
}

fn report() {
    header("Figure 2a: div-by-8 — CPU-tuned isel (shift seq) vs zk isel (div)");
    // Same IR; the backend cost model decides (paper: 'optimized' form is
    // 3.5x faster on x86 but 40% slower to prove on RISC Zero).
    let mut cpu_prof = OptProfile::level(zkvmopt_core::OptLevel::O1);
    cpu_prof.name = "cpu-isel".into();
    let mut zk_prof = OptProfile::level(zkvmopt_core::OptLevel::O1);
    zk_prof.backend = zkvmopt_riscv::TargetCostModel::zk();
    zk_prof.pass_config.strength_reduce_div = false;
    zk_prof.name = "zk-isel".into();
    let (x_cpu, e_cpu, p_cpu) = run_case(DIV8, cpu_prof);
    let (x_zk, e_zk, p_zk) = run_case(DIV8, zk_prof);
    println!(
        "x86 native : shifts {:.4} ms vs div {:.4} ms -> shifts {} faster",
        x_cpu,
        x_zk,
        pct(gain(x_zk, x_cpu))
    );
    println!(
        "zkVM exec  : shifts {:.4} ms vs div {:.4} ms -> div {} faster",
        e_cpu,
        e_zk,
        pct(gain(e_cpu, e_zk))
    );
    println!(
        "zkVM prove : shifts {:.4} ms vs div {:.4} ms -> div {} faster",
        p_cpu,
        p_zk,
        pct(gain(p_cpu, p_zk))
    );
    assert!(x_cpu < x_zk, "shifts must win on x86");
    assert!(e_zk < e_cpu, "div must win on the zkVM");

    header("Figure 2b: loop fission — helps x86 locality, duplicates zkVM loop control");
    let prof = || OptProfile::level(zkvmopt_core::OptLevel::O1);
    let (x_f, e_f, p_f) = run_case(FUSED, prof());
    let (x_s, e_s, p_s) = run_case(FISSIONED, prof());
    println!(
        "x86 native : fused {:.4} ms vs fissioned {:.4} ms ({} for fission)",
        x_f,
        x_s,
        pct(gain(x_f, x_s))
    );
    println!(
        "zkVM exec  : fused {:.4} ms vs fissioned {:.4} ms ({} for fission)",
        e_f,
        e_s,
        pct(gain(e_f, e_s))
    );
    println!(
        "zkVM prove : fused {:.4} ms vs fissioned {:.4} ms ({} for fission)",
        p_f,
        p_s,
        pct(gain(p_f, p_s))
    );
    assert!(e_s >= e_f, "fission must not help zkVM execution");
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig02/div8_zk_pipeline", |b| {
        b.iter(|| {
            Pipeline::new(OptProfile::level(zkvmopt_core::OptLevel::O1))
                .run_source(DIV8, &[3], VmKind::RiscZero)
                .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
