//! Segmented proving throughput: execute → segment → prove, in proofs/sec.
//!
//! Before timing anything, two bit-identity gates run over the whole suite
//! (reduced set in CI smoke mode) × both VM kinds:
//!
//! 1. **Segment accounting** — the per-segment records of a segmented run
//!    must sum exactly to the run's `ExecutionReport` totals (instret,
//!    user/paging cycles, page-ins/outs, mix), and the segmented run's
//!    report must equal a plain `Engine::run` under the same profile.
//! 2. **Parallel proving** — proving segments across threads must produce
//!    the same per-segment Merkle commitments, aggregation root, and total
//!    modelled cost as sequential proving, for every backend.
//!
//! The report then measures the multi-core advantage of the parallel
//! per-segment fan-out (advisory below 4 cores, like the lockstep bench)
//! and end-to-end proofs/sec per backend; Criterion measures the full
//! pipeline. Segment limits are scaled down from the production profiles so
//! every workload splits into several segments — this is the "heavy
//! traffic" shape: a stream of programs, each a bag of parallel segments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zkvmopt_core::suite::CompiledWorkload;
use zkvmopt_core::{OptLevel, OptProfile, SuiteRunner};
use zkvmopt_prover::{check_segment_accounting, prove_segmented, standard_backends};
use zkvmopt_vm::{Engine, ExecConfig, ExecutionReport, SegmentRecord, VmKind, VmProfile};
use zkvmopt_workloads::Workload;

/// Segment limit divisor vs the production profiles: small segments turn
/// every suite program into a multi-segment proving job.
const SEGMENT_SCALE: u64 = 64;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The bench's VM profile: production cost model, scaled-down segments.
fn profile(kind: VmKind) -> VmProfile {
    let mut p = VmProfile::for_kind(kind);
    p.segment_cycles = (p.segment_cycles / SEGMENT_SCALE).max(1);
    p
}

fn compile_suite() -> Vec<(&'static Workload, CompiledWorkload)> {
    let mut runner = SuiteRunner::new();
    let o2 = OptProfile::level(OptLevel::O2);
    let ws: Vec<&'static Workload> = if zkvmopt_bench::smoke() {
        zkvmopt_bench::bench_workloads()
    } else {
        zkvmopt_workloads::all().iter().collect()
    };
    ws.into_iter()
        .map(|w| {
            let cw = runner
                .compile(w, &o2)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (w, cw.clone())
        })
        .collect()
}

/// One segmented execution: the proving pipeline's input.
struct SegmentedRun {
    workload: &'static str,
    kind: VmKind,
    report: ExecutionReport,
    records: Vec<SegmentRecord>,
}

/// Execute every workload × both VM kinds with per-segment accounting,
/// gating record/report bit-identity (and segmented-vs-plain dispatch
/// identity) along the way.
fn execute_suite(suite: &[(&'static Workload, CompiledWorkload)]) -> Vec<SegmentedRun> {
    let mut runs = Vec::with_capacity(suite.len() * 2);
    for (w, cw) in suite {
        for kind in VmKind::BOTH {
            let config = ExecConfig {
                inputs: w.inputs.clone(),
                ..ExecConfig::default()
            };
            let (report, records) = Engine::new(&cw.decoded, profile(kind), config.clone())
                .run_segmented()
                .unwrap_or_else(|e| panic!("{} ({kind}): {e}", w.name));
            check_segment_accounting(&report, &records)
                .unwrap_or_else(|e| panic!("{} ({kind}): {e}", w.name));
            let plain = Engine::new(&cw.decoded, profile(kind), config)
                .run()
                .unwrap_or_else(|e| panic!("{} ({kind}) plain: {e}", w.name));
            let ctx = format!("{} ({kind})", w.name);
            assert_eq!(report.instret, plain.instret, "{ctx}: instret");
            assert_eq!(report.total_cycles, plain.total_cycles, "{ctx}: cycles");
            assert_eq!(report.paging_cycles, plain.paging_cycles, "{ctx}: paging");
            assert_eq!(report.segments, plain.segments, "{ctx}: segments");
            assert_eq!(report.journal, plain.journal, "{ctx}: journal");
            runs.push(SegmentedRun {
                workload: w.name,
                kind,
                report,
                records,
            });
        }
    }
    runs
}

/// Prove every run with every backend at the given thread count, returning
/// the summed modelled cost (the timed kernel).
fn prove_all(runs: &[SegmentedRun], threads: usize) -> f64 {
    let mut total = 0.0;
    for run in runs {
        for backend in standard_backends() {
            total += prove_segmented(backend, &run.report, &run.records, threads)
                .unwrap_or_else(|e| panic!("{} ({}): {e}", run.workload, run.kind))
                .total_cost_ms;
        }
    }
    total
}

fn report(runs: &[SegmentedRun]) {
    zkvmopt_bench::header("Segmented proving: execute -> segment -> prove (-O2 suite)");

    // Parallel-vs-sequential identity gate: roots, per-segment proofs, and
    // modelled totals must not depend on the thread count.
    for run in runs {
        for backend in standard_backends() {
            let seq = prove_segmented(backend, &run.report, &run.records, 1)
                .unwrap_or_else(|e| panic!("{}: {e}", run.workload));
            let par = prove_segmented(backend, &run.report, &run.records, 0)
                .unwrap_or_else(|e| panic!("{}: {e}", run.workload));
            let ctx = format!("{} ({}, {})", run.workload, run.kind, backend.name());
            assert_eq!(par.root, seq.root, "{ctx}: root");
            assert_eq!(par.segments, seq.segments, "{ctx}: segments");
            assert!(
                par.total_cost_ms == seq.total_cost_ms,
                "{ctx}: cost {} != {}",
                par.total_cost_ms,
                seq.total_cost_ms
            );
        }
    }
    let nsegments: u64 = runs.iter().map(|r| r.report.segments).sum();
    println!(
        "bit-identity: {} segmented runs ({nsegments} segments) x {} backends OK",
        runs.len(),
        standard_backends().len()
    );

    // Wall-clock: the whole proving wave, sequential vs all cores.
    let time = |f: &dyn Fn() -> f64| -> f64 {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    let seq_ms = time(&|| prove_all(runs, 1));
    let par_ms = time(&|| prove_all(runs, 0));
    let speedup = seq_ms / par_ms;
    let nproofs = (runs.len() * standard_backends().len()) as f64;
    let proofs_per_sec = nproofs / (par_ms / 1e3);
    let segments_per_program = nsegments as f64 / runs.len() as f64;
    // Geomean over per-run parallel proving rates (risc0 backend), the
    // headline throughput metric.
    let rates: Vec<f64> = runs
        .iter()
        .map(|run| {
            let backend = standard_backends()[0];
            let ms = time(&|| {
                prove_segmented(backend, &run.report, &run.records, 0)
                    .expect("gated above")
                    .total_cost_ms
            });
            1e3 / ms.max(1e-6)
        })
        .collect();
    let rate_geomean = geomean(&rates);
    println!(
        "proving wave: {nproofs:.0} proofs, seq {seq_ms:.2} ms, parallel {par_ms:.2} ms \
         ({speedup:.2}x), {proofs_per_sec:.0} proofs/sec"
    );
    println!(
        "segments/program: {segments_per_program:.1}; per-run proof rate geomean: \
         {rate_geomean:.0}/sec"
    );
    zkvmopt_bench::trajectory::record(
        "prover_throughput",
        &[
            ("proofs_per_sec", proofs_per_sec),
            ("proof_rate_geomean", rate_geomean),
            ("segments_per_program", segments_per_program),
            ("parallel_speedup", speedup),
            ("runs", runs.len() as f64),
        ],
    );
    // Advisory below 4 cores (and in CI), hard gate otherwise: per-segment
    // proving is embarrassingly parallel, so multi-core proving must not be
    // slower than sequential once real cores are available.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if std::env::var("ZKVMOPT_SPEEDUP_ADVISORY").is_ok_and(|v| v == "1") || cores < 4 {
        if speedup < 1.0 {
            eprintln!(
                "ADVISORY: parallel proving {speedup:.2}x below the 1.0x bar ({cores} cores)"
            );
        }
    } else {
        assert!(
            speedup >= 1.0,
            "parallel segment proving must beat sequential on {cores} cores (got {speedup:.2}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let suite = compile_suite();
    let runs = execute_suite(&suite);
    report(&runs);
    c.bench_function("prover/segment-prove-parallel", |b| {
        b.iter(|| prove_all(&runs, 0))
    });
    c.bench_function("prover/segment-prove-sequential", |b| {
        b.iter(|| prove_all(&runs, 1))
    });
    c.bench_function("prover/execute-segment-prove", |b| {
        b.iter(|| {
            let runs = execute_suite(&suite);
            prove_all(&runs, 0)
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
