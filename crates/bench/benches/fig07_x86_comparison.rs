//! Figure 7: average impact of each optimization on zkVM vs x86 performance
//! (paper: same direction on both, far larger magnitude on x86).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, impact_matrix, mean_gain, pct};
use zkvmopt_core::{OptLevel, OptProfile};
use zkvmopt_vm::VmKind;

const PASSES: &[&str] = &[
    "inline",
    "always-inline",
    "gvn",
    "jump-threading",
    "instcombine",
    "simplifycfg",
    "sroa",
    "ipsccp",
    "reg2mem",
    "loop-extract",
    "licm",
];

fn profiles() -> Vec<OptProfile> {
    let mut v: Vec<OptProfile> = [OptLevel::O3, OptLevel::O2, OptLevel::O1]
        .iter()
        .map(|l| OptProfile::level(*l))
        .collect();
    v.extend(PASSES.iter().map(|p| OptProfile::single_pass(p)));
    v
}

fn report() {
    let workloads: Vec<_> = [
        "polybench-gemm",
        "polybench-floyd-warshall",
        "npb-mg",
        "loop-sum",
        "fibonacci",
        "tailcall",
    ]
    .iter()
    .map(|n| zkvmopt_workloads::by_name(n).expect("exists"))
    .collect();
    let impacts = impact_matrix(&workloads, &profiles(), &[VmKind::RiscZero], true);
    header("Figure 7: average gain per optimization — zkVM exec / prove / x86");
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "profile", "zkVM exec", "prove", "x86"
    );
    let mut x86_bigger = 0;
    let mut total = 0;
    for p in profiles() {
        let e = mean_gain(&impacts, &p.name, VmKind::RiscZero, |i| i.exec_gain);
        let pr = mean_gain(&impacts, &p.name, VmKind::RiscZero, |i| i.prove_gain);
        let x = mean_gain(&impacts, &p.name, VmKind::RiscZero, |i| {
            i.x86_gain.unwrap_or(0.0)
        });
        println!(
            "{:<16} {:>10} {:>10} {:>10}",
            p.name,
            pct(e),
            pct(pr),
            pct(x)
        );
        if e > 2.0 || x > 2.0 {
            total += 1;
            if x > e {
                x86_bigger += 1;
            }
        }
    }
    println!("-> x86 gain exceeds zkVM gain on {x86_bigger}/{total} impactful profiles");
    assert!(
        x86_bigger * 2 >= total,
        "the x86 magnitude advantage should hold for most profiles"
    );
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("fibonacci").expect("exists");
    c.bench_function("fig07/x86_model_run", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &OptProfile::level(OptLevel::O2),
                VmKind::RiscZero,
                true,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
