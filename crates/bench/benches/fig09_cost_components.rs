//! Figure 9: the cost components behind representative passes — performance
//! gain alongside total cycles, executed instructions, and paging cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{baseline, header, impact_vs_baseline, pct};
use zkvmopt_core::{OptLevel, OptProfile, SuiteRunner};
use zkvmopt_vm::VmKind;

fn report() {
    let mut runner = SuiteRunner::new();
    let cases: &[(&str, &str)] = &[
        ("inline", "polybench-floyd-warshall"),
        ("inline", "tailcall"),
        ("always-inline", "factorial"),
        ("loop-extract", "polybench-trmm"),
        ("licm", "npb-lu"),
        ("licm", "polybench-gemm"),
    ];
    header("Figure 9 (RISC Zero): pass impact vs cost components");
    println!(
        "{:<16} {:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "pass", "workload", "exec", "prove", "cycles", "instret", "paging"
    );
    for (pass, wname) in cases {
        let w = zkvmopt_workloads::by_name(wname).expect("exists");
        let base = baseline(&mut runner, w, &[VmKind::RiscZero], false);
        let (vm, bm, br) = &base.by_vm[0];
        let profile = OptProfile::single_pass(pass);
        if let Some(i) = impact_vs_baseline(&mut runner, w, &profile, *vm, bm, br, false) {
            println!(
                "{pass:<16} {wname:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
                pct(i.exec_gain),
                pct(i.prove_gain),
                pct(i.cycles_gain),
                pct(i.instret_gain),
                pct(i.paging_gain)
            );
        }
    }
    // -O3 and -O0 for completeness, matching the figure.
    for level in [OptLevel::O3, OptLevel::O0] {
        let w = zkvmopt_workloads::by_name("loop-sum").expect("exists");
        let base = baseline(&mut runner, w, &[VmKind::RiscZero], false);
        let (vm, bm, br) = &base.by_vm[0];
        if let Some(i) = impact_vs_baseline(
            &mut runner,
            w,
            &OptProfile::level(level),
            *vm,
            bm,
            br,
            false,
        ) {
            println!(
                "{:<16} {:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
                level.flag(),
                "loop-sum",
                pct(i.exec_gain),
                pct(i.prove_gain),
                pct(i.cycles_gain),
                pct(i.instret_gain),
                pct(i.paging_gain)
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("npb-lu").expect("exists");
    c.bench_function("fig09/licm_npb_lu", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &zkvmopt_core::OptProfile::single_pass("licm"),
                VmKind::RiscZero,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
