//! Engine throughput: the pre-decoded block-dispatch engine vs the original
//! decode-per-step interpreter, executing the full 58-program suite at -O2.
//!
//! Before timing anything, every workload is executed on **both** VM kinds
//! through both executors and all cost metrics are asserted identical — the
//! speedup is only meaningful because the engine is bit-exact. The report
//! prints per-workload speedups and the geomean (the acceptance bar is ≥1.5×
//! overall **and** ≥1.5× on the memory-op-bearing subset, which is what the
//! v3 residency pre-probe targets); Criterion then measures the two
//! full-suite sweeps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zkvmopt_core::suite::CompiledWorkload;
use zkvmopt_core::{OptLevel, OptProfile, SuiteRunner};
use zkvmopt_vm::{run_decoded, run_program_reference, VmKind};
use zkvmopt_workloads::Workload;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Compile + pre-decode the whole suite at -O2 once. CI smoke mode
/// (`ZKVMOPT_BENCH_SMOKE=1`) uses the reduced representative set so the
/// trajectory job stays fast.
fn compile_suite() -> Vec<(&'static Workload, CompiledWorkload)> {
    let mut runner = SuiteRunner::new();
    let o2 = OptProfile::level(OptLevel::O2);
    let ws: Vec<&'static Workload> = if zkvmopt_bench::smoke() {
        zkvmopt_bench::bench_workloads()
    } else {
        zkvmopt_workloads::all().iter().collect()
    };
    ws.into_iter()
        .map(|w| {
            let cw = runner
                .compile(w, &o2)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (w, cw.clone())
        })
        .collect()
}

/// Run one workload through the engine (from the cached decode).
fn run_engine(w: &Workload, cw: &CompiledWorkload, vm: VmKind) -> u64 {
    run_decoded(&cw.decoded, vm, &w.inputs)
        .unwrap_or_else(|e| panic!("{} engine: {e}", w.name))
        .total_cycles
}

/// Run one workload through the reference step interpreter.
fn run_reference(w: &Workload, cw: &CompiledWorkload, vm: VmKind) -> u64 {
    run_program_reference(&cw.program, vm, &w.inputs)
        .unwrap_or_else(|e| panic!("{} reference: {e}", w.name))
        .total_cycles
}

fn report(suite: &[(&'static Workload, CompiledWorkload)]) {
    zkvmopt_bench::header("Engine throughput: block-dispatch engine vs step interpreter (-O2)");

    // Bit-identity gate on both VM kinds before any timing.
    for (w, cw) in suite {
        for vm in VmKind::BOTH {
            let old = run_program_reference(&cw.program, vm, &w.inputs)
                .unwrap_or_else(|e| panic!("{} reference: {e}", w.name));
            let new = run_decoded(&cw.decoded, vm, &w.inputs)
                .unwrap_or_else(|e| panic!("{} engine: {e}", w.name));
            assert_eq!(new.total_cycles, old.total_cycles, "{} on {vm}", w.name);
            assert_eq!(new.instret, old.instret, "{} on {vm}", w.name);
            assert_eq!(new.paging_cycles, old.paging_cycles, "{} on {vm}", w.name);
            assert_eq!(new.segments, old.segments, "{} on {vm}", w.name);
            assert_eq!(new.journal, old.journal, "{} on {vm}", w.name);
            assert_eq!(new.exit_code, old.exit_code, "{} on {vm}", w.name);
        }
    }
    println!(
        "bit-identity: all {} workloads x both VM kinds OK",
        suite.len()
    );

    // Per-workload wall-clock speedup (best of 3 per executor, RISC Zero).
    // Memory-op-bearing workloads are tracked as their own subset: they are
    // the ones the v3 residency pre-probe and batched memory blocks target,
    // and they carry their own geomean bar.
    println!(
        "{:<26} {:>14} {:>12} {:>12} {:>9}  mem?",
        "workload", "cycles", "interp ms", "engine ms", "speedup"
    );
    let mut speedups = Vec::new();
    let mut mem_speedups = Vec::new();
    let mut probe_hits = 0u64;
    let mut probe_misses = 0u64;
    let mut traces_formed = 0u64;
    for (w, cw) in suite {
        let time = |f: &dyn Fn() -> u64| -> f64 {
            (0..3)
                .map(|_| {
                    let t = std::time::Instant::now();
                    black_box(f());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let probe = run_decoded(&cw.decoded, VmKind::RiscZero, &w.inputs)
            .unwrap_or_else(|e| panic!("{} engine: {e}", w.name));
        let cycles = probe.total_cycles;
        let has_mem = probe.mix.load + probe.mix.store > 0;
        probe_hits += probe.stats.probe_hits;
        probe_misses += probe.stats.probe_misses;
        traces_formed += probe.stats.traces_formed;
        let old_ms = time(&|| run_reference(w, cw, VmKind::RiscZero));
        let new_ms = time(&|| run_engine(w, cw, VmKind::RiscZero));
        let speedup = old_ms / new_ms;
        println!(
            "{:<26} {cycles:>14} {old_ms:>12.3} {new_ms:>12.3} {speedup:>8.2}x  {}",
            w.name,
            if has_mem { "mem" } else { "-" }
        );
        speedups.push(speedup);
        if has_mem {
            mem_speedups.push(speedup);
        }
    }
    let g = geomean(&speedups);
    let g_mem = geomean(&mem_speedups);
    let probe_total = probe_hits + probe_misses;
    let hit_rate = if probe_total == 0 {
        0.0
    } else {
        probe_hits as f64 / probe_total as f64
    };
    println!(
        "\ngeomean speedup over the {}-program suite at -O2: {g:.2}x",
        suite.len()
    );
    println!(
        "memory-op-bearing subset ({} workloads): {g_mem:.2}x geomean, \
         residency probe hit rate {:.1}%, {traces_formed} traces formed",
        mem_speedups.len(),
        hit_rate * 100.0
    );
    zkvmopt_bench::trajectory::record(
        "engine_throughput",
        &[
            ("geomean_speedup", g),
            ("mem_geomean_speedup", g_mem),
            ("probe_hit_rate", hit_rate),
            ("traces_formed", traces_formed as f64),
            ("workloads", suite.len() as f64),
        ],
    );
    // Wall-clock ratios are noisy on shared CI runners; CI sets
    // ZKVMOPT_SPEEDUP_ADVISORY=1 to report without gating (the bit-identity
    // checks above always gate), while local runs enforce the PR's bar.
    if std::env::var("ZKVMOPT_SPEEDUP_ADVISORY").is_ok_and(|v| v == "1") {
        if g < 1.5 {
            eprintln!("ADVISORY: geomean {g:.2}x below the 1.5x bar (noisy runner?)");
        }
        if g_mem < 1.5 {
            eprintln!("ADVISORY: mem-subset geomean {g_mem:.2}x below the 1.5x bar");
        }
    } else {
        assert!(
            g >= 1.5,
            "block-dispatch engine must be >=1.5x the step interpreter (got {g:.2}x)"
        );
        assert!(
            g_mem >= 1.5,
            "memory-op-bearing workloads must be >=1.5x with the residency \
             pre-probe (got {g_mem:.2}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let suite = compile_suite();
    report(&suite);
    c.bench_function("engine/suite-O2-risczero", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(w, cw)| run_engine(w, cw, VmKind::RiscZero))
                .sum::<u64>()
        })
    });
    c.bench_function("interpreter/suite-O2-risczero", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(w, cw)| run_reference(w, cw, VmKind::RiscZero))
                .sum::<u64>()
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
