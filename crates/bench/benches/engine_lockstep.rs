//! Lockstep rollout throughput: one cohort advancing N machine states
//! through the shared decoded program vs N sequential solo runs.
//!
//! Before timing anything, every workload's cohort is checked lane-by-lane
//! for bit-identity against solo `Engine` runs (cycles, paging, segments,
//! journal, exit) — lockstep is a scheduling optimization and must never
//! change what any lane reports. The report then measures the wall-clock
//! advantage of the convoy (shared dispatch, lane-major register slab,
//! op-outer execution for pure blocks) and gates its geomean as a
//! regression guard; Criterion measures both full-suite sweeps. On small
//! hosts the op-fetch amortization trades against cache interleaving of
//! the lanes' working sets, so the hard bar only applies on >=4 cores.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zkvmopt_core::suite::CompiledWorkload;
use zkvmopt_core::{OptLevel, OptProfile, SuiteRunner};
use zkvmopt_vm::{Engine, ExecConfig, VmKind, VmProfile};
use zkvmopt_workloads::Workload;

/// Lanes per cohort: both VM kinds interleaved, enough to fill the
/// convoy's lane-inner loop without dwarfing compile time.
const LANES: usize = 8;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Compile + pre-decode the whole suite at -O2 once. CI smoke mode
/// (`ZKVMOPT_BENCH_SMOKE=1`) uses the reduced representative set.
fn compile_suite() -> Vec<(&'static Workload, CompiledWorkload)> {
    let mut runner = SuiteRunner::new();
    let o2 = OptProfile::level(OptLevel::O2);
    let ws: Vec<&'static Workload> = if zkvmopt_bench::smoke() {
        zkvmopt_bench::bench_workloads()
    } else {
        zkvmopt_workloads::all().iter().collect()
    };
    ws.into_iter()
        .map(|w| {
            let cw = runner
                .compile(w, &o2)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (w, cw.clone())
        })
        .collect()
}

/// The cohort for one workload: `LANES` jobs alternating VM kinds, all on
/// the genuine inputs (converged control flow = maximum sharing, which is
/// exactly the tuner's batch-evaluation shape).
fn jobs(w: &Workload) -> Vec<(VmProfile, ExecConfig)> {
    (0..LANES)
        .map(|i| {
            let kind = VmKind::BOTH[i % VmKind::BOTH.len()];
            (
                VmProfile::for_kind(kind),
                ExecConfig {
                    inputs: w.inputs.clone(),
                    ..ExecConfig::default()
                },
            )
        })
        .collect()
}

/// Sum of total cycles across a lockstep cohort (the timed kernel).
fn run_lockstep(cw: &CompiledWorkload, jobs: &[(VmProfile, ExecConfig)]) -> u64 {
    Engine::run_lockstep(&cw.decoded, jobs)
        .into_iter()
        .map(|r| r.expect("lockstep lane halts").total_cycles)
        .sum()
}

/// Same work as `run_lockstep`, one solo engine per job (the baseline).
fn run_sequential(cw: &CompiledWorkload, jobs: &[(VmProfile, ExecConfig)]) -> u64 {
    jobs.iter()
        .map(|(profile, config)| {
            Engine::new(&cw.decoded, profile.clone(), config.clone())
                .run()
                .expect("solo lane halts")
                .total_cycles
        })
        .sum()
}

fn report(suite: &[(&'static Workload, CompiledWorkload)]) {
    zkvmopt_bench::header("Lockstep rollouts: one cohort of N lanes vs N solo runs (-O2)");

    // Bit-identity gate: every lane of every cohort vs its solo run.
    for (w, cw) in suite {
        let jobs = jobs(w);
        let cohort = Engine::run_lockstep(&cw.decoded, &jobs);
        for (l, ((profile, config), got)) in jobs.iter().zip(cohort).enumerate() {
            let got = got.unwrap_or_else(|e| panic!("{} lane {l}: {e}", w.name));
            let solo = Engine::new(&cw.decoded, profile.clone(), config.clone())
                .run()
                .unwrap_or_else(|e| panic!("{} solo {l}: {e}", w.name));
            let ctx = format!("{} lane {l}", w.name);
            assert_eq!(got.total_cycles, solo.total_cycles, "{ctx}: cycles");
            assert_eq!(got.instret, solo.instret, "{ctx}: instret");
            assert_eq!(got.paging_cycles, solo.paging_cycles, "{ctx}: paging");
            assert_eq!(got.segments, solo.segments, "{ctx}: segments");
            assert_eq!(got.journal, solo.journal, "{ctx}: journal");
            assert_eq!(got.exit_code, solo.exit_code, "{ctx}: exit");
        }
    }
    println!(
        "bit-identity: all {} workloads x {LANES}-lane cohorts OK",
        suite.len()
    );

    // Per-workload wall-clock: cohort vs sequential (best of 3 each).
    println!(
        "{:<26} {:>14} {:>12} {:>12} {:>9}",
        "workload", "cycles", "seq ms", "lockstep ms", "speedup"
    );
    let mut speedups = Vec::new();
    for (w, cw) in suite {
        let jobs = jobs(w);
        let time = |f: &dyn Fn() -> u64| -> f64 {
            (0..5)
                .map(|_| {
                    let t = std::time::Instant::now();
                    black_box(f());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let cycles = run_lockstep(cw, &jobs);
        let seq_ms = time(&|| run_sequential(cw, &jobs));
        let lock_ms = time(&|| run_lockstep(cw, &jobs));
        let speedup = seq_ms / lock_ms;
        println!(
            "{:<26} {cycles:>14} {seq_ms:>12.3} {lock_ms:>12.3} {speedup:>8.2}x",
            w.name
        );
        speedups.push(speedup);
    }
    let g = geomean(&speedups);
    println!(
        "\ngeomean lockstep speedup over {} workloads ({LANES} lanes): {g:.2}x",
        suite.len()
    );
    zkvmopt_bench::trajectory::record(
        "engine_lockstep",
        &[
            ("geomean_speedup", g),
            ("lanes", LANES as f64),
            ("workloads", suite.len() as f64),
        ],
    );
    // The bit-identity checks above always gate. The wall-clock ratio is a
    // regression guard on the dispatch layer: convoys amortize op fetch and
    // block dispatch, but on small hosts that trades against the lanes'
    // working sets interleaving in cache, so machines with fewer than 4
    // cores (and CI, via ZKVMOPT_SPEEDUP_ADVISORY=1) report without gating.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if std::env::var("ZKVMOPT_SPEEDUP_ADVISORY").is_ok_and(|v| v == "1") || cores < 4 {
        if g < 0.9 {
            eprintln!("ADVISORY: lockstep geomean {g:.2}x below the 0.9x bar ({cores} cores)");
        }
    } else {
        assert!(
            g >= 0.9,
            "lockstep cohorts must stay within 10% of sequential solo runs (got {g:.2}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let suite = compile_suite();
    report(&suite);
    c.bench_function("lockstep/suite-O2-cohort", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(w, cw)| run_lockstep(cw, &jobs(w)))
                .sum::<u64>()
        })
    });
    c.bench_function("sequential/suite-O2-cohort", |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(w, cw)| run_sequential(cw, &jobs(w)))
                .sum::<u64>()
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
