//! Figure 6: autotuning speedup over -O3 (NPB + crypto suites; the paper runs
//! OpenTuner for 1600 iterations — the bench uses a reduced budget, the
//! report binary a larger one).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, OptLevel, OptProfile, SuiteRunner};
use zkvmopt_tuner::{autotune, TunerConfig};
use zkvmopt_vm::VmKind;

fn tune_one(name: &str, iterations: usize) -> (f64, f64) {
    // The batched runner lowers the workload once and caches every candidate
    // compile; the fitness loop is pure engine execution.
    let mut runner = SuiteRunner::new();
    let w = zkvmopt_workloads::by_name(name).expect("exists");
    let (_, base) = runner
        .measure(w, &OptProfile::baseline(), VmKind::RiscZero, false, None)
        .expect("baseline");
    let (o3, _) = runner
        .measure(
            w,
            &OptProfile::level(OptLevel::O3),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .expect("-O3");
    let cfg = TunerConfig {
        iterations,
        ..Default::default()
    };
    let result = autotune(&cfg, |cand| {
        let profile = OptProfile::sequence("cand", cand.passes.clone(), cand.pass_config());
        match runner.measure(w, &profile, VmKind::RiscZero, false, Some(&base)) {
            Ok((m, _)) => Some(m.cycles),
            Err(_) => None, // invalid candidate (the paper's SP1-bug channel)
        }
    });
    let (tuned, _) = runner
        .measure(
            w,
            &OptProfile::sequence(
                "tuned",
                result.best.passes.clone(),
                result.best.pass_config(),
            ),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .expect("tuned candidate re-runs");
    (o3.cycles as f64, tuned.cycles as f64)
}

fn report() {
    header("Figure 6: autotuned pass sequences vs -O3 (cycle count, RISC Zero)");
    for name in ["npb-mg", "loop-sum", "sha2-bench"] {
        let (o3, tuned) = tune_one(name, 40);
        println!(
            "{name:<14} -O3 {o3:>12.0} cycles | tuned {tuned:>12.0} cycles | tuned vs -O3: {}",
            pct(gain(o3, tuned))
        );
        // The tuner must at least approach -O3 under this tiny budget.
        assert!(tuned <= o3 * 1.6, "{name}: tuner too far behind -O3");
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig06/tuner_20_iters_loop_sum", |b| {
        b.iter(|| tune_one("loop-sum", 20))
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
