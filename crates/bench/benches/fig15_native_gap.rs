//! Figure 15 / Appendix A: zkVM execution and proving are orders of magnitude
//! slower than native execution (NPB suite, unoptimized binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::header;
use zkvmopt_core::{OptProfile, Pipeline};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::Suite;

fn report() {
    header("Figure 15: native vs zkVM execution vs proving (NPB, unoptimized)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "program", "native ms", "zk exec ms", "prove ms", "exec/nat", "prove/nat"
    );
    let mut min_exec_ratio = f64::INFINITY;
    for w in zkvmopt_workloads::suite(Suite::Npb) {
        let p = Pipeline::new(OptProfile::baseline()).with_x86();
        let r = p.run_workload(w, VmKind::RiscZero).expect("runs");
        let native = r.x86.as_ref().expect("x86").time_ms;
        let er = r.exec_ms / native;
        let pr = r.prove_ms / native;
        println!(
            "{:<10} {:>14.4} {:>14.3} {:>14.1} {:>9.0}x {:>9.0}x",
            w.name, native, r.exec_ms, r.prove_ms, er, pr
        );
        min_exec_ratio = min_exec_ratio.min(er);
    }
    assert!(
        min_exec_ratio > 10.0,
        "zkVM execution must be orders of magnitude slower than native"
    );
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("npb-ep").expect("exists");
    c.bench_function("fig15/npb_ep_baseline", |b| {
        b.iter(|| {
            Pipeline::new(OptProfile::baseline())
                .run_workload(w, VmKind::RiscZero)
                .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
