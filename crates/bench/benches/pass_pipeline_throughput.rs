//! Pass-pipeline throughput: the analysis-cached [`PassManager`] vs the
//! legacy uncached `run_pass` loop, over the full 58-program suite.
//!
//! Before timing anything, the new manager is proven **bit-identical** to the
//! legacy path: for every workload × {-O2, -O3}, both paths must produce the
//! same printed IR and the same static instruction counts, and the -O2 output
//! must execute to the same cycle count — so every later speedup number
//! describes the *same* optimization outcomes, faster.
//!
//! The timed scenario models the tuner's hot loop: the same pipeline applied
//! repeatedly (duplicate candidates, fixpoint groups). The legacy path pays
//! the full pipeline every time — every pass re-walks every function and
//! rebuilds `Cfg`/`DomTree`/`LoopForest` from scratch; the cached executor
//! converges once and then skips passes that provably cannot change anything.
//! The acceptance bar is a ≥1.5× geomean over the suite (advisory under CI
//! noise via `ZKVMOPT_SPEEDUP_ADVISORY=1`, like `engine_throughput`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zkvmopt_ir::Module;
use zkvmopt_passes::{run_pass, OptLevel, PassConfig, PassExecutor, PassManager};
use zkvmopt_workloads::Workload;

/// Pipeline repetitions per measurement — the tuner's duplicate-candidate /
/// fixpoint shape.
const REPEATS: usize = 8;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Lower every workload once; passes run on clones of these base modules.
/// CI smoke mode (`ZKVMOPT_BENCH_SMOKE=1`) uses the reduced representative
/// set so the trajectory job stays fast.
fn lower_suite() -> Vec<(&'static Workload, Module)> {
    let ws: Vec<&'static Workload> = if zkvmopt_bench::smoke() {
        zkvmopt_bench::bench_workloads()
    } else {
        zkvmopt_workloads::all().iter().collect()
    };
    ws.into_iter()
        .map(|w| {
            let m = zkvmopt_lang::compile_guest(&w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (w, m)
        })
        .collect()
}

fn legacy_apply(pm: &PassManager, m: &mut Module, cfg: &PassConfig, repeats: usize) {
    for _ in 0..repeats {
        for name in pm.names() {
            run_pass(name, m, cfg);
        }
    }
}

fn cached_apply(pm: &PassManager, m: &mut Module, cfg: &PassConfig, repeats: usize) {
    let mut ex = PassExecutor::new();
    for _ in 0..repeats {
        pm.run_with(m, cfg, &mut ex);
    }
}

/// Static instruction count + executed RISC Zero cycles of a module.
fn observe(m: &Module, w: &Workload) -> (usize, u64) {
    let program = zkvmopt_riscv::compile_module(m, &zkvmopt_riscv::TargetCostModel::cpu())
        .unwrap_or_else(|e| panic!("{}: codegen: {e}", w.name));
    let decoded = zkvmopt_vm::DecodedProgram::decode(&program);
    let report = zkvmopt_vm::run_decoded(&decoded, zkvmopt_vm::VmKind::RiscZero, &w.inputs)
        .unwrap_or_else(|e| panic!("{}: exec: {e}", w.name));
    (m.size(), report.total_cycles)
}

/// Gate: legacy and cached execution must be indistinguishable — identical
/// printed IR, static counts, and executed cycles — before anything is timed.
fn bit_identity_gate(suite: &[(&'static Workload, Module)]) {
    let cfg = PassConfig::default();
    for level in [OptLevel::O2, OptLevel::O3] {
        let pm = PassManager::for_level(level);
        for (w, base) in suite {
            for repeats in [1, REPEATS] {
                let mut legacy = base.clone();
                legacy_apply(&pm, &mut legacy, &cfg, repeats);
                let mut cached = base.clone();
                cached_apply(&pm, &mut cached, &cfg, repeats);
                assert_eq!(
                    zkvmopt_ir::print::module_to_string(&legacy),
                    zkvmopt_ir::print::module_to_string(&cached),
                    "{} at {level:?} (×{repeats}): IR diverged",
                    w.name
                );
            }
            // Observable behaviour of the single-run -O2/-O3 output.
            let mut legacy = base.clone();
            legacy_apply(&pm, &mut legacy, &cfg, 1);
            let mut cached = base.clone();
            cached_apply(&pm, &mut cached, &cfg, 1);
            let (lsize, lcycles) = observe(&legacy, w);
            let (csize, ccycles) = observe(&cached, w);
            assert_eq!(lsize, csize, "{} at {level:?}: static count", w.name);
            assert_eq!(lcycles, ccycles, "{} at {level:?}: cycles", w.name);
        }
    }
    println!(
        "bit-identity: {} workloads x {{-O2, -O3}} x {{1, {REPEATS}}} runs OK",
        suite.len()
    );
}

fn report(suite: &[(&'static Workload, Module)]) {
    zkvmopt_bench::header(
        "Pass-pipeline throughput: analysis-cached PassManager vs uncached run_pass (-O2)",
    );
    bit_identity_gate(suite);

    let cfg = PassConfig::default();
    let pm = PassManager::for_level(OptLevel::O2);
    println!(
        "{:<26} {:>12} {:>12} {:>9}   ({}x repeated -O2 pipeline)",
        "workload", "legacy ms", "cached ms", "speedup", REPEATS
    );
    let mut speedups = Vec::new();
    for (w, base) in suite {
        let time = |f: &dyn Fn() -> usize| -> f64 {
            (0..3)
                .map(|_| {
                    let t = std::time::Instant::now();
                    black_box(f());
                    t.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let legacy_ms = time(&|| {
            let mut m = base.clone();
            legacy_apply(&pm, &mut m, &cfg, REPEATS);
            m.size()
        });
        let cached_ms = time(&|| {
            let mut m = base.clone();
            cached_apply(&pm, &mut m, &cfg, REPEATS);
            m.size()
        });
        let speedup = legacy_ms / cached_ms;
        println!(
            "{:<26} {legacy_ms:>12.3} {cached_ms:>12.3} {speedup:>8.2}x",
            w.name
        );
        speedups.push(speedup);
    }
    let g = geomean(&speedups);
    println!(
        "\ngeomean speedup over the {}-program suite: {g:.2}x",
        suite.len()
    );
    zkvmopt_bench::trajectory::record(
        "pass_pipeline_throughput",
        &[
            ("geomean_speedup", g),
            ("workloads", suite.len() as f64),
            ("repeats", REPEATS as f64),
        ],
    );
    if std::env::var("ZKVMOPT_SPEEDUP_ADVISORY").is_ok_and(|v| v == "1") {
        if g < 1.5 {
            eprintln!("ADVISORY: geomean {g:.2}x below the 1.5x bar (noisy runner?)");
        }
    } else {
        assert!(
            g >= 1.5,
            "cached pass manager must be >=1.5x the uncached loop on repeated \
             pipelines (got {g:.2}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let suite = lower_suite();
    report(&suite);
    let cfg = PassConfig::default();
    let pm = PassManager::for_level(OptLevel::O2);
    c.bench_function(&format!("passes/suite-O2-cached-x{REPEATS}"), |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(_, base)| {
                    let mut m = base.clone();
                    cached_apply(&pm, &mut m, &cfg, REPEATS);
                    m.size()
                })
                .sum::<usize>()
        })
    });
    c.bench_function(&format!("passes/suite-O2-legacy-x{REPEATS}"), |b| {
        b.iter(|| {
            suite
                .iter()
                .map(|(_, base)| {
                    let mut m = base.clone();
                    legacy_apply(&pm, &mut m, &cfg, REPEATS);
                    m.size()
                })
                .sum::<usize>()
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
