//! Figure 14 / §6.1: the zkVM-aware -O3 (cost model + heuristics + disabled
//! hardware passes) vs stock -O3.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, measure, OptLevel, OptProfile};
use zkvmopt_vm::VmKind;

fn report() {
    let names = [
        "fibonacci",
        "loop-sum",
        "polybench-floyd-warshall",
        "polybench-covariance",
        "npb-ft",
        "regex-match",
        "polybench-gemm",
        "sha2-bench",
        "npb-mg",
        "tailcall",
    ];
    header("Figure 14: zk-aware -O3 vs stock -O3 (execution time gain)");
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>14}",
        "workload", "R0 exec", "SP1 exec", "R0 instret Δ", "R0 prove"
    );
    let mut wins_r0 = 0;
    let mut losses_r0 = 0;
    let mut total = 0;
    let mut instr_reduced = 0;
    let mut sum_r0 = 0.0;
    for name in names {
        let w = zkvmopt_workloads::by_name(name).expect("exists");
        let mut row = format!("{name:<26}");
        let mut r0_exec = 0.0;
        for vm in VmKind::BOTH {
            let (o3, o3r) =
                measure(w, &OptProfile::level(OptLevel::O3), vm, false, None).expect("-O3");
            let (zk, _) = measure(w, &OptProfile::zk_o3(), vm, false, Some(&o3r)).expect("zk-O3");
            let e = gain(o3.exec_ms, zk.exec_ms);
            row.push_str(&format!(" {:>12}", pct(e)));
            if vm == VmKind::RiscZero {
                r0_exec = e;
                let di = gain(o3.instret as f64, zk.instret as f64);
                let dp = gain(o3.prove_ms, zk.prove_ms);
                row.push_str(&format!(" {:>14} {:>14}", pct(di), pct(dp)));
                if di > 0.0 {
                    instr_reduced += 1;
                }
            }
        }
        println!("{row}");
        total += 1;
        sum_r0 += r0_exec;
        if r0_exec > 0.5 {
            wins_r0 += 1;
        } else if r0_exec < -0.5 {
            losses_r0 += 1;
        }
    }
    println!(
        "-> zk-O3 beats -O3 on RISC Zero exec for {wins_r0}/{total} programs \
({losses_r0} regressions); mean {:+.1}%;",
        sum_r0 / total as f64
    );
    println!("   instruction count reduced on {instr_reduced}/{total} (the paper's driver).");
    // Paper shape: wins outnumber regressions (39/58 improved, 2 regressed)
    // and the average is positive — ties are programs the cost model leaves
    // untouched.
    assert!(wins_r0 > losses_r0, "wins {wins_r0} !> losses {losses_r0}");
    assert!(
        sum_r0 / total as f64 > 0.0,
        "mean zk-O3 gain must be positive"
    );
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("fibonacci").expect("exists");
    c.bench_function("fig14/zk_o3_fibonacci", |b| {
        b.iter(|| measure(w, &OptProfile::zk_o3(), VmKind::RiscZero, false, None).expect("runs"))
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
