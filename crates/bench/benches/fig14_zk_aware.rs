//! Figure 14 / §6.1: the zkVM-aware -O3 (cost model + heuristics + disabled
//! hardware passes) vs stock -O3 — plus a multi-backend proving study: the
//! same zk-O3-vs-O3 comparison priced by each [`ProverBackend`] cost shape
//! over real segmented executions, showing how much of the zk-aware win
//! survives a backend that charges paging differently.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, measure, OptLevel, OptProfile, SuiteRunner};
use zkvmopt_prover::{prove_segmented, standard_backends};
use zkvmopt_vm::VmKind;

fn report() {
    let names = [
        "fibonacci",
        "loop-sum",
        "polybench-floyd-warshall",
        "polybench-covariance",
        "npb-ft",
        "regex-match",
        "polybench-gemm",
        "sha2-bench",
        "npb-mg",
        "tailcall",
    ];
    header("Figure 14: zk-aware -O3 vs stock -O3 (execution time gain)");
    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>14}",
        "workload", "R0 exec", "SP1 exec", "R0 instret Δ", "R0 prove"
    );
    let mut wins_r0 = 0;
    let mut losses_r0 = 0;
    let mut total = 0;
    let mut instr_reduced = 0;
    let mut sum_r0 = 0.0;
    for name in names {
        let w = zkvmopt_workloads::by_name(name).expect("exists");
        let mut row = format!("{name:<26}");
        let mut r0_exec = 0.0;
        for vm in VmKind::BOTH {
            let (o3, o3r) =
                measure(w, &OptProfile::level(OptLevel::O3), vm, false, None).expect("-O3");
            let (zk, _) = measure(w, &OptProfile::zk_o3(), vm, false, Some(&o3r)).expect("zk-O3");
            let e = gain(o3.exec_ms, zk.exec_ms);
            row.push_str(&format!(" {:>12}", pct(e)));
            if vm == VmKind::RiscZero {
                r0_exec = e;
                let di = gain(o3.instret as f64, zk.instret as f64);
                let dp = gain(o3.prove_ms, zk.prove_ms);
                row.push_str(&format!(" {:>14} {:>14}", pct(di), pct(dp)));
                if di > 0.0 {
                    instr_reduced += 1;
                }
            }
        }
        println!("{row}");
        total += 1;
        sum_r0 += r0_exec;
        if r0_exec > 0.5 {
            wins_r0 += 1;
        } else if r0_exec < -0.5 {
            losses_r0 += 1;
        }
    }
    println!(
        "-> zk-O3 beats -O3 on RISC Zero exec for {wins_r0}/{total} programs \
({losses_r0} regressions); mean {:+.1}%;",
        sum_r0 / total as f64
    );
    println!("   instruction count reduced on {instr_reduced}/{total} (the paper's driver).");
    // Paper shape: wins outnumber regressions (39/58 improved, 2 regressed)
    // and the average is positive — ties are programs the cost model leaves
    // untouched.
    assert!(wins_r0 > losses_r0, "wins {wins_r0} !> losses {losses_r0}");
    assert!(
        sum_r0 / total as f64 > 0.0,
        "mean zk-O3 gain must be positive"
    );
}

/// The multi-backend extension: prove the segmented zk-O3 and -O3 runs
/// under every backend cost shape and report the per-backend prove gain.
fn multi_backend_report() {
    let names = [
        "fibonacci",
        "loop-sum",
        "polybench-covariance",
        "regex-match",
        "polybench-gemm",
        "npb-mg",
    ];
    header("Figure 14b: zk-aware -O3 prove-cost gain per prover backend");
    let backends = standard_backends();
    print!("{:<26}", "workload");
    for b in backends {
        print!(" {:>10}", b.name());
    }
    println!();
    let mut runner = SuiteRunner::new();
    let o3 = OptProfile::level(OptLevel::O3);
    let zk = OptProfile::zk_o3();
    let mut sums = [0.0f64; 3];
    for name in names {
        let w = zkvmopt_workloads::by_name(name).expect("exists");
        let (o3_report, o3_records) = runner
            .run_segmented(w, &o3, VmKind::RiscZero)
            .expect("-O3 segmented");
        let (zk_report, zk_records) = runner
            .run_segmented(w, &zk, VmKind::RiscZero)
            .expect("zk-O3 segmented");
        print!("{name:<26}");
        for (bi, backend) in backends.iter().enumerate() {
            let base = prove_segmented(*backend, &o3_report, &o3_records, 0)
                .expect("gated")
                .total_cost_ms;
            let tuned = prove_segmented(*backend, &zk_report, &zk_records, 0)
                .expect("gated")
                .total_cost_ms;
            let g = gain(base, tuned);
            sums[bi] += g;
            print!(" {:>10}", pct(g));
        }
        println!();
    }
    print!("{:<26}", "mean");
    for (bi, backend) in backends.iter().enumerate() {
        let mean = sums[bi] / names.len() as f64;
        assert!(mean.is_finite(), "{}: mean gain", backend.name());
        print!(" {:>10}", pct(mean));
    }
    println!();
    println!("-> same executions, three cost shapes: the zk-aware win is backend-dependent.");
}

fn bench(c: &mut Criterion) {
    report();
    multi_backend_report();
    let w = zkvmopt_workloads::by_name("fibonacci").expect("exists");
    c.bench_function("fig14/zk_o3_fibonacci", |b| {
        b.iter(|| measure(w, &OptProfile::zk_o3(), VmKind::RiscZero, false, None).expect("runs"))
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
