//! Figure 13 / P4: simplifycfg's branch-to-select conversion (the nussinov
//! abs kernel) helps x86 via fewer mispredictions but hurts zkVMs, where both
//! paths now execute.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, OptProfile, Pipeline};
use zkvmopt_passes::PassConfig;
use zkvmopt_vm::VmKind;

const ABS_KERNEL: &str = "
    fn main() -> i32 {
      let mut s: i32 = 0;
      let mut x: u32 = (read_input(0) + 9) as u32;
      for (let mut i: i32 = 0; i < 4000; i += 1) {
        x = x * 1103515245 + 12345;
        let v: i32 = ((x >> 8) % 2001) as i32 - 1000;
        let mut a: i32 = v;
        if (v < 0) { a = 0 - v; }
        s += a;
      }
      commit(s); return s;
    }";

fn run(profile: OptProfile) -> (f64, f64, f64, u64) {
    let p = Pipeline::new(profile).with_x86();
    let r = p
        .run_source(ABS_KERNEL, &[1], VmKind::RiscZero)
        .expect("runs");
    (
        r.x86.as_ref().expect("x86").time_ms,
        r.exec_ms,
        r.prove_ms,
        r.exec.instret,
    )
}

fn report() {
    header("Figure 13: branchy |x| vs simplifycfg's if-converted form");
    let branchy = OptProfile::sequence("branchy", vec!["mem2reg"], PassConfig::default());
    let converted = OptProfile::sequence(
        "if-converted",
        vec!["mem2reg", "simplifycfg"],
        PassConfig::default(),
    );
    let (xb, eb, pb, ib) = run(branchy);
    let (xc, ec, pc, ic) = run(converted);
    println!(
        "x86 native : branchy {xb:.4} ms vs converted {xc:.4} ms ({} for conversion)",
        pct(gain(xb, xc))
    );
    println!(
        "zkVM exec  : branchy {eb:.4} ms vs converted {ec:.4} ms ({} for conversion)",
        pct(gain(eb, ec))
    );
    println!(
        "zkVM prove : branchy {pb:.4} ms vs converted {pc:.4} ms ({} for conversion)",
        pct(gain(pb, pc))
    );
    println!("instret    : branchy {ib} vs converted {ic}");
    assert!(xc < xb, "if-conversion must help x86 (mispredictions gone)");
    assert!(
        ic >= ib,
        "if-conversion must not reduce zkVM instructions here"
    );
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig13/abs_kernel_converted", |b| {
        b.iter(|| {
            Pipeline::new(OptProfile::sequence(
                "c",
                vec!["mem2reg", "simplifycfg"],
                PassConfig::default(),
            ))
            .run_source(ABS_KERNEL, &[1], VmKind::RiscZero)
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
