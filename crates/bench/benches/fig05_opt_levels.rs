//! Figure 5: impact of the standard -O levels on zkVM execution and proving
//! time (paper: all levels except -O0 gain >40% on average; -O3 highest,
//! -Oz lowest).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{bench_workloads, header, impact_matrix, level_profiles, mean_gain, pct};
use zkvmopt_core::OptLevel;
use zkvmopt_vm::VmKind;

fn report() {
    let workloads = bench_workloads();
    let profiles = level_profiles();
    let impacts = impact_matrix(&workloads, &profiles, &VmKind::BOTH, false);
    header("Figure 5: average gain of -Ox levels vs unoptimized baseline");
    println!(
        "{:<6} {:>16} {:>16} {:>16} {:>16}",
        "level", "R0 exec", "R0 prove", "SP1 exec", "SP1 prove"
    );
    for l in OptLevel::ALL {
        let name = l.flag();
        println!(
            "{name:<6} {:>16} {:>16} {:>16} {:>16}",
            pct(mean_gain(&impacts, name, VmKind::RiscZero, |i| i.exec_gain)),
            pct(mean_gain(&impacts, name, VmKind::RiscZero, |i| i.prove_gain)),
            pct(mean_gain(&impacts, name, VmKind::Sp1, |i| i.exec_gain)),
            pct(mean_gain(&impacts, name, VmKind::Sp1, |i| i.prove_gain)),
        );
    }
    // Paper shape: -O3 >= all other levels on exec; every level >= -O0.
    let exec = |l: OptLevel| mean_gain(&impacts, l.flag(), VmKind::RiscZero, |i| i.exec_gain);
    for l in OptLevel::ALL {
        // -O2/-Os can tie -O3 within noise on the reduced set; the paper's
        // claim is that -O3 leads on average, not that it wins every subset.
        assert!(exec(OptLevel::O3) >= exec(l) - 2.5, "-O3 must lead ({l:?})");
    }
    assert!(exec(OptLevel::O2) > 20.0, "-O2 must gain substantially");
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("polybench-gemm").expect("exists");
    c.bench_function("fig05/o3_gemm_pipeline", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &zkvmopt_core::OptProfile::level(OptLevel::O3),
                VmKind::Sp1,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
