//! Figure 11 / P2: inlining a wide-state callee into a hot caller triggers
//! stack spills on RV32 — dynamic loads/stores and cycles go up even though
//! the call overhead went away.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{baseline, header, impact_vs_baseline, pct};
use zkvmopt_core::{OptProfile, SuiteRunner};
use zkvmopt_passes::PassConfig;
use zkvmopt_vm::VmKind;

fn report() {
    let mut runner = SuiteRunner::new();
    let w = zkvmopt_workloads::by_name("tailcall").expect("exists");
    let base = baseline(&mut runner, w, &[VmKind::RiscZero], false);
    let (vm, bm, br) = &base.by_vm[0];
    header("Figure 11: inlining the tailcall kernel (RISC Zero)");
    // mem2reg alone (no inlining) vs mem2reg+aggressive inline.
    let noinline = OptProfile::sequence("mem2reg-only", vec!["mem2reg"], PassConfig::default());
    let aggressive_cfg = PassConfig {
        inline_threshold: 10_000,
        ..Default::default()
    };
    let inline = OptProfile::sequence("mem2reg+inline", vec!["mem2reg", "inline"], aggressive_cfg);
    let a = impact_vs_baseline(&mut runner, w, &noinline, *vm, bm, br, false).expect("runs");
    let b = impact_vs_baseline(&mut runner, w, &inline, *vm, bm, br, false).expect("runs");
    println!(
        "{:<16} exec {:>8}  cycles {:>8}  instret {:>8}  spilled vregs {:>4}",
        a.profile,
        pct(a.exec_gain),
        pct(a.cycles_gain),
        pct(a.instret_gain),
        a.measurement.spilled_vregs
    );
    println!(
        "{:<16} exec {:>8}  cycles {:>8}  instret {:>8}  spilled vregs {:>4}",
        b.profile,
        pct(b.exec_gain),
        pct(b.cycles_gain),
        pct(b.instret_gain),
        b.measurement.spilled_vregs
    );
    assert!(
        b.measurement.spilled_vregs >= a.measurement.spilled_vregs,
        "inlining the wide-state callee must not reduce spills"
    );
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("tailcall").expect("exists");
    c.bench_function("fig11/inline_tailcall", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &OptProfile::sequence(
                    "i",
                    vec!["mem2reg", "inline"],
                    PassConfig {
                        inline_threshold: 10_000,
                        ..Default::default()
                    },
                ),
                VmKind::RiscZero,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
