//! Figure 8: programs where a pass diverges between x86 and RISC Zero
//! (gain on one, loss on the other, or lopsided gains).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{bench_workloads, header, impact_matrix, pass_profiles};
use zkvmopt_vm::VmKind;

const PASSES: &[&str] = &[
    "inline",
    "jump-threading",
    "gvn",
    "simplifycfg",
    "reg2mem",
    "tailcall",
    "loop-extract",
    "instcombine",
    "licm",
    "sroa",
];

fn report() {
    let workloads = bench_workloads();
    let impacts = impact_matrix(
        &workloads,
        &pass_profiles(PASSES),
        &[VmKind::RiscZero],
        true,
    );
    header("Figure 8: divergence counts (x86 vs RISC Zero execution)");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "pass", "zk+ x86-", "zk+>x86+", "x86+>zk+", "x86+ zk-"
    );
    for p in PASSES {
        let mut c = [0usize; 4];
        for i in impacts.iter().filter(|i| i.profile == *p) {
            let zk = i.exec_gain;
            let x86 = i.x86_gain.unwrap_or(0.0);
            if zk > 2.0 && x86 < -2.0 {
                c[0] += 1;
            } else if zk > 2.0 && x86 > 2.0 && zk > x86 + 5.0 {
                c[1] += 1;
            } else if zk > 2.0 && x86 > 2.0 && x86 > zk + 5.0 {
                c[2] += 1;
            } else if x86 > 2.0 && zk < -2.0 {
                c[3] += 1;
            }
        }
        println!(
            "{p:<16} {:>12} {:>12} {:>12} {:>12}",
            c[0], c[1], c[2], c[3]
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("tailcall").expect("exists");
    c.bench_function("fig08/reg2mem_pipeline", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &zkvmopt_core::OptProfile::single_pass("reg2mem"),
                VmKind::RiscZero,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
