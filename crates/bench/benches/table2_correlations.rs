//! Table 2: monotonic (Kendall τ) and linear (Pearson) relationships between
//! zkVM cost metrics and performance, per benchmark over optimization
//! variants.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{baseline, header, metric_columns, pass_profiles};
use zkvmopt_core::{SuiteRunner, KEY_PASSES};
use zkvmopt_stats::{kendall_tau, mean, pearson};
use zkvmopt_vm::VmKind;

fn report() {
    let mut runner = SuiteRunner::new();
    let workloads: Vec<_> = [
        "loop-sum",
        "polybench-gemm",
        "npb-mg",
        "fibonacci",
        "polybench-floyd-warshall",
        "tailcall",
    ]
    .iter()
    .map(|n| zkvmopt_workloads::by_name(n).expect("exists"))
    .collect();
    header("Table 2: Kendall tau / Pearson between cost metrics and performance");
    println!(
        "{:<10} {:<16} {:<16} {:>10} {:>10}",
        "zkVM", "perf metric", "cost metric", "Kendall", "Pearson"
    );
    for vm in VmKind::BOTH {
        let mut tau_ie = Vec::new(); // instret vs exec
        let mut r_ie = Vec::new();
        let mut tau_ip = Vec::new(); // instret vs prove
        let mut r_ip = Vec::new();
        let mut tau_pe = Vec::new(); // paging vs exec (R0 only)
        let mut r_pe = Vec::new();
        for w in &workloads {
            let base = baseline(&mut runner, w, &[vm], false);
            let (v, bm, br) = &base.by_vm[0];
            let cols = metric_columns(&mut runner, w, &pass_profiles(KEY_PASSES), *v, bm, br);
            tau_ie.push(kendall_tau(&cols.instret, &cols.exec_ms));
            r_ie.push(pearson(&cols.instret, &cols.exec_ms));
            tau_ip.push(kendall_tau(&cols.instret, &cols.prove_ms));
            r_ip.push(pearson(&cols.instret, &cols.prove_ms));
            if vm == VmKind::RiscZero {
                tau_pe.push(kendall_tau(&cols.paging, &cols.exec_ms));
                r_pe.push(pearson(&cols.paging, &cols.exec_ms));
            }
        }
        println!(
            "{:<10} {:<16} {:<16} {:>10.2} {:>10.2}",
            vm.name(),
            "exec time",
            "executed instr",
            mean(&tau_ie),
            mean(&r_ie)
        );
        println!(
            "{:<10} {:<16} {:<16} {:>10.2} {:>10.2}",
            vm.name(),
            "proving time",
            "executed instr",
            mean(&tau_ip),
            mean(&r_ip)
        );
        if vm == VmKind::RiscZero {
            println!(
                "{:<10} {:<16} {:<16} {:>10.2} {:>10.2}",
                vm.name(),
                "exec time",
                "paging cycles",
                mean(&tau_pe),
                mean(&r_pe)
            );
        }
        // The paper's core claim: strong positive monotonic+linear relation
        // between dynamic instruction count and execution time.
        assert!(
            mean(&tau_ie) > 0.4,
            "tau(instr, exec) = {:.2}",
            mean(&tau_ie)
        );
        assert!(
            mean(&r_ie) > 0.7,
            "pearson(instr, exec) = {:.2}",
            mean(&r_ie)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("table2/kendall_500", |b| {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 501) as f64).collect();
        let ys: Vec<f64> = (0..500).map(|i| ((i * 91) % 499) as f64).collect();
        b.iter(|| kendall_tau(&xs, &ys))
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
