//! Table 1: number of (program, pass) instances with execution/proving gains
//! or losses beyond ±2% per zkVM.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{bench_workloads, header, impact_matrix, pass_profiles};
use zkvmopt_core::KEY_PASSES;
use zkvmopt_vm::VmKind;

fn report() {
    let impacts = impact_matrix(
        &bench_workloads(),
        &pass_profiles(KEY_PASSES),
        &VmKind::BOTH,
        false,
    );
    header("Table 1: instances of gains (>2%) and losses (<-2%)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "zkVM", "exec gain", "exec loss", "prove gain", "prove loss"
    );
    for vm in VmKind::BOTH {
        let of = |f: &dyn Fn(&zkvmopt_bench::Impact) -> f64, positive: bool| {
            impacts
                .iter()
                .filter(|i| i.vm == vm)
                .filter(|i| if positive { f(i) > 2.0 } else { f(i) < -2.0 })
                .count()
        };
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            vm.name(),
            of(&|i| i.exec_gain, true),
            of(&|i| i.exec_gain, false),
            of(&|i| i.prove_gain, true),
            of(&|i| i.prove_gain, false)
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("table1/counting", |b| b.iter(|| 2 + 2));
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
