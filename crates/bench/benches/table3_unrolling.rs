//! Table 3: manual 4x/16x unrolling of the Fig. 12 matrix-vector kernel —
//! static instructions rise, but executed instructions (and zkVM time) drop.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{header, pct};
use zkvmopt_core::{gain, OptProfile, Pipeline};
use zkvmopt_vm::VmKind;

fn matvec_src(unroll: usize) -> String {
    // res[row] += mat[col*5+row] * vec[col], repeated REPS times.
    let body: String = match unroll {
        1 => "res[row] += MAT[col*5+row] * VEC[col]; row += 1;".into(),
        _ => {
            let mut s = String::new();
            for k in 0..unroll {
                s.push_str(&format!("res[row+{k}] += MAT[col*5+row+{k}] * VEC[col]; "));
            }
            s.push_str(&format!("row += {unroll};"));
            s
        }
    };
    // 5x5 kernel like the paper's Fig. 12, padded to 80 virtual rows so all
    // factors perform identical work and only the loop bookkeeping differs
    // (the paper unrolled the assembly by hand for the same reason).
    let rows = 80;
    format!(
        "static MAT: [i32; 25]; static VEC: [i32; 5];
         fn main() -> i32 {{
           let seed: i32 = read_input(0) + 3;
           for (let mut i: i32 = 0; i < 25; i += 1) {{ MAT[i] = (i * seed) % 19; }}
           for (let mut i: i32 = 0; i < 5; i += 1) {{ VEC[i] = (i + seed) % 17; }}
           let mut res: [i32; 80];
           let mut chk: i32 = 0;
           for (let mut rep: i32 = 0; rep < 400; rep += 1) {{
             for (let mut col: i32 = 0; col < 5; col += 1) {{
               let mut row: i32 = 0;
               while (row < {rows}) {{ {body} }}
             }}
             chk += res[rep % {rows}];
           }}
           commit(chk);
           return chk;
         }}"
    )
}

fn report() {
    header("Table 3: manual loop unrolling of the 5x5 matvec kernel");
    let base = |vm| {
        Pipeline::new(OptProfile::sequence(
            "m2r",
            vec!["mem2reg"],
            zkvmopt_passes::PassConfig::default(),
        ))
        .with_x86()
        .run_source(&matvec_src(1), &[5], vm)
        .expect("runs")
    };
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "factor", "x86 time", "SP1 exec", "SP1 prove", "R0 exec", "R0 prove"
    );
    let b_sp1 = base(VmKind::Sp1);
    let b_r0 = base(VmKind::RiscZero);
    for factor in [4usize, 16] {
        let run = |vm| {
            Pipeline::new(OptProfile::sequence(
                "m2r",
                vec!["mem2reg"],
                zkvmopt_passes::PassConfig::default(),
            ))
            .with_x86()
            .run_source(&matvec_src(factor), &[5], vm)
            .expect("runs")
        };
        let sp1 = run(VmKind::Sp1);
        let r0 = run(VmKind::RiscZero);
        println!(
            "{factor:<8} {:>10} {:>12} {:>12} {:>12} {:>12}",
            pct(gain(
                b_r0.x86.as_ref().expect("x86").time_ms,
                r0.x86.as_ref().expect("x86").time_ms
            )),
            pct(gain(b_sp1.exec_ms, sp1.exec_ms)),
            pct(gain(b_sp1.prove_ms, sp1.prove_ms)),
            pct(gain(b_r0.exec_ms, r0.exec_ms)),
            pct(gain(b_r0.prove_ms, r0.prove_ms)),
        );
        // P3: unrolling must reduce executed instructions to pay off.
        assert!(
            r0.exec.instret < b_r0.exec.instret,
            "{factor}x unroll must execute fewer instructions"
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("table3/matvec_16x", |b| {
        let src = matvec_src(16);
        b.iter(|| {
            Pipeline::new(OptProfile::baseline())
                .run_source(&src, &[5], VmKind::RiscZero)
                .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
