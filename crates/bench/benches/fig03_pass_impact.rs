//! Figure 3: impact of the top-25 individual LLVM passes on execution time,
//! proving time, and cycle count, per zkVM (reduced workload set for cargo
//! bench; the report binary runs all 58).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::{bench_workloads, header, impact_matrix, mean_gain, pass_profiles, pct};
use zkvmopt_core::KEY_PASSES;
use zkvmopt_vm::VmKind;

fn report() {
    let workloads = bench_workloads();
    let profiles = pass_profiles(KEY_PASSES);
    let impacts = impact_matrix(&workloads, &profiles, &VmKind::BOTH, false);
    for vm in VmKind::BOTH {
        header(&format!(
            "Figure 3 ({vm}): average gain vs baseline (exec / prove / cycles)"
        ));
        // Rank passes like the paper: by |average impact|.
        let mut rows: Vec<(&str, f64, f64, f64)> = KEY_PASSES
            .iter()
            .map(|p| {
                (
                    *p,
                    mean_gain(&impacts, p, vm, |i| i.exec_gain),
                    mean_gain(&impacts, p, vm, |i| i.prove_gain),
                    mean_gain(&impacts, p, vm, |i| i.cycles_gain),
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        println!(
            "{:<22} {:>9} {:>9} {:>9}",
            "pass", "exec", "prove", "cycles"
        );
        for (p, e, pr, cy) in &rows {
            println!("{p:<22} {:>9} {:>9} {:>9}", pct(*e), pct(*pr), pct(*cy));
        }
        // Paper shape: inline is the best pass; licm is the most harmful.
        let inline_gain = rows.iter().find(|r| r.0 == "inline").expect("inline").1;
        let licm_gain = rows.iter().find(|r| r.0 == "licm").expect("licm").1;
        println!("-> inline {} vs licm {}", pct(inline_gain), pct(licm_gain));
        assert!(
            inline_gain > licm_gain,
            "inline must beat licm on average ({vm})"
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("loop-sum").expect("exists");
    c.bench_function("fig03/single_pass_inline_loop_sum", |b| {
        b.iter(|| {
            zkvmopt_core::measure(
                w,
                &zkvmopt_core::OptProfile::single_pass("inline"),
                VmKind::RiscZero,
                false,
                None,
            )
            .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
