//! Tuner throughput: the island-model autotuning service vs a sequential
//! search at an **equal evaluation budget**.
//!
//! The report partitions the bench workloads into three groups and tunes
//! each group twice through `zkvmopt_tuner::tune_suite` with one pinned
//! seed: once on a single worker thread (the sequential oracle) and once on
//! all cores. Both runs spend exactly the same budget — asserted — and,
//! because the service is deterministic in the seed regardless of thread
//! count, must produce **bit-identical tune databases** — also asserted, on
//! every group. The speedup is therefore pure parallel throughput. The
//! acceptance bar is a ≥2× wall-clock geomean across the groups (CI runners
//! are noisy and may be single-core, so CI sets `ZKVMOPT_SPEEDUP_ADVISORY=1`
//! to report without gating; the determinism and budget gates always hold).
//!
//! A final warm-start pass re-tunes everything against the populated
//! database and asserts **zero** fitness evaluations — the persistent-cache
//! acceptance criterion.
//!
//! Candidate fitness is real: each evaluation clones the workload's lowered
//! module, applies the candidate sequence, compiles to RISC-V, and runs it
//! on the block-dispatch engine with a differential check against the
//! baseline journal (miscompiles score `None`).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::trajectory;
use zkvmopt_core::{BatchEvaluator, SuiteRunner};
use zkvmopt_passes::PassConfig;
use zkvmopt_tuner::{tune_suite, Candidate, EvalResult, ServiceConfig, TuneDb, TuneTarget};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::Workload;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Workload groups tuned as independent suites (small programs: candidate
/// evaluation cost is compile + execute, so tiny kernels keep the bench
/// quick while still exercising the full pipeline).
fn groups() -> Vec<Vec<&'static str>> {
    if trajectory::smoke() {
        vec![
            vec!["loop-sum", "fibonacci"],
            vec!["tailcall", "factorial"],
            vec!["polybench-jacobi-1d", "polybench-trisolv"],
        ]
    } else {
        vec![
            vec!["loop-sum", "fibonacci", "factorial"],
            vec!["tailcall", "polybench-jacobi-1d", "polybench-trisolv"],
            vec!["polybench-atax", "polybench-bicg", "polybench-mvt"],
        ]
    }
}

fn service_config() -> ServiceConfig {
    let scale = if trajectory::smoke() { 1 } else { 2 };
    ServiceConfig {
        islands: 2 * scale,
        population: 4,
        generations: 3 * scale,
        migration_interval: 2,
        threads: 0,
        seed: 0xC0FFEE,
        ..Default::default()
    }
    .with_seed_from_env()
}

struct Group {
    evaluator: BatchEvaluator,
    targets: Vec<TuneTarget>,
}

fn build_groups() -> Vec<Group> {
    let mut runner = SuiteRunner::new();
    groups()
        .iter()
        .map(|names| {
            let ws: Vec<&'static Workload> = names
                .iter()
                .map(|n| zkvmopt_workloads::by_name(n).expect("bench workload exists"))
                .collect();
            let evaluator = runner
                .batch_evaluator(&ws, VmKind::RiscZero)
                .expect("bench workloads compile");
            let targets = evaluator.tune_targets();
            Group { evaluator, targets }
        })
        .collect()
}

fn fitness(g: &Group) -> impl Fn(usize, &Candidate) -> EvalResult + Sync + '_ {
    |widx, c: &Candidate| {
        let cfg = PassConfig {
            inline_threshold: c.inline_threshold,
            unroll_threshold: c.unroll_threshold,
            ..PassConfig::default()
        };
        g.evaluator
            .eval_classified(widx, &c.passes, &cfg)
            .map_err(|e| e.class())
    }
}

fn tune(g: &Group, cfg: &ServiceConfig, db: &mut TuneDb) -> zkvmopt_tuner::ServiceReport {
    tune_suite(cfg, &g.targets, db, fitness(g))
}

fn report(suite: &[Group]) {
    zkvmopt_bench::header(
        "Tuner throughput: island-model service vs sequential search (equal budget)",
    );
    let cfg = service_config();
    let sequential = ServiceConfig {
        threads: 1,
        ..cfg.clone()
    };
    println!(
        "config: {} islands x {} population x {} generations = {} evals/workload, seed {:#x}",
        cfg.islands,
        cfg.population,
        cfg.generations,
        cfg.budget_per_workload(),
        cfg.seed
    );

    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>9}",
        "group", "evals", "1-thread ms", "service ms", "speedup"
    );
    let mut speedups = Vec::new();
    let mut total_fitness_evals = 0usize;
    let mut total_cache_hits = 0usize;
    let mut dbs: Vec<TuneDb> = Vec::new();
    for (gi, g) in suite.iter().enumerate() {
        let t = std::time::Instant::now();
        let mut seq_db = TuneDb::in_memory();
        let seq = tune(g, &sequential, &mut seq_db);
        let seq_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = std::time::Instant::now();
        let mut par_db = TuneDb::in_memory();
        let par = tune(g, &cfg, &mut par_db);
        let par_ms = t.elapsed().as_secs_f64() * 1e3;

        // Equal budget, and — same seed — bit-identical results: thread
        // count must influence wall-clock only.
        assert_eq!(
            seq.evaluated, par.evaluated,
            "group {gi}: budgets must match"
        );
        assert_eq!(
            seq.evaluated,
            g.targets.len() * cfg.budget_per_workload(),
            "group {gi}: budget must be islands x population x generations"
        );
        assert_eq!(
            seq_db.to_string_pretty(),
            par_db.to_string_pretty(),
            "group {gi}: tune database must not depend on thread count"
        );

        let speedup = seq_ms / par_ms;
        let names: Vec<&str> = g.targets.iter().map(|t| t.name.as_str()).collect();
        println!(
            "{:<28} {:>9} {seq_ms:>12.1} {par_ms:>12.1} {speedup:>8.2}x",
            names.join("+"),
            par.evaluated
        );
        speedups.push(speedup);
        total_fitness_evals += par.fitness_evals;
        total_cache_hits += par.cache_hits;
        dbs.push(par_db);
    }
    let g = geomean(&speedups);
    let evaluated: usize = suite
        .iter()
        .map(|g| g.targets.len() * cfg.budget_per_workload())
        .sum();
    let hit_rate = total_cache_hits as f64 / evaluated as f64;
    println!("\ngeomean service speedup at equal budget: {g:.2}x");
    println!(
        "cache: {total_cache_hits}/{evaluated} budget served by the sharded cache ({:.0}%)",
        hit_rate * 100.0
    );

    // Warm start: the populated databases answer every workload with zero
    // fitness evaluations — the persistent-cache acceptance gate.
    let mut warm_hits = 0usize;
    for (g, db) in suite.iter().zip(&mut dbs) {
        let warm = tune(g, &cfg, db);
        assert_eq!(
            warm.fitness_evals, 0,
            "warm start must perform zero redundant fitness evaluations"
        );
        assert_eq!(warm.evaluated, 0, "warm start must spend no budget");
        assert_eq!(warm.db_hits, g.targets.len());
        warm_hits += warm.db_hits;
    }
    println!("warm start: {warm_hits} workloads answered from the tune db, 0 fitness evals");

    trajectory::record(
        "tuner_throughput",
        &[
            ("geomean_speedup", g),
            ("groups", suite.len() as f64),
            (
                "workloads",
                suite.iter().map(|g| g.targets.len()).sum::<usize>() as f64,
            ),
            ("budget_per_workload", cfg.budget_per_workload() as f64),
            ("evaluated", evaluated as f64),
            ("fitness_evals", total_fitness_evals as f64),
            ("cache_hit_rate", hit_rate),
            ("warm_start_db_hits", warm_hits as f64),
        ],
    );

    // Wall-clock ratios are noisy (and meaningless on single-core runners);
    // CI sets ZKVMOPT_SPEEDUP_ADVISORY=1 to report without gating, and
    // machines with fewer than 4 cores cannot demonstrate a 2x parallel
    // speedup at all, so they self-downgrade. The determinism / budget /
    // warm-start asserts above always gate.
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if std::env::var("ZKVMOPT_SPEEDUP_ADVISORY").is_ok_and(|v| v == "1") || cores < 4 {
        if g < 2.0 {
            eprintln!(
                "ADVISORY: geomean {g:.2}x below the 2x bar ({cores} cores; noisy or small runner?)"
            );
        }
    } else {
        assert!(
            g >= 2.0,
            "island service must be >=2x sequential at equal budget (got {g:.2}x)"
        );
    }
}

fn bench(c: &mut Criterion) {
    let suite = build_groups();
    report(&suite);
    let cfg = service_config();
    c.bench_function("tuner/service-group0", |b| {
        b.iter(|| {
            let mut db = TuneDb::in_memory();
            tune(&suite[0], &cfg, &mut db).evaluated
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
