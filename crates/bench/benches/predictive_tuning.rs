//! Predictive tuning: feature-indexed tune database with O(1) pass-sequence
//! prediction, evaluated leave-one-out over the workload suite.
//!
//! The report tunes the suite once (predictor off) to populate an in-memory
//! schema-2 tune database — every entry carries the workload's structural
//! [`FeatureVector`] and its unoptimized baseline — then answers three
//! questions:
//!
//! 1. **Leave-one-out quality.** For each workload the predictor is rebuilt
//!    from the database *minus that workload's own entry*, predicts a pass
//!    sequence from features alone (zero engine cycles: `predict` consumes
//!    only the database and the feature vector — the fitness closure is
//!    never invoked), and the predicted candidate is then measured once.
//!    Gates: geomean(predicted / fully-tuned) ≤ 1.10 and
//!    geomean(predicted / -O3) < 1.0 — the prediction must land within 10%
//!    of a full search and strictly beat the canonical -O3 pipeline.
//! 2. **Prediction latency.** Criterion measures `Predictor::predict` per
//!    program — a k-NN vote over the database, no compilation, no engine.
//! 3. **Service throughput, predictor on vs off.** The suite is split in
//!    half: the first half's tuned entries form the database, then the
//!    second half is tuned against a copy of it with `predict: false` (full
//!    island search) and `predict: true` (predict-first). Programs/sec for
//!    both are reported along with the predicted-hit rate, and — one pinned
//!    seed, 1-thread vs all-cores — the predict-first databases must be
//!    bit-identical (always asserted).
//!
//! Wall-clock ratios are advisory on small runners; the leave-one-out
//! geomean gates and the determinism gate always hold.

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::trajectory;
use zkvmopt_core::{BatchEvaluator, SuiteRunner};
use zkvmopt_tuner::{tune_suite, Predictor, ServiceConfig, TuneDb, TuneDbEntry, TuneTarget};
use zkvmopt_vm::VmKind;
use zkvmopt_workloads::Workload;

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Smoke mode keeps the suite small enough for `cargo bench -- --test`;
/// the full run goes leave-one-out over the whole 58-program suite.
fn suite_workloads() -> Vec<&'static Workload> {
    if trajectory::smoke() {
        // Interleaved so the half-split (knowledge base vs predicted) puts
        // relatives of every program on both sides.
        [
            "loop-sum",
            "polybench-jacobi-1d",
            "polybench-atax",
            "fibonacci",
            "factorial",
            "tailcall",
            "polybench-trisolv",
            "polybench-bicg",
        ]
        .iter()
        .map(|n| zkvmopt_workloads::by_name(n).expect("bench workload exists"))
        .collect()
    } else {
        zkvmopt_workloads::all().iter().collect()
    }
}

fn service_config(predict: bool, threads: usize) -> ServiceConfig {
    ServiceConfig {
        islands: 2,
        population: 4,
        generations: 2,
        migration_interval: 2,
        threads,
        seed: 0xC0FFEE,
        predict,
        ..Default::default()
    }
    .with_seed_from_env()
}

fn build_evaluator(ws: &[&'static Workload]) -> BatchEvaluator {
    SuiteRunner::new()
        .batch_evaluator(ws, VmKind::RiscZero)
        .expect("bench workloads compile")
}

/// Tune `targets[lo..hi]` into `db`. The fitness closure re-bases workload
/// indices so a sub-range of the suite still addresses the right program.
fn tune_range(
    ev: &BatchEvaluator,
    targets: &[TuneTarget],
    lo: usize,
    hi: usize,
    cfg: &ServiceConfig,
    db: &mut TuneDb,
) -> zkvmopt_tuner::ServiceReport {
    let fitness = ev.classified_fitness();
    tune_suite(cfg, &targets[lo..hi], db, |widx, c| fitness(lo + widx, c))
}

/// Known-good -O3-family candidates measured when flooring the database:
/// the canonical pipeline, the pipeline with its cleanup tail re-run (the
/// `o3_fixpoint` idea — the fixed tail does not always converge), and both
/// at the paper's §6.1 zkVM-aware thresholds. Four evaluations per program,
/// and the per-program winner differs — exactly the variation a k-NN
/// predictor exists to transfer.
fn o3_family() -> Vec<zkvmopt_tuner::Candidate> {
    let o3 = zkvmopt_tuner::predict::o3_fallback();
    let tail = ["gvn", "dse", "instcombine", "adce", "simplifycfg"];
    let mut o3_tail = o3.passes.clone();
    o3_tail.extend(tail);
    let o3_tail = zkvmopt_tuner::canonicalize_sequence(&o3_tail);
    let mut family = vec![
        o3.clone(),
        zkvmopt_tuner::Candidate {
            passes: o3_tail.clone(),
            ..o3.clone()
        },
    ];
    // The paper's §6.1 zk-aware thresholds: inline far past the hardware
    // default (zkVMs pay no icache penalty), unroll more aggressively.
    for passes in [o3.passes.clone(), o3_tail] {
        family.push(zkvmopt_tuner::Candidate {
            passes,
            inline_threshold: 4328,
            unroll_threshold: 512,
        });
    }
    family
}

/// Floor `targets[lo..hi]`'s entries at the best of the -O3 family: a
/// handful of measurements each, recorded only where they beat the searched
/// best. A production database is bootstrapped the same way — the -O3
/// pipeline and its zk-aware threshold variants are known-good candidates
/// that cost a few evaluations, while the island search explores short
/// specialized sequences rather than rediscovering the 28-pass pipeline.
fn record_o3_floor(
    ev: &BatchEvaluator,
    targets: &[TuneTarget],
    lo: usize,
    hi: usize,
    db: &mut TuneDb,
) {
    let family = o3_family();
    for (i, t) in targets.iter().enumerate().take(hi).skip(lo) {
        for c in &family {
            if let Some(cycles) = ev.eval(i, &c.passes, &c.pass_config()) {
                db.record(TuneDbEntry {
                    fingerprint: t.fingerprint,
                    passes: c.passes.iter().map(|p| (*p).to_string()).collect(),
                    inline_threshold: c.inline_threshold,
                    unroll_threshold: c.unroll_threshold,
                    cycles,
                    baseline_cycles: t.baseline_cycles.unwrap_or(0),
                    features: t
                        .features
                        .as_ref()
                        .map(|f| f.as_slice().to_vec())
                        .unwrap_or_default(),
                });
            }
        }
    }
}

/// Copy a database by replaying its entries into a fresh in-memory one.
fn clone_db(db: &TuneDb) -> TuneDb {
    let mut out = TuneDb::in_memory();
    for e in db.iter() {
        out.record(e.clone());
    }
    out
}

struct LeaveOneOut {
    vs_tuned: Vec<f64>,
    vs_o3: Vec<f64>,
    fallbacks: usize,
}

/// Leave-one-out: rebuild the predictor without workload `i`'s entry,
/// predict from features alone, then measure the predicted candidate once.
fn leave_one_out(
    ev: &BatchEvaluator,
    targets: &[TuneTarget],
    db: &TuneDb,
    k: usize,
) -> LeaveOneOut {
    let mut r = LeaveOneOut {
        vs_tuned: Vec::new(),
        vs_o3: Vec::new(),
        fallbacks: 0,
    };
    for (i, t) in targets.iter().enumerate() {
        let predictor = Predictor::from_db_excluding(db, k, Some(t.fingerprint));
        let p = predictor.predict(ev.features(i));
        r.fallbacks += p.fallback as usize;
        let cfg = p.candidate.pass_config();
        // One measurement of the predicted sequence; a predicted candidate
        // that fails to validate falls back to the -O3 profile's cycles.
        let predicted = ev
            .eval(i, &p.candidate.passes, &cfg)
            .unwrap_or_else(|| ev.o3_cycles(i));
        let tuned = db.get(t.fingerprint).expect("suite was tuned").cycles;
        let o3 = ev.o3_cycles(i);
        r.vs_tuned.push(predicted as f64 / tuned as f64);
        r.vs_o3.push(predicted as f64 / o3 as f64);
    }
    r
}

fn report(ev: &BatchEvaluator, targets: &[TuneTarget]) -> TuneDb {
    zkvmopt_bench::header("Predictive tuning: leave-one-out k-NN prediction vs full search");
    let n = targets.len();
    let half = n / 2;
    let cfg_off = service_config(false, 0);
    println!(
        "suite: {n} programs, budget {} evals/workload, k = {}, seed {:#x}",
        cfg_off.budget_per_workload(),
        cfg_off.predict_k,
        cfg_off.seed
    );

    // Phase 1: tune the first half cold — the knowledge base for the
    // predictor-on-vs-off comparison.
    let mut db_a = TuneDb::in_memory();
    tune_range(ev, targets, 0, half, &cfg_off, &mut db_a);
    record_o3_floor(ev, targets, 0, half, &mut db_a);

    // Phase 2: tune the second half against a copy of that database, with
    // the predictor off (full search) and on (predict-first), same seed.
    let mut db_off = clone_db(&db_a);
    let t = std::time::Instant::now();
    tune_range(ev, targets, half, n, &cfg_off, &mut db_off);
    let off_s = t.elapsed().as_secs_f64();
    record_o3_floor(ev, targets, half, n, &mut db_off);

    let cfg_on = service_config(true, 0);
    let mut db_on = clone_db(&db_a);
    let t = std::time::Instant::now();
    let rep_on = tune_range(ev, targets, half, n, &cfg_on, &mut db_on);
    let on_s = t.elapsed().as_secs_f64();

    // Determinism gate: predict-first on one thread must produce a
    // bit-identical database to the all-cores run above.
    let cfg_on1 = service_config(true, 1);
    let mut db_on1 = clone_db(&db_a);
    tune_range(ev, targets, half, n, &cfg_on1, &mut db_on1);
    assert_eq!(
        db_on.to_string_pretty(),
        db_on1.to_string_pretty(),
        "predict-first tune database must not depend on thread count"
    );

    let cold = (n - half) as f64;
    let hit_rate = rep_on.predicted_hits as f64 / cold;
    println!(
        "service, second half ({} programs): predictor off {:.1}/s, on {:.1}/s ({:.2}x), \
         {} / {} predicted hits",
        n - half,
        cold / off_s,
        cold / on_s,
        off_s / on_s,
        rep_on.predicted_hits,
        n - half
    );

    // Phase 3: leave-one-out over the full suite. `db_off` now holds every
    // program's fully-tuned entry (first half + second half, predictor off
    // throughout), so excluding one fingerprint leaves n-1 neighbours.
    let db_full = db_off;
    assert_eq!(db_full.len(), n, "every program tuned");
    let loo = leave_one_out(ev, targets, &db_full, cfg_off.predict_k);
    let g_tuned = geomean(&loo.vs_tuned);
    let g_o3 = geomean(&loo.vs_o3);
    println!(
        "leave-one-out ({n} programs): predicted/tuned geomean {g_tuned:.4}, \
         predicted/-O3 geomean {g_o3:.4}, {} fallback(s)",
        loo.fallbacks
    );

    trajectory::record(
        "predictive_tuning",
        &[
            ("programs", n as f64),
            ("predicted_vs_tuned_geomean", g_tuned),
            ("predicted_vs_o3_geomean", g_o3),
            ("predicted_hit_rate", hit_rate),
            ("loo_fallbacks", loo.fallbacks as f64),
            ("service_speedup_predict_on", off_s / on_s),
            ("budget_per_workload", cfg_off.budget_per_workload() as f64),
        ],
    );

    // The acceptance gates: within 10% of the full search, strictly better
    // than the canonical -O3 pipeline. Cycle counts are deterministic, so
    // these gate unconditionally (no wall-clock noise involved).
    assert!(
        g_tuned <= 1.10,
        "predicted sequences must land within 10% of fully-tuned (geomean {g_tuned:.4})"
    );
    assert!(
        g_o3 < 1.0,
        "predicted sequences must strictly beat -O3 (geomean {g_o3:.4})"
    );
    db_full
}

fn bench(c: &mut Criterion) {
    let ws = suite_workloads();
    let ev = build_evaluator(&ws);
    let targets = ev.tune_targets();
    let db = report(&ev, &targets);

    // Prediction latency: one k-NN vote per program, no engine, no compile.
    let predictor = Predictor::from_db(&db, service_config(false, 0).predict_k);
    c.bench_function("predict/knn-vote", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = predictor.predict(ev.features(i % ev.len()));
            i += 1;
            p.candidate.passes.len()
        })
    });
    c.bench_function("predict/fit", |b| {
        b.iter(|| Predictor::from_db(&db, 3).len())
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
