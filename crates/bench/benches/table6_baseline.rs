//! Table 6: baseline execution and proving time statistics over the whole
//! suite (modelled milliseconds; the paper's convention of min/max/mean/
//! median per zkVM).

use criterion::{criterion_group, criterion_main, Criterion};
use zkvmopt_bench::header;
use zkvmopt_core::{OptProfile, Pipeline};
use zkvmopt_stats::summarize;
use zkvmopt_vm::VmKind;

fn report() {
    header("Table 6: baseline statistics across all 58 programs (modelled seconds)");
    println!(
        "{:<10} {:<8} {:>10} {:>10} {:>10} {:>10}",
        "zkVM", "metric", "min", "max", "mean", "median"
    );
    for vm in VmKind::BOTH {
        let mut exec = Vec::new();
        let mut prove = Vec::new();
        for w in zkvmopt_workloads::all() {
            let r = Pipeline::new(OptProfile::baseline())
                .run_workload(w, vm)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            exec.push(r.exec_ms / 1e3);
            prove.push(r.prove_ms / 1e3);
        }
        let e = summarize(&exec);
        let p = summarize(&prove);
        println!(
            "{:<10} {:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            vm.name(),
            "exec",
            e.min,
            e.max,
            e.mean,
            e.median
        );
        println!(
            "{:<10} {:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            vm.name(),
            "prove",
            p.min,
            p.max,
            p.mean,
            p.median
        );
        // Shape: proving is much slower than execution across the suite.
        assert!(p.mean > e.mean, "{vm}: proving must dominate execution");
    }
}

fn bench(c: &mut Criterion) {
    report();
    let w = zkvmopt_workloads::by_name("polybench-atax").expect("exists");
    c.bench_function("table6/baseline_atax", |b| {
        b.iter(|| {
            Pipeline::new(OptProfile::baseline())
                .run_workload(w, VmKind::Sp1)
                .expect("runs")
        })
    });
}

criterion_group! { name = benches; config = Criterion::default().sample_size(10); targets = bench }
criterion_main!(benches);
