//! Structured pipeline errors — the service boundary's failure taxonomy.
//!
//! A tuning service evaluates *untrusted* candidate pipelines on untrusted
//! program text, thousands of times per run. Every way an evaluation can go
//! wrong is an expected input, not an exceptional condition, so the whole
//! lower → passes → codegen → engine chain reports failures as values of
//! one taxonomy instead of panicking or stringifying:
//!
//! | Variant | Stage | Meaning |
//! |---|---|---|
//! | [`PipelineError::Parse`] | frontend | the program text does not lex/parse/lower |
//! | [`PipelineError::Verify`] | passes | the IR failed verification (a pass bug) |
//! | [`PipelineError::Codegen`] | backend | instruction selection / emission rejected the module |
//! | [`PipelineError::Trap`] | engine | the guest faulted (bad memory access, wild jump) |
//! | [`PipelineError::Budget`] | engine | the per-candidate cycle budget was exhausted |
//! | [`PipelineError::Divergence`] | oracle | observable behaviour differs from the baseline — a miscompile |
//! | [`PipelineError::Panic`] | anywhere | a bug escaped as a panic and was caught at the isolation boundary |
//!
//! [`PipelineError::class`] projects each variant onto the tuner's payload-
//! free [`FailureClass`], which is what the fitness cache, quarantine log
//! and checkpoint files store; [`FailureClass::is_transient`] drives the
//! service's bounded-retry policy (panics, traps and budget blowouts are
//! retried, deterministic compile-stage failures never are).

use std::fmt;
use zkvmopt_tuner::FailureClass;

/// Any failure along the candidate-evaluation pipeline. See the module docs
/// for the full taxonomy and how each variant maps onto a retry/quarantine
/// decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The program text failed in the frontend (lex, parse, type, lower).
    Parse {
        /// 1-based source line (0 when no location is known).
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// The IR failed verification after the candidate's passes ran —
    /// evidence of a pass bug, not of a bad program.
    Verify {
        /// The verifier's diagnosis.
        message: String,
    },
    /// Instruction selection or emission rejected the module.
    Codegen {
        /// The backend's diagnosis.
        message: String,
    },
    /// The guest trapped at runtime (memory fault, jump outside code).
    Trap {
        /// The engine's diagnosis.
        message: String,
    },
    /// The guest exhausted its cycle budget.
    Budget {
        /// The budget that was exceeded.
        limit: u64,
    },
    /// The candidate changed observable behaviour (journal or exit code)
    /// versus the baseline oracle — the miscompile class the paper's
    /// autotuner surfaced in SP1.
    Divergence,
    /// A panic escaped some pipeline stage and was caught at the
    /// `catch_unwind` isolation boundary.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl PipelineError {
    /// The payload-free classification of this error — what the tuning
    /// service caches, quarantines, and checkpoints.
    pub fn class(&self) -> FailureClass {
        match self {
            PipelineError::Parse { .. } => FailureClass::Parse,
            PipelineError::Verify { .. } => FailureClass::Verify,
            PipelineError::Codegen { .. } => FailureClass::Codegen,
            PipelineError::Trap { .. } => FailureClass::Trap,
            PipelineError::Budget { .. } => FailureClass::Budget,
            PipelineError::Divergence => FailureClass::Divergence,
            PipelineError::Panic { .. } => FailureClass::Panic,
        }
    }

    /// Classify an engine failure against the budget it ran under.
    pub fn from_exec(e: zkvmopt_vm::ExecError, limit: u64) -> PipelineError {
        match e {
            zkvmopt_vm::ExecError::CycleLimit => PipelineError::Budget { limit },
            other => PipelineError::Trap {
                message: other.to_string(),
            },
        }
    }

    /// Rehydrate a caught panic payload into [`PipelineError::Panic`].
    pub fn from_panic(payload: Box<dyn std::any::Any + Send>) -> PipelineError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        PipelineError::Panic { message }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            PipelineError::Verify { message } => write!(f, "IR verification failed: {message}"),
            PipelineError::Codegen { message } => write!(f, "codegen error: {message}"),
            PipelineError::Trap { message } => write!(f, "guest trap: {message}"),
            PipelineError::Budget { limit } => {
                write!(f, "cycle budget exhausted (limit {limit})")
            }
            PipelineError::Divergence => {
                write!(f, "observable behaviour diverged from the baseline")
            }
            PipelineError::Panic { message } => write!(f, "caught panic: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<zkvmopt_lang::CompileError> for PipelineError {
    fn from(e: zkvmopt_lang::CompileError) -> PipelineError {
        // The frontend reports its own internal IR-verification failures
        // with an `internal:` prefix on line 0; everything else is the
        // program's fault.
        if e.line == 0 && e.message.starts_with("internal:") {
            PipelineError::Verify { message: e.message }
        } else {
            PipelineError::Parse {
                line: e.line,
                message: e.message,
            }
        }
    }
}

impl From<zkvmopt_riscv::CodegenError> for PipelineError {
    fn from(e: zkvmopt_riscv::CodegenError) -> PipelineError {
        PipelineError::Codegen {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_classes_onto_the_tuner_taxonomy() {
        let cases: Vec<(PipelineError, FailureClass)> = vec![
            (
                PipelineError::Parse {
                    line: 3,
                    message: "x".into(),
                },
                FailureClass::Parse,
            ),
            (
                PipelineError::Verify {
                    message: "v".into(),
                },
                FailureClass::Verify,
            ),
            (
                PipelineError::Codegen {
                    message: "c".into(),
                },
                FailureClass::Codegen,
            ),
            (
                PipelineError::Trap {
                    message: "t".into(),
                },
                FailureClass::Trap,
            ),
            (PipelineError::Budget { limit: 9 }, FailureClass::Budget),
            (PipelineError::Divergence, FailureClass::Divergence),
            (
                PipelineError::Panic {
                    message: "p".into(),
                },
                FailureClass::Panic,
            ),
        ];
        assert_eq!(cases.len(), FailureClass::ALL.len(), "taxonomy covered");
        for (e, class) in cases {
            assert_eq!(e.class(), class, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn exec_errors_split_into_budget_and_trap() {
        let b = PipelineError::from_exec(zkvmopt_vm::ExecError::CycleLimit, 1000);
        assert_eq!(b, PipelineError::Budget { limit: 1000 });
        let t = PipelineError::from_exec(zkvmopt_vm::ExecError::BadPc { pc: 7 }, 1000);
        assert_eq!(t.class(), FailureClass::Trap);
        let m = PipelineError::from_exec(zkvmopt_vm::ExecError::MemFault { addr: 4, pc: 2 }, 1000);
        assert_eq!(m.class(), FailureClass::Trap);
    }

    #[test]
    fn compile_errors_split_into_parse_and_verify() {
        let p: PipelineError = zkvmopt_lang::CompileError {
            line: 12,
            message: "expected `;`".into(),
        }
        .into();
        assert_eq!(p.class(), FailureClass::Parse);
        assert!(p.to_string().contains("line 12"));
        let v: PipelineError = zkvmopt_lang::CompileError {
            line: 0,
            message: "internal: dominance violated".into(),
        }
        .into();
        assert_eq!(v.class(), FailureClass::Verify);
    }

    #[test]
    fn panic_payloads_rehydrate_to_their_message() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 1)).unwrap_err();
        assert_eq!(
            PipelineError::from_panic(p),
            PipelineError::Panic {
                message: "boom 1".into()
            }
        );
        let q = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(
            PipelineError::from_panic(q),
            PipelineError::Panic {
                message: "opaque panic payload".into()
            }
        );
    }
}
