//! # zkvmopt-core
//!
//! The study driver: optimization profiles, the compile→execute→prove→native
//! pipeline, and the measurement matrices every table and figure in the paper
//! is regenerated from.
//!
//! ## Example
//!
//! ```
//! use zkvmopt_core::{OptProfile, Pipeline};
//! use zkvmopt_vm::VmKind;
//!
//! let src = "fn main() -> i32 { let mut s: i32 = 0;
//!            for (let mut i: i32 = 0; i < 50; i += 1) { s += i; }
//!            commit(s); return s; }";
//! let base = Pipeline::new(OptProfile::baseline())
//!     .run_source(src, &[], VmKind::RiscZero).unwrap();
//! let o3 = Pipeline::new(OptProfile::level(zkvmopt_passes::OptLevel::O3))
//!     .run_source(src, &[], VmKind::RiscZero).unwrap();
//! assert_eq!(base.exec.journal, o3.exec.journal);
//! assert!(o3.exec.total_cycles < base.exec.total_cycles);
//! ```

use serde::Serialize;
use std::fmt;
use zkvmopt_ir::Module;
use zkvmopt_passes::{PassConfig, PassManager};
use zkvmopt_prover::ProvingModel;
use zkvmopt_riscv::TargetCostModel;
use zkvmopt_vm::{DecodedProgram, Engine, ExecConfig, ExecutionReport, VmKind, VmProfile};
use zkvmopt_workloads::Workload;
use zkvmopt_x86sim::{run_x86, X86Model, X86Report};

pub mod batch;
pub mod error;
pub mod suite;

pub use batch::{BatchEvaluator, BatchJob};
pub use error::PipelineError;
pub use suite::{MatrixCell, SuiteRunner};
pub use zkvmopt_passes::OptLevel;

/// How a profile transforms the module.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileKind {
    /// No passes at all (the paper's *baseline* with MIR opts off).
    Baseline,
    /// A standard `-Ox` pipeline.
    Level(OptLevel),
    /// One pass applied in isolation (the RQ1 axis).
    SinglePass(&'static str),
    /// An explicit pass sequence (autotuner output, RQ2).
    Sequence(Vec<&'static str>),
    /// The paper's zkVM-aware `-O3` (§6.1: modified cost model, adjusted
    /// heuristics, hardware-only passes dropped).
    ZkAwareO3,
}

/// A named optimization profile: passes + pass parameters + backend cost
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct OptProfile {
    /// Display name (used in tables/figures).
    pub name: String,
    /// What to run.
    pub kind: ProfileKind,
    /// Pass parameters.
    pub pass_config: PassConfig,
    /// Instruction-selection cost model.
    pub backend: TargetCostModel,
}

impl OptProfile {
    /// The unoptimized baseline.
    pub fn baseline() -> OptProfile {
        OptProfile {
            name: "baseline".into(),
            kind: ProfileKind::Baseline,
            pass_config: PassConfig::default(),
            backend: TargetCostModel::cpu(),
        }
    }

    /// A standard optimization level.
    pub fn level(level: OptLevel) -> OptProfile {
        OptProfile {
            name: level.flag().to_string(),
            kind: ProfileKind::Level(level),
            pass_config: PassConfig::default(),
            backend: TargetCostModel::cpu(),
        }
    }

    /// One pass in isolation.
    pub fn single_pass(pass: &'static str) -> OptProfile {
        OptProfile {
            name: pass.to_string(),
            kind: ProfileKind::SinglePass(pass),
            pass_config: PassConfig::default(),
            backend: TargetCostModel::cpu(),
        }
    }

    /// An explicit sequence (autotuner candidates).
    pub fn sequence(
        name: impl Into<String>,
        passes: Vec<&'static str>,
        cfg: PassConfig,
    ) -> OptProfile {
        OptProfile {
            name: name.into(),
            kind: ProfileKind::Sequence(passes),
            pass_config: cfg,
            backend: TargetCostModel::cpu(),
        }
    }

    /// The zkVM-aware `-O3` of §6.1.
    pub fn zk_o3() -> OptProfile {
        OptProfile {
            name: "zk-O3".into(),
            kind: ProfileKind::ZkAwareO3,
            pass_config: PassConfig::zk_aware(),
            backend: TargetCostModel::zk(),
        }
    }

    /// A content-derived cache key: two profiles with equal keys produce the
    /// same code from the same module. Deliberately ignores `name`, so the
    /// autotuner's identically-named candidates never collide in the
    /// [`SuiteRunner`] cache.
    pub fn cache_key(&self) -> String {
        format!("{:?}|{:?}|{:?}", self.kind, self.pass_config, self.backend)
    }

    /// Apply this profile to a module. Pipelines (levels, sequences, zk-O3)
    /// run through the analysis-cached [`PassManager`]; a single pass has no
    /// cross-pass reuse to exploit and keeps the direct path.
    pub fn apply(&self, m: &mut Module) {
        let cfg = &self.pass_config;
        match &self.kind {
            ProfileKind::Baseline => {}
            ProfileKind::Level(l) => {
                PassManager::for_level(*l).run(m, cfg);
            }
            ProfileKind::SinglePass(p) => {
                zkvmopt_passes::run_pass(p, m, cfg);
            }
            ProfileKind::Sequence(ps) => {
                PassManager::from_names(ps.iter().copied()).run(m, cfg);
            }
            ProfileKind::ZkAwareO3 => {
                PassManager::zk_o3().run(m, cfg);
            }
        }
    }
}

/// Study failures.
#[derive(Debug, Clone)]
pub enum StudyError {
    /// Frontend failure.
    Compile(String),
    /// Codegen failure.
    Codegen(String),
    /// Guest execution failure.
    Exec(String),
    /// The optimized program's observable behaviour diverged from the
    /// baseline oracle (the class of bug the paper found in SP1!).
    Miscompile { workload: String, profile: String },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Compile(e) => write!(f, "compile error: {e}"),
            StudyError::Codegen(e) => write!(f, "codegen error: {e}"),
            StudyError::Exec(e) => write!(f, "execution error: {e}"),
            StudyError::Miscompile { workload, profile } => {
                write!(f, "MISCOMPILE: {profile} changed behaviour of {workload}")
            }
        }
    }
}

impl std::error::Error for StudyError {}

/// Everything measured from one (program, profile, VM) run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// zkVM execution report (cycles, instret, paging, journal, …).
    pub exec: ExecutionReport,
    /// Modelled proving time (ms).
    pub prove_ms: f64,
    /// Modelled zkVM execution (replay) time (ms).
    pub exec_ms: f64,
    /// x86 run (when requested).
    pub x86: Option<X86Report>,
    /// Static code size (instructions).
    pub code_size: usize,
    /// Spilled virtual registers (codegen statistic, Fig. 11).
    pub spilled_vregs: u32,
}

/// Compile-and-run pipeline for one profile.
#[derive(Debug, Clone)]
pub struct Pipeline {
    profile: OptProfile,
    /// Also run the x86 timing model.
    pub with_x86: bool,
    /// Guest cycle budget.
    pub max_cycles: u64,
}

impl Pipeline {
    /// A pipeline for `profile`.
    pub fn new(profile: OptProfile) -> Pipeline {
        Pipeline {
            profile,
            with_x86: false,
            max_cycles: 2_000_000_000,
        }
    }

    /// Enable the x86 timing model (RQ3).
    pub fn with_x86(mut self) -> Pipeline {
        self.with_x86 = true;
        self
    }

    /// The profile this pipeline runs.
    pub fn profile(&self) -> &OptProfile {
        &self.profile
    }

    /// Compile source through the profile to a linked program.
    ///
    /// # Errors
    /// Returns [`StudyError`] on frontend or codegen failures.
    pub fn compile(&self, src: &str) -> Result<zkvmopt_riscv::Program, StudyError> {
        let mut m =
            zkvmopt_lang::compile_guest(src).map_err(|e| StudyError::Compile(e.to_string()))?;
        self.profile.apply(&mut m);
        zkvmopt_riscv::compile_module(&m, &self.profile.backend)
            .map_err(|e| StudyError::Codegen(e.to_string()))
    }

    /// Compile and execute on `vm`, returning the full report.
    ///
    /// # Errors
    /// Returns [`StudyError`] on any stage failure.
    pub fn run_source(
        &self,
        src: &str,
        inputs: &[i32],
        vm: VmKind,
    ) -> Result<RunReport, StudyError> {
        let program = self.compile(src)?;
        let decoded = DecodedProgram::decode(&program);
        let config = ExecConfig {
            inputs: inputs.to_vec(),
            max_cycles: self.max_cycles,
        };
        let exec = Engine::new(&decoded, VmProfile::for_kind(vm), config)
            .run()
            .map_err(|e| StudyError::Exec(e.to_string()))?;
        let model = ProvingModel::for_kind(vm);
        let prove_ms = model.proving_time_ms(&exec);
        let exec_ms = exec.exec_time_ms;
        let x86 = if self.with_x86 {
            Some(
                run_x86(&program, &X86Model::default(), inputs)
                    .map_err(|e| StudyError::Exec(e.to_string()))?,
            )
        } else {
            None
        };
        Ok(RunReport {
            exec,
            prove_ms,
            exec_ms,
            x86,
            code_size: program.len(),
            spilled_vregs: program.spilled_vregs,
        })
    }

    /// Run a suite workload.
    ///
    /// # Errors
    /// Returns [`StudyError`] on any stage failure.
    pub fn run_workload(&self, w: &Workload, vm: VmKind) -> Result<RunReport, StudyError> {
        self.run_source(&w.source, &w.inputs, vm)
    }
}

/// One row of the study matrix (serializable for EXPERIMENTS.md artifacts).
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// Profile name.
    pub profile: String,
    /// VM name.
    pub vm: String,
    /// Total cycles (the paper's "cycle count").
    pub cycles: u64,
    /// Dynamic instruction count.
    pub instret: u64,
    /// Paging cycles (0-modelled on SP1's public metrics).
    pub paging_cycles: u64,
    /// Modelled zkVM execution time (ms).
    pub exec_ms: f64,
    /// Modelled proving time (ms).
    pub prove_ms: f64,
    /// Segments / shards.
    pub segments: u64,
    /// Modelled native x86 time (ms), when measured.
    pub x86_ms: Option<f64>,
    /// Static code size.
    pub code_size: usize,
    /// Spilled virtual registers.
    pub spilled_vregs: u32,
}

/// Run `profile` on `workload`/`vm`, verifying observable behaviour against
/// the supplied baseline run (when given).
///
/// # Errors
/// Returns [`StudyError::Miscompile`] when the journal or exit code diverge
/// from the baseline — the exact failure class of the paper's SP1 bug.
pub fn measure(
    w: &Workload,
    profile: &OptProfile,
    vm: VmKind,
    with_x86: bool,
    baseline: Option<&RunReport>,
) -> Result<(Measurement, RunReport), StudyError> {
    let mut p = Pipeline::new(profile.clone());
    if with_x86 {
        p = p.with_x86();
    }
    let r = p.run_workload(w, vm)?;
    if let Some(b) = baseline {
        if r.exec.journal != b.exec.journal || r.exec.exit_code != b.exec.exit_code {
            return Err(StudyError::Miscompile {
                workload: w.name.to_string(),
                profile: profile.name.clone(),
            });
        }
    }
    let m = Measurement {
        workload: w.name.to_string(),
        profile: profile.name.clone(),
        vm: vm.name().to_string(),
        cycles: r.exec.total_cycles,
        instret: r.exec.instret,
        paging_cycles: r.exec.paging_cycles,
        exec_ms: r.exec_ms,
        prove_ms: r.prove_ms,
        segments: r.exec.segments,
        x86_ms: r.x86.as_ref().map(|x| x.time_ms),
        code_size: r.code_size,
        spilled_vregs: r.spilled_vregs,
    };
    Ok((m, r))
}

/// Percent performance gain of `new` over `baseline` for a lower-is-better
/// metric (the paper's convention: positive = faster).
pub fn gain(baseline: f64, new: f64) -> f64 {
    zkvmopt_stats::perf_gain(baseline, new)
}

/// The paper's Figure 4 effect categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectCategory {
    /// ≤ −5 %.
    SevereLoss,
    /// −5 % to −2 %.
    ModerateLoss,
    /// −2 % to 2 % (not plotted by the paper).
    Neutral,
    /// 2 % to 5 %.
    ModerateGain,
    /// ≥ 5 %.
    SevereGain,
}

/// Categorize a gain percentage into the paper's buckets.
pub fn categorize(gain_pct: f64) -> EffectCategory {
    if gain_pct <= -5.0 {
        EffectCategory::SevereLoss
    } else if gain_pct < -2.0 {
        EffectCategory::ModerateLoss
    } else if gain_pct < 2.0 {
        EffectCategory::Neutral
    } else if gain_pct < 5.0 {
        EffectCategory::ModerateGain
    } else {
        EffectCategory::SevereGain
    }
}

/// The individual-pass axis used by RQ1 (all registered passes).
pub fn studied_passes() -> &'static [&'static str] {
    zkvmopt_passes::pass_names()
}

/// The representative pass subset used by the fast harness paths (top-impact
/// passes from the paper's Figure 3).
pub const KEY_PASSES: &[&str] = &[
    "inline",
    "always-inline",
    "gvn",
    "jump-threading",
    "instcombine",
    "simplifycfg",
    "partial-inliner",
    "tailcall",
    "attributor",
    "sroa",
    "newgvn",
    "ipsccp",
    "early-cse",
    "sccp",
    "instsimplify",
    "mem2reg",
    "loop-instsimplify",
    "reg2mem",
    "sink",
    "loop-rotate",
    "irce",
    "loop-reduce",
    "mldst-motion",
    "loop-extract",
    "licm",
];

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        fn main() -> i32 {
          let seed: i32 = read_input(0);
          let mut s: i32 = 0;
          for (let mut i: i32 = 0; i < 3000; i += 1) {
            s += (i * seed) % 31;
          }
          commit(s);
          return s;
        }";

    #[test]
    fn baseline_vs_o3_gain() {
        let w = Workload {
            name: "t",
            suite: zkvmopt_workloads::Suite::Other,
            source: SRC.to_string(),
            inputs: vec![5],
            uses_precompile: false,
        };
        let (_, base) =
            measure(&w, &OptProfile::baseline(), VmKind::RiscZero, false, None).unwrap();
        let (m3, _) = measure(
            &w,
            &OptProfile::level(OptLevel::O3),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .unwrap();
        let g = gain(base.exec.total_cycles as f64, m3.cycles as f64);
        assert!(g > 20.0, "-O3 should gain >20% on this loop, got {g:.1}%");
    }

    #[test]
    fn single_pass_profiles_run_and_preserve() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let (_, base) = measure(w, &OptProfile::baseline(), VmKind::Sp1, false, None).unwrap();
        for pass in ["inline", "licm", "mem2reg", "simplifycfg", "reg2mem"] {
            let (m, _) = measure(
                w,
                &OptProfile::single_pass(pass),
                VmKind::Sp1,
                false,
                Some(&base),
            )
            .unwrap_or_else(|e| panic!("{pass}: {e}"));
            assert!(m.cycles > 0);
        }
    }

    #[test]
    fn zk_o3_runs_on_div_heavy_code() {
        let src = "fn main() -> i32 {
                     let mut s: i32 = 0;
                     for (let mut i: i32 = 1; i < 500; i += 1) { s += (i * read_input(0)) / 8; }
                     commit(s); return s;
                   }";
        let w = Workload {
            name: "divs",
            suite: zkvmopt_workloads::Suite::Other,
            source: src.to_string(),
            inputs: vec![3],
            uses_precompile: false,
        };
        let (_, base) =
            measure(&w, &OptProfile::baseline(), VmKind::RiscZero, false, None).unwrap();
        let (o3, _) = measure(
            &w,
            &OptProfile::level(OptLevel::O3),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .unwrap();
        let (zk, _) = measure(
            &w,
            &OptProfile::zk_o3(),
            VmKind::RiscZero,
            false,
            Some(&base),
        )
        .unwrap();
        // The zk-aware profile keeps the single div and must beat stock -O3
        // on instruction count for this kernel (paper Fig. 14 mechanism).
        assert!(
            zk.instret < o3.instret,
            "zk-O3 instret {} !< -O3 instret {}",
            zk.instret,
            o3.instret
        );
    }

    #[test]
    fn x86_measurement_populates() {
        let w = Workload {
            name: "t",
            suite: zkvmopt_workloads::Suite::Other,
            source: SRC.to_string(),
            inputs: vec![5],
            uses_precompile: false,
        };
        let (m, _) = measure(
            &w,
            &OptProfile::level(OptLevel::O2),
            VmKind::RiscZero,
            true,
            None,
        )
        .unwrap();
        assert!(m.x86_ms.is_some());
    }

    #[test]
    fn categories_match_paper_thresholds() {
        assert_eq!(categorize(-7.0), EffectCategory::SevereLoss);
        assert_eq!(categorize(-3.0), EffectCategory::ModerateLoss);
        assert_eq!(categorize(0.0), EffectCategory::Neutral);
        assert_eq!(categorize(3.0), EffectCategory::ModerateGain);
        assert_eq!(categorize(12.0), EffectCategory::SevereGain);
    }

    #[test]
    fn key_passes_all_registered() {
        assert_eq!(KEY_PASSES.len(), 25, "paper's top-25 axis");
        for p in KEY_PASSES {
            assert!(
                zkvmopt_passes::find_pass(p).is_some(),
                "{p} missing from registry"
            );
        }
    }
}
