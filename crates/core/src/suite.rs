//! The batched suite runner: compile once, execute many.
//!
//! Every experiment in the paper re-executes the 58-program suite thousands
//! of times (the opt-level matrices, the 160/1600-iteration autotuner runs),
//! so the driver's hot path is *executions per second*, not compiles.
//! [`SuiteRunner`] makes that explicit:
//!
//! - the **lowered base module** of each workload is cached, so a workload's
//!   source is lexed/parsed/lowered exactly once no matter how many profiles
//!   (or autotuner candidates) run it;
//! - each `{workload × profile}` pair is compiled and **pre-decoded exactly
//!   once** ([`CompiledWorkload`] holds the emitted [`Program`] and its
//!   [`DecodedProgram`] block cache);
//! - executions fan out `{program × profile}` pairs through the
//!   block-dispatch engine, optionally across threads
//!   ([`SuiteRunner::run_matrix`]); each pair advances **all requested VM
//!   kinds in one lockstep cohort** ([`Engine::run_lockstep`]), so block
//!   lookup and dispatch are amortized across the VM dimension.
//!
//! `bench/`'s impact matrices, the tuner fitness loops, and the report
//! generator all run on top of this.

use crate::{Measurement, OptProfile, RunReport, StudyError};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use zkvmopt_ir::Module;
use zkvmopt_prover::ProvingModel;
use zkvmopt_riscv::Program;
use zkvmopt_vm::{
    DecodedProgram, Engine, ExecConfig, ExecutionReport, SegmentRecord, VmKind, VmProfile,
};
use zkvmopt_workloads::Workload;
use zkvmopt_x86sim::{run_x86, X86Model};

/// A workload compiled under one profile: emitted code plus the engine's
/// pre-decoded block representation, shareable across any number of runs.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// The linked RV32IM program.
    pub program: Program,
    /// The pre-decoded block-dispatch form.
    pub decoded: DecodedProgram,
}

/// One cell of a `{workload × profile × vm}` execution matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Workload name.
    pub workload: &'static str,
    /// Profile name.
    pub profile: String,
    /// VM kind.
    pub vm: VmKind,
    /// Measurement + full report, or the stage error.
    pub result: Result<(Measurement, RunReport), StudyError>,
}

/// Cache key for one workload: name plus a source hash, so synthetic
/// workloads that reuse a name (parameter sweeps building `Workload`s on the
/// fly) never collide.
fn workload_key(w: &Workload) -> (&'static str, u64) {
    let mut h = DefaultHasher::new();
    w.source.hash(&mut h);
    (w.name, h.finish())
}

type CacheKey = (&'static str, u64, String);

/// Default bound on cached compiled programs — comfortably above the full
/// suite × all standard levels, small enough that a 1600-iteration autotuner
/// run (one fresh candidate per iteration) cannot grow memory unboundedly.
const DEFAULT_CACHE_CAP: usize = 512;

/// Compile-once execute-many driver for the benchmark suite.
pub struct SuiteRunner {
    max_cycles: u64,
    cache_cap: usize,
    modules: HashMap<(&'static str, u64), Module>,
    compiled: HashMap<CacheKey, CompiledWorkload>,
    /// Insertion order of `compiled` keys, for FIFO eviction at `cache_cap`.
    order: VecDeque<CacheKey>,
}

impl Default for SuiteRunner {
    fn default() -> SuiteRunner {
        SuiteRunner::new()
    }
}

impl SuiteRunner {
    /// A fresh runner with empty caches.
    pub fn new() -> SuiteRunner {
        SuiteRunner {
            max_cycles: 2_000_000_000,
            cache_cap: DEFAULT_CACHE_CAP,
            modules: HashMap::new(),
            compiled: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Override the guest cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> SuiteRunner {
        self.max_cycles = max_cycles;
        self
    }

    /// Override the compiled-program cache bound (FIFO eviction beyond it).
    pub fn with_cache_capacity(mut self, cap: usize) -> SuiteRunner {
        self.cache_cap = cap.max(1);
        self
    }

    /// Number of `{workload × profile}` programs currently cached.
    pub fn cached_programs(&self) -> usize {
        self.compiled.len()
    }

    /// The configured guest cycle budget.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Lower `w`'s source to its base (unoptimized) module, through the
    /// runner's lowered-module cache — one lex/parse/lower per workload no
    /// matter how many profiles or candidates run it.
    ///
    /// # Errors
    /// Returns [`StudyError::Compile`] on frontend failures.
    pub fn lower(&mut self, w: &Workload) -> Result<Module, StudyError> {
        let (name, src) = workload_key(w);
        match self.modules.entry((name, src)) {
            std::collections::hash_map::Entry::Occupied(e) => Ok(e.get().clone()),
            std::collections::hash_map::Entry::Vacant(e) => {
                let m = zkvmopt_lang::compile_guest(&w.source)
                    .map_err(|e| StudyError::Compile(e.to_string()))?;
                Ok(e.insert(m).clone())
            }
        }
    }

    /// Compile (or fetch from cache) `w` under `profile`.
    ///
    /// # Errors
    /// Returns [`StudyError`] on frontend or codegen failures.
    pub fn compile(
        &mut self,
        w: &Workload,
        profile: &OptProfile,
    ) -> Result<&CompiledWorkload, StudyError> {
        let (name, src) = workload_key(w);
        let key = (name, src, profile.cache_key());
        if !self.compiled.contains_key(&key) {
            let mut m = self.lower(w)?;
            profile.apply(&mut m);
            let program = zkvmopt_riscv::compile_module(&m, &profile.backend)
                .map_err(|e| StudyError::Codegen(e.to_string()))?;
            let decoded = DecodedProgram::decode(&program);
            while self.compiled.len() >= self.cache_cap {
                let oldest = self.order.pop_front().expect("order tracks compiled");
                self.compiled.remove(&oldest);
            }
            self.order.push_back(key.clone());
            self.compiled
                .insert(key.clone(), CompiledWorkload { program, decoded });
        }
        Ok(&self.compiled[&key])
    }

    /// Compile (cached) and execute `w` under `profile` on `vm`.
    ///
    /// # Errors
    /// Returns [`StudyError`] on any stage failure.
    pub fn run(
        &mut self,
        w: &Workload,
        profile: &OptProfile,
        vm: VmKind,
        with_x86: bool,
    ) -> Result<RunReport, StudyError> {
        let max_cycles = self.max_cycles;
        let cw = self.compile(w, profile)?;
        execute(cw, &w.inputs, vm, with_x86, max_cycles)
    }

    /// Compile (cached) and execute `w` under `profile` on `vm` with
    /// per-segment accounting: the segmented-dispatch engine run that feeds
    /// the proving pipeline (`zkvmopt_prover::prove_segmented`). The
    /// segment-accounting bit-identity gate runs before returning, so a
    /// record set that does not sum exactly to the report is an error here,
    /// never a silently corrupted proving cost.
    ///
    /// # Errors
    /// Returns [`StudyError`] on any stage failure, including a
    /// segment-accounting mismatch.
    pub fn run_segmented(
        &mut self,
        w: &Workload,
        profile: &OptProfile,
        vm: VmKind,
    ) -> Result<(ExecutionReport, Vec<SegmentRecord>), StudyError> {
        let max_cycles = self.max_cycles;
        let cw = self.compile(w, profile)?;
        let config = ExecConfig {
            inputs: w.inputs.clone(),
            max_cycles,
        };
        let (report, records) = Engine::new(&cw.decoded, VmProfile::for_kind(vm), config)
            .run_segmented()
            .map_err(|e| StudyError::Exec(e.to_string()))?;
        zkvmopt_prover::check_segment_accounting(&report, &records)
            .map_err(|e| StudyError::Exec(e.to_string()))?;
        Ok((report, records))
    }

    /// Cached analogue of [`crate::measure`]: compile once, execute, verify
    /// observable behaviour against `baseline` when given.
    ///
    /// # Errors
    /// Returns [`StudyError::Miscompile`] when the journal or exit code
    /// diverge from the baseline run.
    pub fn measure(
        &mut self,
        w: &Workload,
        profile: &OptProfile,
        vm: VmKind,
        with_x86: bool,
        baseline: Option<&RunReport>,
    ) -> Result<(Measurement, RunReport), StudyError> {
        let r = self.run(w, profile, vm, with_x86)?;
        check_and_measure(w, profile, vm, r, baseline)
    }

    /// Fan out the full `{workload × profile × vm}` matrix: compile every
    /// pair once (serial, cached), then execute all cells across `threads`
    /// worker threads (`0` = all available cores). Results are returned in
    /// deterministic row-major (workload, profile, vm) order regardless of
    /// scheduling.
    pub fn run_matrix(
        &mut self,
        workloads: &[&Workload],
        profiles: &[OptProfile],
        vms: &[VmKind],
        with_x86: bool,
        threads: usize,
    ) -> Vec<MatrixCell> {
        // Phase 1: compile each {workload × profile} once, recording errors.
        // Phase 2 borrows every compiled pair at once, so the cache bound is
        // temporarily raised past everything already cached plus the whole
        // matrix — no compile in this loop can evict a matrix pair (including
        // pairs that were already resident before the call). The caller's
        // bound is restored (and the cache shrunk back) before returning.
        let saved_cap = self.cache_cap;
        self.cache_cap = self.compiled.len() + workloads.len() * profiles.len() + 1;
        let profile_keys: Vec<String> = profiles.iter().map(OptProfile::cache_key).collect();
        let mut compile_err: HashMap<(usize, usize), StudyError> = HashMap::new();
        for (wi, w) in workloads.iter().enumerate() {
            for (pi, p) in profiles.iter().enumerate() {
                if let Err(e) = self.compile(w, p) {
                    compile_err.insert((wi, pi), e);
                }
            }
        }
        // Phase 2: the cache is now read-only; fan executions out over a
        // shared work queue of `{workload × profile}` pair jobs borrowing the
        // compiled programs. Each pair advances every requested VM kind in
        // one lockstep cohort, so the per-cell work is the per-VM accounting
        // rather than a full dispatch walk per VM.
        struct Job<'a> {
            w: &'a Workload,
            p: &'a OptProfile,
            cw: Result<&'a CompiledWorkload, StudyError>,
        }
        let mut jobs: Vec<Job<'_>> = Vec::with_capacity(workloads.len() * profiles.len());
        for (wi, w) in workloads.iter().enumerate() {
            let (name, src) = workload_key(w);
            for (pi, p) in profiles.iter().enumerate() {
                let key = (name, src, profile_keys[pi].clone());
                let cw = match compile_err.get(&(wi, pi)) {
                    Some(e) => Err(e.clone()),
                    None => Ok(&self.compiled[&key]),
                };
                jobs.push(Job { w, p, cw });
            }
        }
        let max_cycles = self.max_cycles;
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Vec<MatrixCell>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        }
        .min(jobs.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let job = &jobs[i];
                    let cells: Vec<MatrixCell> = match &job.cw {
                        Ok(cw) => {
                            let runs = execute_pair(cw, &job.w.inputs, vms, with_x86, max_cycles);
                            vms.iter()
                                .zip(runs)
                                .map(|(&vm, run)| MatrixCell {
                                    workload: job.w.name,
                                    profile: job.p.name.clone(),
                                    vm,
                                    result: run
                                        .and_then(|r| check_and_measure(job.w, job.p, vm, r, None)),
                                })
                                .collect()
                        }
                        Err(e) => vms
                            .iter()
                            .map(|&vm| MatrixCell {
                                workload: job.w.name,
                                profile: job.p.name.clone(),
                                vm,
                                result: Err(e.clone()),
                            })
                            .collect(),
                    };
                    *results[i].lock().expect("result slot") = Some(cells);
                });
            }
        });
        // Restore the configured bound and shrink back down to it.
        self.cache_cap = saved_cap;
        while self.compiled.len() > self.cache_cap {
            let oldest = self.order.pop_front().expect("order tracks compiled");
            self.compiled.remove(&oldest);
        }
        results
            .into_iter()
            .flat_map(|slot| slot.into_inner().expect("slot").expect("all jobs ran"))
            .collect()
    }
}

/// Execute a compiled workload through the block-dispatch engine and build
/// the full [`RunReport`] (proving model, x86 timing when requested).
fn execute(
    cw: &CompiledWorkload,
    inputs: &[i32],
    vm: VmKind,
    with_x86: bool,
    max_cycles: u64,
) -> Result<RunReport, StudyError> {
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        max_cycles,
    };
    let exec = Engine::new(&cw.decoded, VmProfile::for_kind(vm), config)
        .run()
        .map_err(|e| StudyError::Exec(e.to_string()))?;
    let model = ProvingModel::for_kind(vm);
    let prove_ms = model.proving_time_ms(&exec);
    let exec_ms = exec.exec_time_ms;
    let x86 = if with_x86 {
        Some(
            run_x86(&cw.program, &X86Model::default(), inputs)
                .map_err(|e| StudyError::Exec(e.to_string()))?,
        )
    } else {
        None
    };
    Ok(RunReport {
        exec,
        prove_ms,
        exec_ms,
        x86,
        code_size: cw.program.len(),
        spilled_vregs: cw.program.spilled_vregs,
    })
}

/// Execute one compiled workload for every VM kind at once through
/// [`Engine::run_lockstep`], returning per-VM results in `vms` order. The
/// cohort shares block lookup, dispatch, and (for pure blocks) the op-fetch
/// loop; the x86 native baseline is VM-independent, so it runs once per
/// pair and is cloned into each VM's report.
fn execute_pair(
    cw: &CompiledWorkload,
    inputs: &[i32],
    vms: &[VmKind],
    with_x86: bool,
    max_cycles: u64,
) -> Vec<Result<RunReport, StudyError>> {
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        max_cycles,
    };
    let lanes: Vec<(VmProfile, ExecConfig)> = vms
        .iter()
        .map(|&vm| (VmProfile::for_kind(vm), config.clone()))
        .collect();
    let execs = Engine::run_lockstep(&cw.decoded, &lanes);
    let x86 = if with_x86 {
        Some(run_x86(&cw.program, &X86Model::default(), inputs).map_err(|e| e.to_string()))
    } else {
        None
    };
    execs
        .into_iter()
        .map(|r| {
            let exec = r.map_err(|e| StudyError::Exec(e.to_string()))?;
            let x86_run = match &x86 {
                Some(Ok(x)) => Some(x.clone()),
                Some(Err(e)) => return Err(StudyError::Exec(e.clone())),
                None => None,
            };
            let model = ProvingModel::for_kind(exec.kind);
            let prove_ms = model.proving_time_ms(&exec);
            let exec_ms = exec.exec_time_ms;
            Ok(RunReport {
                exec,
                prove_ms,
                exec_ms,
                x86: x86_run,
                code_size: cw.program.len(),
                spilled_vregs: cw.program.spilled_vregs,
            })
        })
        .collect()
}

fn check_and_measure(
    w: &Workload,
    profile: &OptProfile,
    vm: VmKind,
    r: RunReport,
    baseline: Option<&RunReport>,
) -> Result<(Measurement, RunReport), StudyError> {
    if let Some(b) = baseline {
        if r.exec.journal != b.exec.journal || r.exec.exit_code != b.exec.exit_code {
            return Err(StudyError::Miscompile {
                workload: w.name.to_string(),
                profile: profile.name.clone(),
            });
        }
    }
    let m = Measurement {
        workload: w.name.to_string(),
        profile: profile.name.clone(),
        vm: vm.name().to_string(),
        cycles: r.exec.total_cycles,
        instret: r.exec.instret,
        paging_cycles: r.exec.paging_cycles,
        exec_ms: r.exec_ms,
        prove_ms: r.prove_ms,
        segments: r.exec.segments,
        x86_ms: r.x86.as_ref().map(|x| x.time_ms),
        code_size: r.code_size,
        spilled_vregs: r.spilled_vregs,
    };
    Ok((m, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure, OptLevel};

    #[test]
    fn cached_runs_match_the_uncached_pipeline() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new();
        for profile in [OptProfile::baseline(), OptProfile::level(OptLevel::O2)] {
            for vm in VmKind::BOTH {
                let (cm, _) = runner.measure(w, &profile, vm, false, None).unwrap();
                let (um, _) = measure(w, &profile, vm, false, None).unwrap();
                assert_eq!(cm.cycles, um.cycles, "{} on {vm}", profile.name);
                assert_eq!(cm.instret, um.instret);
                assert_eq!(cm.paging_cycles, um.paging_cycles);
                assert_eq!(cm.segments, um.segments);
                assert_eq!(cm.code_size, um.code_size);
            }
        }
        // One compile per {workload × profile}, reused across both VMs.
        assert_eq!(runner.cached_programs(), 2);
    }

    #[test]
    fn segmented_runs_match_plain_runs_and_pass_the_gate() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new();
        let profile = OptProfile::level(OptLevel::O2);
        for vm in VmKind::BOTH {
            let plain = runner.run(w, &profile, vm, false).unwrap();
            let (report, records) = runner.run_segmented(w, &profile, vm).unwrap();
            assert_eq!(report.total_cycles, plain.exec.total_cycles, "{vm}");
            assert_eq!(report.segments, plain.exec.segments, "{vm}");
            assert_eq!(report.journal, plain.exec.journal, "{vm}");
            assert_eq!(records.len() as u64, report.segments, "{vm}");
        }
    }

    #[test]
    fn compile_cache_is_keyed_by_content_not_name() {
        let w = zkvmopt_workloads::by_name("fibonacci").unwrap();
        let mut runner = SuiteRunner::new();
        let a = OptProfile::sequence("candidate", vec!["mem2reg"], Default::default());
        let b = OptProfile::sequence("candidate", vec!["mem2reg", "gvn"], Default::default());
        runner.run(w, &a, VmKind::RiscZero, false).unwrap();
        runner.run(w, &b, VmKind::RiscZero, false).unwrap();
        assert_eq!(runner.cached_programs(), 2, "same name, distinct programs");
        runner.run(w, &a, VmKind::Sp1, false).unwrap();
        assert_eq!(runner.cached_programs(), 2, "cache hit across VM kinds");
    }

    #[test]
    fn synthetic_workloads_with_one_name_do_not_collide() {
        let make = |body: &str| Workload {
            name: "synthetic",
            suite: zkvmopt_workloads::Suite::Other,
            source: format!("fn main() -> i32 {{ return {body}; }}"),
            inputs: vec![],
            uses_precompile: false,
        };
        let mut runner = SuiteRunner::new();
        let a = runner
            .run(&make("11"), &OptProfile::baseline(), VmKind::Sp1, false)
            .unwrap();
        let b = runner
            .run(&make("22"), &OptProfile::baseline(), VmKind::Sp1, false)
            .unwrap();
        assert_eq!(a.exec.exit_code, 11);
        assert_eq!(b.exec.exit_code, 22);
    }

    #[test]
    fn compile_cache_is_bounded_with_fifo_eviction() {
        // Autotuner-style usage: a long stream of unique candidates must not
        // grow the cache past its bound, and evicted entries recompile fine.
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new().with_cache_capacity(4);
        let seqs: [&[&str]; 6] = [
            &["mem2reg"],
            &["mem2reg", "gvn"],
            &["mem2reg", "licm"],
            &["instcombine"],
            &["dce"],
            &["sccp"],
        ];
        for seq in seqs {
            let p = OptProfile::sequence("candidate", seq.to_vec(), Default::default());
            runner.run(w, &p, VmKind::Sp1, false).unwrap();
            assert!(runner.cached_programs() <= 4, "cache must stay bounded");
        }
        // The first (evicted) candidate still runs, via recompilation.
        let first = OptProfile::sequence("candidate", vec!["mem2reg"], Default::default());
        let r = runner.run(w, &first, VmKind::Sp1, false).unwrap();
        assert!(r.exec.total_cycles > 0);
    }

    /// Regression: a matrix pair that was already resident at the FIFO front
    /// must not be evicted by phase-1 compiles of *other* matrix pairs
    /// (previously panicked with "no entry found for key" in phase 2), and
    /// `run_matrix` must hand back the caller's cache bound afterwards.
    #[test]
    fn matrix_protects_pre_resident_pairs_and_restores_cache_bound() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new().with_cache_capacity(3);
        let o2 = OptProfile::level(OptLevel::O2);
        // Warm the cache so (loop-sum, -O2) sits at the FIFO front.
        runner.run(w, &o2, VmKind::Sp1, false).unwrap();
        runner
            .run(w, &OptProfile::baseline(), VmKind::Sp1, false)
            .unwrap();
        runner
            .run(w, &OptProfile::level(OptLevel::O1), VmKind::Sp1, false)
            .unwrap();
        let cells = runner.run_matrix(
            &[w],
            &[o2, OptProfile::level(OptLevel::O0)],
            &[VmKind::Sp1],
            false,
            1,
        );
        assert_eq!(cells.len(), 2);
        for c in &cells {
            assert!(c.result.is_ok(), "{}: {:?}", c.profile, c.result);
        }
        assert!(
            runner.cached_programs() <= 3,
            "run_matrix must restore the configured cache bound"
        );
    }

    #[test]
    fn matrix_fans_out_in_deterministic_order() {
        let workloads: Vec<&Workload> = ["loop-sum", "fibonacci"]
            .iter()
            .map(|n| zkvmopt_workloads::by_name(n).unwrap())
            .collect();
        let profiles = vec![OptProfile::baseline(), OptProfile::level(OptLevel::O2)];
        let mut runner = SuiteRunner::new();
        let cells = runner.run_matrix(&workloads, &profiles, &VmKind::BOTH, false, 0);
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Row-major order: workload outermost, vm innermost.
        assert_eq!(cells[0].workload, "loop-sum");
        assert_eq!(cells[0].profile, "baseline");
        assert_eq!(cells[0].vm, VmKind::RiscZero);
        assert_eq!(cells[1].vm, VmKind::Sp1);
        assert_eq!(cells[2].profile, "-O2");
        assert_eq!(cells[4].workload, "fibonacci");
        // Parallel and serial execution agree cycle-for-cycle.
        let serial = runner.run_matrix(&workloads, &profiles, &VmKind::BOTH, false, 1);
        for (a, b) in cells.iter().zip(&serial) {
            let (am, _) = a.result.as_ref().unwrap();
            let (bm, _) = b.result.as_ref().unwrap();
            assert_eq!(am.cycles, bm.cycles);
            assert_eq!(am.instret, bm.instret);
        }
    }
}
