//! Thread-safe batched candidate evaluation — the autotuning service's
//! fitness backend.
//!
//! The island-model tuner evaluates thousands of pass-sequence candidates
//! across worker threads, and for a candidate the dominant cost is the
//! *compile* (passes + codegen on a module clone), not the execution.
//! [`SuiteRunner`]'s compiled-program cache is `&mut self` and would
//! serialize those compiles behind a lock, so the service instead snapshots
//! what it needs up front into a [`BatchEvaluator`]:
//!
//! - each workload's **lowered base module** (lexed/parsed/lowered exactly
//!   once, shared read-only),
//! - its [`stable_module_fingerprint`] (the persistent tune-database key),
//! - a **baseline run** (journal + exit code + cycles) that every candidate
//!   is differentially checked against — a candidate that changes observable
//!   behaviour is a miscompile and evaluates to `None`, the same channel
//!   through which the paper's autotuner surfaced a real SP1 soundness bug.
//!
//! Evaluation is then a pure `&self` function of the candidate: clone the
//! module, apply the profile, codegen, pre-decode, execute. No shared
//! mutable state, so any number of threads evaluate concurrently
//! ([`BatchEvaluator::eval_batch`] fans a batch out itself; the tuner's
//! workers call [`BatchEvaluator::eval`] directly). Construct one via
//! [`SuiteRunner::batch_evaluator`], which reuses the runner's lowered-module
//! cache and baseline machinery.

use crate::{OptLevel, OptProfile, PipelineError, StudyError, SuiteRunner};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use zkvmopt_ir::{stable_module_fingerprint, FeatureVector, Module};
use zkvmopt_passes::PassConfig;
use zkvmopt_tuner::{Candidate, EvalResult, TuneTarget};
use zkvmopt_vm::{DecodedProgram, Engine, ExecConfig, VmKind, VmProfile};
use zkvmopt_workloads::Workload;

/// Per-candidate cycle-budget headroom over the workload's baseline: an
/// optimizing candidate should finish well under the unoptimized run; one
/// that needs 8× the baseline is runaway (e.g. unrolling gone wrong) and is
/// cut off as a [`PipelineError::Budget`] instead of burning the service's
/// global `max_cycles` allowance.
const BUDGET_HEADROOM: u64 = 8;

/// Floor for the per-candidate budget, so trivially tiny baselines don't
/// starve legitimate candidates of their fixed setup cycles.
const BUDGET_FLOOR: u64 = 4096;

/// One tunable workload snapshot: base module + baseline oracle.
#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    module: Module,
    inputs: Vec<i32>,
    fingerprint: u64,
    features: FeatureVector,
    baseline_journal: Vec<i32>,
    baseline_exit: i32,
    baseline_cycles: u64,
    /// Cycles under the fixed `-O3` pipeline — the reference the predictive
    /// tuner normalizes tuned results against.
    o3_cycles: u64,
}

/// One candidate evaluation request for [`BatchEvaluator::eval_batch`].
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Index of the target workload (see [`BatchEvaluator::names`]).
    pub workload: usize,
    /// The candidate pass sequence.
    pub passes: Vec<&'static str>,
    /// The candidate's pass parameters.
    pub config: PassConfig,
}

/// Immutable, `Sync` fitness oracle over a fixed set of workloads on one VM.
#[derive(Debug, Clone)]
pub struct BatchEvaluator {
    entries: Vec<Entry>,
    vm: VmKind,
    max_cycles: u64,
}

impl SuiteRunner {
    /// Build a [`BatchEvaluator`] for `workloads` on `vm`: lower each
    /// workload once (through this runner's module cache), fingerprint the
    /// base IR, and record the unoptimized baseline run each candidate will
    /// be differentially checked against.
    ///
    /// # Errors
    /// Returns [`StudyError`] if any workload fails to compile or its
    /// baseline fails to execute.
    pub fn batch_evaluator(
        &mut self,
        workloads: &[&'static Workload],
        vm: VmKind,
    ) -> Result<BatchEvaluator, StudyError> {
        let max_cycles = self.max_cycles();
        let mut entries = Vec::with_capacity(workloads.len());
        for w in workloads {
            let module = self.lower(w)?;
            let fingerprint = stable_module_fingerprint(&module);
            let features = FeatureVector::extract(&module);
            let (_, baseline) = self.measure(w, &OptProfile::baseline(), vm, false, None)?;
            let (_, o3) = self.measure(w, &OptProfile::level(OptLevel::O3), vm, false, None)?;
            entries.push(Entry {
                name: w.name,
                module,
                inputs: w.inputs.clone(),
                fingerprint,
                features,
                baseline_journal: baseline.exec.journal.clone(),
                baseline_exit: baseline.exec.exit_code,
                baseline_cycles: baseline.exec.total_cycles,
                o3_cycles: o3.exec.total_cycles,
            });
        }
        Ok(BatchEvaluator {
            entries,
            vm,
            max_cycles,
        })
    }
}

impl BatchEvaluator {
    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the evaluator holds no workloads.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Workload names, in index order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// The VM kind candidates are evaluated on.
    pub fn vm(&self) -> VmKind {
        self.vm
    }

    /// Stable fingerprint of workload `widx`'s lowered base module — the
    /// tune-database key for this program.
    pub fn fingerprint(&self, widx: usize) -> u64 {
        self.entries[widx].fingerprint
    }

    /// Baseline (unoptimized) cycle count of workload `widx`.
    pub fn baseline_cycles(&self, widx: usize) -> u64 {
        self.entries[widx].baseline_cycles
    }

    /// Cycle count of workload `widx` under the fixed `-O3` pipeline — the
    /// reference the predictive tuner's quality ratios are relative to.
    pub fn o3_cycles(&self, widx: usize) -> u64 {
        self.entries[widx].o3_cycles
    }

    /// Structural features of workload `widx`'s lowered base module.
    pub fn features(&self, widx: usize) -> &FeatureVector {
        &self.entries[widx].features
    }

    /// The per-candidate cycle budget for workload `widx`:
    /// `min(global max_cycles, max(baseline × 8, 4096))`. A candidate is an
    /// *optimization attempt* — if it cannot finish within a generous
    /// multiple of the unoptimized baseline, it has blown its budget.
    pub fn candidate_budget(&self, widx: usize) -> u64 {
        self.max_cycles.min(
            self.entries[widx]
                .baseline_cycles
                .saturating_mul(BUDGET_HEADROOM)
                .max(BUDGET_FLOOR),
        )
    }

    /// Evaluate one candidate on workload `widx`: cycles under the
    /// candidate's pipeline, or `None` when the candidate fails to compile,
    /// fails to run, or — the interesting case — **changes observable
    /// behaviour** vs the baseline (journal or exit code). Deterministic and
    /// `&self`: safe to call from any number of threads.
    ///
    /// This is the classification-erasing view of
    /// [`BatchEvaluator::eval_classified`]; use that directly when the
    /// failure reason matters (the fault-tolerant tuning service does).
    pub fn eval(&self, widx: usize, passes: &[&'static str], cfg: &PassConfig) -> Option<u64> {
        self.eval_classified(widx, passes, cfg).ok()
    }

    /// Evaluate one candidate on workload `widx`, classifying every failure
    /// as a [`PipelineError`]. The whole pipeline is isolated: the compile
    /// stages (pass application, IR verification, instruction selection)
    /// run under `catch_unwind`, so a pass bug that panics on this
    /// candidate's IR is reported as [`PipelineError::Panic`] instead of
    /// unwinding into (and poisoning) the caller; execution runs under the
    /// per-candidate [`BatchEvaluator::candidate_budget`]. Deterministic
    /// and `&self`: safe to call from any number of threads.
    ///
    /// # Errors
    /// Every failure mode of the candidate pipeline, classified — see the
    /// [`crate::error`] module docs for the taxonomy.
    pub fn eval_classified(
        &self,
        widx: usize,
        passes: &[&'static str],
        cfg: &PassConfig,
    ) -> Result<u64, PipelineError> {
        let e = &self.entries[widx];
        let profile = OptProfile::sequence("candidate", passes.to_vec(), cfg.clone());
        let program = catch_unwind(AssertUnwindSafe(|| {
            let mut m = e.module.clone();
            profile.apply(&mut m);
            zkvmopt_ir::verify::verify_module(&m).map_err(|err| PipelineError::Verify {
                message: err.to_string(),
            })?;
            zkvmopt_riscv::compile_module(&m, &profile.backend).map_err(PipelineError::from)
        }))
        .unwrap_or_else(|payload| Err(PipelineError::from_panic(payload)))?;
        let budget = self.candidate_budget(widx);
        let decoded = DecodedProgram::decode(&program);
        let config = ExecConfig {
            inputs: e.inputs.clone(),
            max_cycles: budget,
        };
        let exec = Engine::new(&decoded, VmProfile::for_kind(self.vm), config)
            .run()
            .map_err(|err| PipelineError::from_exec(err, budget))?;
        if exec.journal != e.baseline_journal || exec.exit_code != e.baseline_exit {
            return Err(PipelineError::Divergence); // miscompile: must never win
        }
        Ok(exec.total_cycles)
    }

    /// The [`TuneTarget`] list for this evaluator's workloads, in index
    /// order — what [`zkvmopt_tuner::tune_suite`] wants alongside
    /// [`BatchEvaluator::classified_fitness`].
    pub fn tune_targets(&self) -> Vec<TuneTarget> {
        self.entries
            .iter()
            .map(|e| {
                TuneTarget::new(e.name, e.fingerprint)
                    .with_prediction(e.features.clone(), e.o3_cycles)
            })
            .collect()
    }

    /// The classified fitness function the fault-tolerant tuning service
    /// consumes: cycles on success, the payload-free
    /// [`zkvmopt_tuner::FailureClass`] on any pipeline failure.
    pub fn classified_fitness(&self) -> impl Fn(usize, &Candidate) -> EvalResult + Sync + '_ {
        move |widx, c| {
            self.eval_classified(widx, &c.passes, &c.pass_config())
                .map_err(|e| e.class())
        }
    }

    /// Evaluate one distinct candidate for `lanes` identical requests at
    /// once: one compile, one decode, one lockstep cohort. Per-lane results
    /// equal [`BatchEvaluator::eval`] exactly (the engine guarantees
    /// lockstep lanes are bit-identical to solo runs).
    fn eval_group(
        &self,
        widx: usize,
        passes: &[&'static str],
        cfg: &PassConfig,
        lanes: usize,
    ) -> Vec<Option<u64>> {
        let e = &self.entries[widx];
        let profile = OptProfile::sequence("candidate", passes.to_vec(), cfg.clone());
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            let mut m = e.module.clone();
            profile.apply(&mut m);
            zkvmopt_ir::verify::verify_module(&m).map_err(|err| PipelineError::Verify {
                message: err.to_string(),
            })?;
            zkvmopt_riscv::compile_module(&m, &profile.backend).map_err(PipelineError::from)
        }))
        .unwrap_or_else(|payload| Err(PipelineError::from_panic(payload)));
        let Ok(program) = compiled else {
            return vec![None; lanes];
        };
        let budget = self.candidate_budget(widx);
        let decoded = DecodedProgram::decode(&program);
        let config = ExecConfig {
            inputs: e.inputs.clone(),
            max_cycles: budget,
        };
        let cohort: Vec<(VmProfile, ExecConfig)> = (0..lanes)
            .map(|_| (VmProfile::for_kind(self.vm), config.clone()))
            .collect();
        Engine::run_lockstep(&decoded, &cohort)
            .into_iter()
            .map(|r| match r {
                Ok(exec)
                    if exec.journal == e.baseline_journal && exec.exit_code == e.baseline_exit =>
                {
                    Some(exec.total_cycles)
                }
                _ => None,
            })
            .collect()
    }

    /// Evaluate a batch of candidates across `threads` worker threads
    /// (`0` = all available cores). Requests for the same `(workload,
    /// candidate)` are grouped: each distinct candidate compiles and
    /// decodes once and its requests run as one lockstep cohort, so the
    /// tuner's fan-out amortizes everything but the per-lane accounting.
    /// Results come back in job order regardless of scheduling, and equal
    /// `eval` job-for-job.
    pub fn eval_batch(&self, jobs: &[BatchJob], threads: usize) -> Vec<Option<u64>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        // Group job indices by identical (workload, candidate) requests,
        // preserving first-seen order. The candidate identity is the same
        // cache key the suite runner uses (passes + parameters).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<(usize, String), usize> = HashMap::new();
        for (i, j) in jobs.iter().enumerate() {
            let key = (
                j.workload,
                OptProfile::sequence("candidate", j.passes.clone(), j.config.clone()).cache_key(),
            );
            match index.get(&key) {
                Some(&g) => groups[g].push(i),
                None => {
                    index.insert(key, groups.len());
                    groups.push(vec![i]);
                }
            }
        }
        let results: Vec<std::sync::Mutex<Option<u64>>> =
            jobs.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let run_group = |members: &[usize]| {
            let j = &jobs[members[0]];
            let values = self.eval_group(j.workload, &j.passes, &j.config, members.len());
            for (&m, v) in members.iter().zip(values) {
                *results[m].lock().expect("result slot") = v;
            }
        };
        let workers = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        }
        .min(groups.len());
        if workers <= 1 {
            for g in &groups {
                run_group(g);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= groups.len() {
                            break;
                        }
                        run_group(&groups[i]);
                    });
                }
            });
        }
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator(names: &[&str]) -> BatchEvaluator {
        let workloads: Vec<&'static Workload> = names
            .iter()
            .map(|n| zkvmopt_workloads::by_name(n).expect("suite workload"))
            .collect();
        SuiteRunner::new()
            .batch_evaluator(&workloads, VmKind::RiscZero)
            .expect("evaluator")
    }

    #[test]
    fn eval_matches_the_suite_runner_pipeline() {
        let ev = evaluator(&["loop-sum"]);
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new();
        for seq in [&["mem2reg", "gvn"][..], &["mem2reg", "licm", "dce"][..]] {
            let cfg = PassConfig::default();
            let got = ev.eval(0, seq, &cfg).expect("valid candidate");
            let profile = OptProfile::sequence("candidate", seq.to_vec(), cfg);
            let (m, _) = runner
                .measure(w, &profile, VmKind::RiscZero, false, None)
                .unwrap();
            assert_eq!(got, m.cycles, "{seq:?}");
        }
    }

    #[test]
    fn fingerprints_are_stable_and_per_program() {
        let a = evaluator(&["loop-sum", "fibonacci"]);
        let b = evaluator(&["loop-sum"]);
        assert_eq!(a.fingerprint(0), b.fingerprint(0), "same source, same fp");
        assert_ne!(a.fingerprint(0), a.fingerprint(1));
        assert_eq!(a.names(), vec!["loop-sum", "fibonacci"]);
        assert!(a.baseline_cycles(0) > 0);
    }

    #[test]
    fn eval_batch_matches_serial_eval_in_job_order() {
        let ev = evaluator(&["loop-sum", "fibonacci"]);
        let seqs: [&[&'static str]; 3] = [&["mem2reg"], &["mem2reg", "gvn"], &["dce"]];
        let mut jobs = Vec::new();
        for w in 0..ev.len() {
            for seq in seqs {
                jobs.push(BatchJob {
                    workload: w,
                    passes: seq.to_vec(),
                    config: PassConfig::default(),
                });
            }
        }
        let parallel = ev.eval_batch(&jobs, 4);
        let serial = ev.eval_batch(&jobs, 1);
        assert_eq!(parallel, serial);
        for (j, r) in jobs.iter().zip(&serial) {
            assert_eq!(*r, ev.eval(j.workload, &j.passes, &j.config));
        }
    }

    /// An evaluator whose baseline cannot even execute must fail at
    /// construction instead of producing an oracle-less fitness function,
    /// and a candidate that exhausts the cycle budget evaluates to `None`.
    #[test]
    fn broken_baselines_and_budget_exhaustion_are_contained() {
        let w = zkvmopt_workloads::by_name("loop-sum").unwrap();
        let mut runner = SuiteRunner::new().with_max_cycles(10);
        assert!(runner.batch_evaluator(&[w], VmKind::Sp1).is_err());
        let ev = evaluator(&["loop-sum"]);
        assert!(ev
            .eval(0, &["mem2reg", "simplifycfg"], &PassConfig::default())
            .is_some());
        assert!(ev.eval(0, &[], &PassConfig::default()).is_some());
    }

    /// The classified path: successes carry cycles, failures carry the
    /// pipeline stage that rejected the candidate, and the plain `eval`
    /// view is exactly `eval_classified().ok()`.
    #[test]
    fn eval_classified_agrees_with_eval_and_budgets_are_derived() {
        let ev = evaluator(&["loop-sum", "fibonacci"]);
        for widx in 0..ev.len() {
            let budget = ev.candidate_budget(widx);
            assert!(budget >= ev.baseline_cycles(widx));
            for seq in [&[][..], &["mem2reg", "gvn"][..], &["reg2mem"][..]] {
                let classified = ev.eval_classified(widx, seq, &PassConfig::default());
                let plain = ev.eval(widx, seq, &PassConfig::default());
                assert_eq!(classified.clone().ok(), plain, "{seq:?}");
                let cycles = classified.unwrap_or_else(|e| panic!("{seq:?}: {e}"));
                assert!(cycles <= budget, "{seq:?} within its own budget");
            }
        }
        let targets = ev.tune_targets();
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].name, "loop-sum");
        assert_eq!(targets[0].fingerprint, ev.fingerprint(0));

        // The classified fitness closure mirrors eval_classified, erasing
        // payloads down to the tuner's FailureClass.
        let fit = ev.classified_fitness();
        let c = zkvmopt_tuner::Candidate {
            passes: vec!["mem2reg", "gvn"],
            inline_threshold: 225,
            unroll_threshold: 200,
        };
        assert_eq!(
            fit(0, &c),
            ev.eval_classified(0, &c.passes, &c.pass_config())
                .map_err(|e| e.class())
        );
        assert!(fit(0, &c).is_ok());
    }
}
