//! Environment-call (ECALL) codes shared by the interpreter, the zkVM
//! executors, and the frontend intrinsics.
//!
//! These model the precompile/syscall surface of the two studied zkVMs: the
//! paper notes that precompiled benchmarks (`keccak256`, `ecdsa-verify`,
//! `eddsa-verify`) replace thousands of instructions with fixed-cost circuits,
//! which is why they see smaller compiler-optimization gains (§4.2).

/// Terminate the guest. `a0` = exit code.
pub const HALT: u32 = 0;
/// Commit one `i32` (`a0`) to the public journal.
pub const COMMIT: u32 = 1;
/// SHA-256 precompile: `a0`=in ptr, `a1`=len, `a2`=out ptr (32 bytes).
pub const SHA256: u32 = 2;
/// Keccak-256 precompile: `a0`=in ptr, `a1`=len, `a2`=out ptr (32 bytes).
pub const KECCAK256: u32 = 3;
/// Toy-ECDSA verify precompile: `a0`=msg ptr (32 bytes), `a1`=pubkey ptr,
/// `a2`=sig ptr. Returns 1 when valid.
pub const ECDSA_VERIFY: u32 = 4;
/// Toy-EdDSA verify precompile, same layout as [`ECDSA_VERIFY`].
pub const EDDSA_VERIFY: u32 = 5;
/// Read one `i32` of private input; `a0` = input index.
pub const READ_INPUT: u32 = 6;

/// Human-readable name for an ecall code (used by the printer).
pub fn name(code: u32) -> &'static str {
    match code {
        HALT => "halt",
        COMMIT => "commit",
        SHA256 => "sha256",
        KECCAK256 => "keccak256",
        ECDSA_VERIFY => "ecdsa_verify",
        EDDSA_VERIFY => "eddsa_verify",
        READ_INPUT => "read_input",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_stable() {
        assert_eq!(super::name(super::HALT), "halt");
        assert_eq!(super::name(super::SHA256), "sha256");
        assert_eq!(super::name(99), "unknown");
    }
}
