//! Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

use crate::cfg::Cfg;
use crate::func::{BlockId, Function};

/// Immediate-dominator tree over the reachable CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Compute dominators using the Cooper–Harvey–Kennedy iterative algorithm.
    pub fn new(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let rpo = cfg.rpo();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, cfg, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        let rpo_index: Vec<usize> = (0..n).map(|i| cfg.rpo_index(BlockId(i as u32))).collect();
        DomTree {
            idom,
            rpo_index,
            entry: f.entry,
        }
    }

    fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
        while a != b {
            while cfg.rpo_index(a) > cfg.rpo_index(b) {
                a = idom[a.index()].expect("walked above entry");
            }
            while cfg.rpo_index(b) > cfg.rpo_index(a) {
                b = idom[b.index()].expect("walked above entry");
            }
        }
        a
    }

    /// The immediate dominator of `b` (`None` for the entry block or
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if b != self.entry => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Dominance frontier of every block (used by `mem2reg` phi placement).
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for i in 0..n {
            let b = BlockId(i as u32);
            if !cfg.is_reachable(b) {
                continue;
            }
            let preds = cfg.unique_preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(id) = self
                .idom(b)
                .or(if b == self.entry { Some(b) } else { None })
            else {
                continue;
            };
            for p in preds {
                let mut runner = p;
                while runner != id {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    match self.idom(runner) {
                        Some(d) => runner = d,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Operand, Pred};
    use crate::ty::Ty;

    /// entry -> {t, e} -> join -> exit, plus a loop join -> t.
    fn build() -> (Function, Cfg, DomTree) {
        let mut b = FunctionBuilder::new("g", vec![Ty::I32], Some(Ty::I32));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(Pred::Sgt, Operand::val(b.param(0)), Operand::i32(0));
        b.cond_br(Operand::val(c), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Operand::i32(1)));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        (f, cfg, dom)
    }

    #[test]
    fn diamond_idoms() {
        let (f, _, dom) = build();
        let entry = f.entry;
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(BlockId(1)), Some(entry));
        assert_eq!(dom.idom(BlockId(2)), Some(entry));
        assert_eq!(dom.idom(BlockId(3)), Some(entry)); // join dominated by entry, not arms
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (f, _, dom) = build();
        assert!(dom.dominates(f.entry, f.entry));
        assert!(dom.dominates(f.entry, BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.strictly_dominates(f.entry, BlockId(1)));
        assert!(!dom.strictly_dominates(f.entry, f.entry));
    }

    #[test]
    fn frontier_of_arms_is_join() {
        let (_, cfg, dom) = build();
        let df = dom.dominance_frontiers(&cfg);
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        assert!(df[0].is_empty());
    }
}
