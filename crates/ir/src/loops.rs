//! Natural-loop discovery.
//!
//! Loop passes (`licm`, `loop-unroll`, …) consume this analysis. A *natural
//! loop* is identified by a back edge `latch -> header` where `header`
//! dominates `latch`; the loop body is every block that can reach the latch
//! without passing through the header.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::func::{BlockId, Function};
use std::collections::HashSet;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop, header included.
    pub blocks: HashSet<BlockId>,
    /// Source blocks of back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// Blocks inside the loop with a successor outside (exiting blocks).
    pub exiting: Vec<BlockId>,
    /// Blocks outside the loop that are successors of exiting blocks.
    pub exits: Vec<BlockId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: usize,
    /// Index of the enclosing loop in the forest, if any.
    pub parent: Option<usize>,
}

impl Loop {
    /// Whether the loop contains block `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// The unique block outside the loop branching to the header, if exactly
    /// one exists and it only branches to the header (a *dedicated preheader*).
    pub fn preheader(&self, f: &Function, cfg: &Cfg) -> Option<BlockId> {
        let mut outside = Vec::new();
        for &p in cfg.preds(self.header) {
            if !self.contains(p) {
                outside.push(p);
            }
        }
        outside.sort();
        outside.dedup();
        if outside.len() != 1 {
            return None;
        }
        let p = outside[0];
        let succs = f.blocks[p.index()].term.successors();
        if succs.len() == 1 && succs[0] == self.header {
            Some(p)
        } else {
            None
        }
    }
}

/// All natural loops of a function, outermost-first.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Discovered loops. Parent loops precede children.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Discover natural loops from back edges.
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // Group back edges by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match headers.iter().position(|h| *h == s) {
                        Some(i) => latches_of[i].push(b),
                        None => {
                            headers.push(s);
                            latches_of.push(vec![b]);
                        }
                    }
                }
            }
        }
        let mut loops = Vec::new();
        for (h, latches) in headers.into_iter().zip(latches_of) {
            let mut blocks: HashSet<BlockId> = HashSet::new();
            blocks.insert(h);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if blocks.insert(b) {
                    for &p in cfg.preds(b) {
                        work.push(p);
                    }
                }
            }
            let mut exiting = Vec::new();
            let mut exits = Vec::new();
            for &b in &blocks {
                for s in f.blocks[b.index()].term.successors() {
                    if !blocks.contains(&s) {
                        if !exiting.contains(&b) {
                            exiting.push(b);
                        }
                        if !exits.contains(&s) {
                            exits.push(s);
                        }
                    }
                }
            }
            exiting.sort();
            exits.sort();
            loops.push(Loop {
                header: h,
                blocks,
                latches,
                exiting,
                exits,
                depth: 1,
                parent: None,
            });
        }
        // Sort outermost (largest) first so parents precede children.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        // Compute nesting: a loop's parent is the smallest strictly-enclosing loop.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                if loops[j].blocks.len() > loops[i].blocks.len()
                    && loops[j].blocks.contains(&loops[i].header)
                    && loops[i].blocks.iter().all(|b| loops[j].blocks.contains(b))
                {
                    best = match best {
                        None => Some(j),
                        Some(k) if loops[j].blocks.len() < loops[k].blocks.len() => Some(j),
                        keep => keep,
                    };
                }
            }
            loops[i].parent = best;
        }
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// Loop depth of block `b` (0 if not in any loop).
    pub fn depth_of(&self, b: BlockId) -> usize {
        self.innermost_containing(b).map(|l| l.depth).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Operand, Pred};
    use crate::ty::Ty;

    /// Builds `for i in 0..n { for j in 0..n { } }` and returns the function.
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("nest", vec![Ty::I32], None);
        let oh = b.new_block(); // outer header
        let ob = b.new_block(); // outer body == inner preheader
        let ih = b.new_block(); // inner header
        let ib = b.new_block(); // inner body
        let ol = b.new_block(); // outer latch
        let ex = b.new_block();
        let entry = b.current_block();
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let c = b.icmp(Pred::Slt, Operand::val(i), Operand::val(b.param(0)));
        b.cond_br(Operand::val(c), ob, ex);
        b.switch_to(ob);
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Ty::I32, vec![(ob, Operand::i32(0))]);
        let cj = b.icmp(Pred::Slt, Operand::val(j), Operand::val(b.param(0)));
        b.cond_br(Operand::val(cj), ib, ol);
        b.switch_to(ib);
        let j2 = b.bin(BinOp::Add, Operand::val(j), Operand::i32(1));
        b.br(ih);
        b.add_phi_incoming(j, ib, Operand::val(j2));
        b.switch_to(ol);
        let i2 = b.bin(BinOp::Add, Operand::val(i), Operand::i32(1));
        b.br(oh);
        b.add_phi_incoming(i, ol, Operand::val(i2));
        b.switch_to(ex);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn finds_two_nested_loops() {
        let f = nested_loops();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = &forest.loops[0];
        let inner = &forest.loops[1];
        assert!(outer.blocks.len() > inner.blocks.len());
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(0));
        assert!(outer.blocks.contains(&inner.header));
    }

    #[test]
    fn exits_and_latches() {
        let f = nested_loops();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let outer = &forest.loops[0];
        assert_eq!(outer.latches.len(), 1);
        assert_eq!(outer.exits.len(), 1);
        assert_eq!(forest.depth_of(f.entry), 0);
    }

    #[test]
    fn preheader_detection() {
        let f = nested_loops();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let inner = &forest.loops[1];
        // The outer body is the inner loop's dedicated preheader.
        assert!(inner.preheader(&f, &cfg).is_some());
    }
}
