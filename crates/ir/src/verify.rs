//! IR verifier: structural, type, and SSA-dominance checks.
//!
//! Every pass in `zkvmopt-passes` is required to leave the module in a state
//! this verifier accepts; the pass manager checks this in debug builds and the
//! property tests check it for random pass sequences.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::func::{BlockId, Function, Module, ValueDef, ValueId};
use crate::inst::{CastKind, Op, Operand, Term};
use crate::ty::Ty;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A verification failure, with enough context to locate the offending IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub func: String,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed in @{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(func: &Function, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        func: func.name.clone(),
        message: msg.into(),
    }
}

/// Verify a whole module.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for f in &m.funcs {
        if !names.insert(f.name.as_str()) {
            return Err(err(f, "duplicate function name"));
        }
        verify_function(f, m)?;
    }
    Ok(())
}

/// Verify a single function against module `m` (for call signatures and
/// global references).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &Function, m: &Module) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, "function has no blocks"));
    }
    if f.entry.index() >= f.blocks.len() {
        return Err(err(f, "entry block out of range"));
    }
    // Map: which block does each instruction value live in, at which position?
    let mut position: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for b in f.block_ids() {
        for (i, &v) in f.blocks[b.index()].insts.iter().enumerate() {
            if v.index() >= f.values.len() {
                return Err(err(
                    f,
                    format!("bb{}: instruction id %{} out of range", b.0, v.0),
                ));
            }
            if matches!(f.values[v.index()].def, ValueDef::Param { .. }) {
                return Err(err(
                    f,
                    format!("bb{}: parameter %{} listed as instruction", b.0, v.0),
                ));
            }
            if position.insert(v, (b, i)).is_some() {
                return Err(err(f, format!("%{} appears in more than one block", v.0)));
            }
        }
    }
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);

    for &b in cfg.rpo() {
        let data = &f.blocks[b.index()];
        // Terminator targets must be valid.
        for s in data.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(err(
                    f,
                    format!("bb{}: branch to out-of-range bb{}", b.0, s.0),
                ));
            }
        }
        // Return type must match signature.
        match (&data.term, f.ret) {
            (Term::Ret(Some(v)), Some(rt)) => {
                let ty = operand_ty(f, v)
                    .ok_or_else(|| err(f, format!("bb{}: ret of void value", b.0)))?;
                if ty != rt {
                    return Err(err(f, format!("bb{}: ret type {ty} != {rt}", b.0)));
                }
            }
            (Term::Ret(Some(_)), None) => {
                return Err(err(
                    f,
                    format!("bb{}: value return from void function", b.0),
                ));
            }
            (Term::Ret(None), Some(_)) => {
                return Err(err(
                    f,
                    format!("bb{}: void return from value function", b.0),
                ));
            }
            _ => {}
        }
        if let Term::CondBr { c, .. } = &data.term {
            if operand_ty(f, c) != Some(Ty::I1) {
                return Err(err(f, format!("bb{}: cond_br condition is not i1", b.0)));
            }
        }

        let mut seen_non_phi = false;
        for (idx, &v) in data.insts.iter().enumerate() {
            let op = match f.op(v) {
                Some(op) => op,
                None => return Err(err(f, format!("%{} has no op", v.0))),
            };
            if matches!(op, Op::Nop) {
                return Err(err(f, format!("bb{}: nop slot %{} still listed", b.0, v.0)));
            }
            if op.is_phi() {
                if seen_non_phi {
                    return Err(err(f, format!("bb{}: phi %{} after non-phi", b.0, v.0)));
                }
            } else {
                seen_non_phi = true;
            }
            check_types(f, m, v, op, b)?;
            // Phi nodes: incoming must exactly match unique predecessors.
            if let Op::Phi { incoming } = op {
                let preds = cfg.unique_preds(b);
                let mut inc_blocks: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                inc_blocks.sort();
                let mut dedup = inc_blocks.clone();
                dedup.dedup();
                if dedup.len() != inc_blocks.len() {
                    return Err(err(
                        f,
                        format!("bb{}: phi %{} duplicate incoming block", b.0, v.0),
                    ));
                }
                let preds_set: HashSet<BlockId> = preds.iter().copied().collect();
                let inc_set: HashSet<BlockId> = inc_blocks.iter().copied().collect();
                if preds_set != inc_set {
                    return Err(err(
                        f,
                        format!(
                            "bb{}: phi %{} incoming {:?} != preds {:?}",
                            b.0, v.0, inc_set, preds_set
                        ),
                    ));
                }
            }
            // Dominance: each value operand must be defined before use.
            let mut viol: Option<String> = None;
            let check_use = |o: &Operand,
                             viol: &mut Option<String>,
                             use_block: BlockId,
                             use_idx: Option<usize>| {
                let Operand::Value(u) = o else { return };
                if u.index() >= f.values.len() {
                    *viol = Some(format!("use of out-of-range %{}", u.0));
                    return;
                }
                match &f.values[u.index()].def {
                    ValueDef::Param { .. } => {}
                    ValueDef::Inst(Op::Nop) => {
                        *viol = Some(format!("use of deleted %{}", u.0));
                    }
                    ValueDef::Inst(_) => match position.get(u) {
                        None => *viol = Some(format!("use of unplaced %{}", u.0)),
                        Some(&(db, di)) => {
                            let ok = if db == use_block {
                                match use_idx {
                                    Some(ui) => di < ui,
                                    None => true, // used by terminator of same block
                                }
                            } else {
                                dom.strictly_dominates(db, use_block)
                            };
                            if !ok {
                                *viol = Some(format!(
                                    "%{} used at bb{} before dominated by def at bb{}",
                                    u.0, use_block.0, db.0
                                ));
                            }
                        }
                    },
                }
            };
            if let Op::Phi { incoming } = op {
                // Phi operands are evaluated at the end of the incoming block.
                for (p, o) in incoming {
                    check_use(o, &mut viol, *p, None);
                }
            } else {
                op.for_each_operand(|o| check_use(o, &mut viol, b, Some(idx)));
            }
            if let Some(msg) = viol {
                return Err(err(f, format!("bb{}: {msg}", b.0)));
            }
        }
        // Terminator operand dominance.
        let mut viol: Option<String> = None;
        data.term.for_each_operand(|o| {
            if let Operand::Value(u) = o {
                match &f.values[u.index()].def {
                    ValueDef::Param { .. } => {}
                    ValueDef::Inst(Op::Nop) => viol = Some(format!("term uses deleted %{}", u.0)),
                    ValueDef::Inst(_) => match position.get(u) {
                        None => viol = Some(format!("term uses unplaced %{}", u.0)),
                        Some(&(db, _)) => {
                            if db != b && !dom.strictly_dominates(db, b) {
                                viol = Some(format!("term use of %{} not dominated", u.0));
                            }
                        }
                    },
                }
            }
        });
        if let Some(msg) = viol {
            return Err(err(f, format!("bb{}: {msg}", b.0)));
        }
    }
    Ok(())
}

fn operand_ty(f: &Function, o: &Operand) -> Option<Ty> {
    f.operand_ty(o)
}

fn check_types(
    f: &Function,
    m: &Module,
    v: ValueId,
    op: &Op,
    b: BlockId,
) -> Result<(), VerifyError> {
    let want = |cond: bool, msg: &str| -> Result<(), VerifyError> {
        if cond {
            Ok(())
        } else {
            Err(err(f, format!("bb{}: %{}: {msg}", b.0, v.0)))
        }
    };
    let rty = f.ty(v);
    match op {
        Op::Bin { a, b: bo, .. } => {
            want(rty == Some(Ty::I32), "bin result must be i32")?;
            want(operand_ty(f, a) == Some(Ty::I32), "bin lhs must be i32")?;
            want(operand_ty(f, bo) == Some(Ty::I32), "bin rhs must be i32")?;
        }
        Op::Icmp { a, b: bo, .. } => {
            want(rty == Some(Ty::I1), "icmp result must be i1")?;
            let ta = operand_ty(f, a);
            let tb = operand_ty(f, bo);
            want(ta == tb, "icmp operands must share a type")?;
            want(
                matches!(ta, Some(Ty::I32) | Some(Ty::Ptr)),
                "icmp operates on i32/ptr",
            )?;
        }
        Op::Select { c, t, f: fo } => {
            want(operand_ty(f, c) == Some(Ty::I1), "select cond must be i1")?;
            let tt = operand_ty(f, t);
            want(tt == operand_ty(f, fo), "select arms must share a type")?;
            want(rty == tt, "select result type mismatch")?;
        }
        Op::Load { ptr, ty } => {
            want(
                operand_ty(f, ptr) == Some(Ty::Ptr),
                "load pointer must be ptr",
            )?;
            want(rty == Some(*ty), "load result/type mismatch")?;
        }
        Op::Store { ptr, val, ty } => {
            want(
                operand_ty(f, ptr) == Some(Ty::Ptr),
                "store pointer must be ptr",
            )?;
            want(operand_ty(f, val) == Some(*ty), "store value/type mismatch")?;
            want(rty.is_none(), "store has no result")?;
        }
        Op::Alloca { count, .. } => {
            want(rty == Some(Ty::Ptr), "alloca result must be ptr")?;
            want(*count > 0, "alloca count must be positive")?;
            want(b == f.entry, "alloca must be in the entry block")?;
        }
        Op::Gep { base, index, .. } => {
            want(operand_ty(f, base) == Some(Ty::Ptr), "gep base must be ptr")?;
            want(
                operand_ty(f, index) == Some(Ty::I32),
                "gep index must be i32",
            )?;
            want(rty == Some(Ty::Ptr), "gep result must be ptr")?;
        }
        Op::GlobalAddr(g) => {
            want(g.index() < m.globals.len(), "global id out of range")?;
            want(rty == Some(Ty::Ptr), "global_addr result must be ptr")?;
        }
        Op::Call { callee, args } => {
            let Some(cf) = m.funcs.get(callee.index()) else {
                return Err(err(
                    f,
                    format!("bb{}: %{}: call to unknown function", b.0, v.0),
                ));
            };
            want(args.len() == cf.params.len(), "call arity mismatch")?;
            for (i, (a, p)) in args.iter().zip(&cf.params).enumerate() {
                if operand_ty(f, a) != Some(*p) {
                    return Err(err(
                        f,
                        format!("bb{}: %{}: call arg {i} type mismatch", b.0, v.0),
                    ));
                }
            }
            want(rty == cf.ret, "call result type mismatch")?;
        }
        Op::Ecall { .. } => {
            want(rty == Some(Ty::I32), "ecall result must be i32")?;
        }
        Op::Phi { incoming } => {
            let Some(t) = rty else {
                return Err(err(f, format!("bb{}: %{}: phi must have a type", b.0, v.0)));
            };
            for (_, o) in incoming {
                if operand_ty(f, o) != Some(t) {
                    return Err(err(
                        f,
                        format!("bb{}: %{}: phi incoming type mismatch", b.0, v.0),
                    ));
                }
            }
        }
        Op::Cast { kind, v: src, to } => {
            let Some(st) = operand_ty(f, src) else {
                return Err(err(f, format!("bb{}: %{}: cast of void", b.0, v.0)));
            };
            want(rty == Some(*to), "cast result type mismatch")?;
            match kind {
                CastKind::Zext | CastKind::Sext => {
                    want(st.size_bytes() <= to.size_bytes(), "extension must widen")?;
                }
                CastKind::Trunc => {
                    want(st.size_bytes() >= to.size_bytes(), "trunc must narrow")?;
                }
            }
            want(st.is_int() && to.is_int(), "casts operate on integers")?;
        }
        Op::Copy(src) => {
            want(operand_ty(f, src) == rty, "copy type mismatch")?;
        }
        Op::Nop => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("ok", vec![Ty::I32], Some(Ty::I32));
        let v = b.bin(BinOp::Add, Operand::val(b.param(0)), Operand::i32(1));
        b.ret(Some(Operand::val(v)));
        let f = b.finish();
        assert!(verify_function(&f, &Module::new()).is_ok());
    }

    #[test]
    fn rejects_type_mismatch_in_ret() {
        let mut b = FunctionBuilder::new("bad", vec![], Some(Ty::I32));
        let c = b.icmp(Pred::Eq, Operand::i32(1), Operand::i32(1));
        b.ret(Some(Operand::val(c))); // i1 returned as i32
        let f = b.finish();
        let e = verify_function(&f, &Module::new()).unwrap_err();
        assert!(e.message.contains("ret type"), "{e}");
    }

    #[test]
    fn rejects_alloca_outside_entry() {
        let mut b = FunctionBuilder::new("bad", vec![], None);
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        let _ = b.alloca(Ty::I32, 1);
        b.ret(None);
        let f = b.finish();
        let e = verify_function(&f, &Module::new()).unwrap_err();
        assert!(e.message.contains("entry"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("bad", vec![], Some(Ty::I32));
        // Manually create: %0 = add %1, 1 ; %1 = add 1, 1 — use before def.
        let v0 = f.new_value(
            Op::Bin {
                op: BinOp::Add,
                a: Operand::Value(ValueId(1)),
                b: Operand::i32(1),
            },
            Some(Ty::I32),
        );
        let v1 = f.new_value(
            Op::Bin {
                op: BinOp::Add,
                a: Operand::i32(1),
                b: Operand::i32(1),
            },
            Some(Ty::I32),
        );
        let e = f.entry;
        f.blocks[e.index()].insts.push(v0);
        f.blocks[e.index()].insts.push(v1);
        f.blocks[e.index()].term = Term::Ret(Some(Operand::val(v1)));
        let err = verify_function(&f, &Module::new()).unwrap_err();
        assert!(err.message.contains("before dominated"), "{err}");
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut b = FunctionBuilder::new("bad", vec![], Some(Ty::I32));
        let j = b.new_block();
        let entry = b.current_block();
        b.br(j);
        b.switch_to(j);
        // Claims an edge from a block that is not a predecessor.
        let bogus = BlockId(0);
        let p = b.phi(
            Ty::I32,
            vec![
                (entry, Operand::i32(1)),
                (BlockId(bogus.0 + 7), Operand::i32(2)),
            ],
        );
        b.ret(Some(Operand::val(p)));
        let mut f = b.finish();
        // Make the bogus block id refer to a real block to isolate the pred check.
        for _ in 0..8 {
            let nb = f.add_block();
            f.blocks[nb.index()].term = Term::Unreachable;
        }
        let e = verify_function(&f, &Module::new()).unwrap_err();
        assert!(e.message.contains("phi"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new();
        let mut cb = FunctionBuilder::new("callee", vec![Ty::I32], Some(Ty::I32));
        cb.ret(Some(Operand::val(cb.param(0))));
        let callee = m.add_func(cb.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Some(Ty::I32));
        let r = b.call(callee, vec![], Some(Ty::I32)); // missing arg
        b.ret(Some(Operand::val(r)));
        m.add_func(b.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("arity"), "{e}");
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = Module::new();
        for _ in 0..2 {
            let mut b = FunctionBuilder::new("same", vec![], None);
            b.ret(None);
            m.add_func(b.finish());
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }
}
