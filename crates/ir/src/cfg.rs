//! Control-flow-graph utilities: predecessors, successors, orderings.

use crate::func::{BlockId, Function};
use std::collections::HashSet;

/// Precomputed CFG adjacency for a function.
///
/// Built once per pass invocation; cheap relative to the transformations.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Compute the CFG of `f` (reachable portion only; unreachable blocks get
    /// empty adjacency and `usize::MAX` RPO index).
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let reachable: HashSet<BlockId> = f.reachable_blocks().into_iter().collect();
        for b in f.block_ids() {
            if !reachable.contains(&b) {
                continue;
            }
            for s in f.blocks[b.index()].term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Reverse postorder via iterative DFS.
        let mut post = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        // Stack of (block, next successor index).
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        seen[f.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            preds,
            succs,
            rpo: post,
            rpo_index,
        }
    }

    /// Predecessors of `b` (with multiplicity, matching multi-edges).
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Reachable blocks in reverse postorder (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse postorder, or `usize::MAX` if
    /// unreachable.
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Unique predecessors (collapsing multi-edges from switches/cond-brs).
    pub fn unique_preds(&self, b: BlockId) -> Vec<BlockId> {
        let mut v = self.preds(b).to_vec();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Operand, Pred};
    use crate::ty::Ty;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Ty::I32], Some(Ty::I32));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(Pred::Sgt, Operand::val(b.param(0)), Operand::i32(0));
        b.cond_br(Operand::val(c), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Operand::i32(0)));
        b.finish()
    }

    #[test]
    fn diamond_adjacency() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(cfg.rpo().len(), 4);
        // Join must come after both arms in RPO.
        assert!(cfg.rpo_index(BlockId(3)) > cfg.rpo_index(BlockId(1)));
        assert!(cfg.rpo_index(BlockId(3)) > cfg.rpo_index(BlockId(2)));
    }

    #[test]
    fn unreachable_block_excluded() {
        let mut f = diamond();
        let orphan = f.add_block();
        f.blocks[orphan.index()].term = crate::Term::Ret(None);
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(orphan));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn multi_edge_dedup() {
        // cond_br with both targets the same block.
        let mut b = FunctionBuilder::new("m", vec![], None);
        let j = b.new_block();
        b.cond_br(Operand::bool(true), j, j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.preds(j).len(), 2);
        assert_eq!(cfg.unique_preds(j).len(), 1);
    }
}
