//! Ergonomic construction of IR functions.

use crate::func::{BlockId, FuncId, Function, GlobalId, ValueId};
use crate::inst::{BinOp, CastKind, Op, Operand, Pred, Term};
use crate::ty::Ty;

/// A cursor-style builder over a [`Function`].
///
/// The builder keeps a *current block*; instruction emitters append there.
/// Terminator emitters seal the current block (emitting into a sealed block is
/// a bug and panics).
///
/// # Example
///
/// ```
/// use zkvmopt_ir::{FunctionBuilder, Ty, Operand, Pred};
///
/// // fn max(a: i32, b: i32) -> i32
/// let mut b = FunctionBuilder::new("max", vec![Ty::I32, Ty::I32], Some(Ty::I32));
/// let (x, y) = (b.param(0), b.param(1));
/// let (then_bb, else_bb) = (b.new_block(), b.new_block());
/// let c = b.icmp(Pred::Sgt, Operand::val(x), Operand::val(y));
/// b.cond_br(Operand::val(c), then_bb, else_bb);
/// b.switch_to(then_bb);
/// b.ret(Some(Operand::val(x)));
/// b.switch_to(else_bb);
/// b.ret(Some(Operand::val(y)));
/// let f = b.finish();
/// assert_eq!(f.blocks.len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    sealed: Vec<bool>,
}

impl FunctionBuilder {
    /// Start building a function; the cursor points at the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> FunctionBuilder {
        let func = Function::new(name, params, ret);
        FunctionBuilder {
            func,
            current: BlockId(0),
            sealed: vec![false],
        }
    }

    /// The `ValueId` of parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        self.func.param(i)
    }

    /// The block the cursor currently points at.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Create a new (empty, unsealed) block without moving the cursor.
    pub fn new_block(&mut self) -> BlockId {
        let b = self.func.add_block();
        self.sealed.push(false);
        b
    }

    /// Move the cursor to `b`.
    ///
    /// # Panics
    /// Panics if `b` is already sealed.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            !self.sealed[b.index()],
            "cannot emit into sealed block {b:?}"
        );
        self.current = b;
    }

    /// Whether `b` has been sealed with a terminator.
    pub fn is_sealed(&self, b: BlockId) -> bool {
        self.sealed[b.index()]
    }

    fn emit(&mut self, op: Op, ty: Option<Ty>) -> ValueId {
        assert!(
            !self.sealed[self.current.index()],
            "cannot emit into sealed block {:?}",
            self.current
        );
        self.func.add_inst(self.current, op, ty)
    }

    fn seal(&mut self, term: Term) {
        assert!(
            !self.sealed[self.current.index()],
            "block {:?} already sealed",
            self.current
        );
        self.func.blocks[self.current.index()].term = term;
        self.sealed[self.current.index()] = true;
    }

    /// Emit a binary operation (result `i32`).
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> ValueId {
        self.emit(Op::Bin { op, a, b }, Some(Ty::I32))
    }

    /// Emit a comparison (result `i1`).
    pub fn icmp(&mut self, pred: Pred, a: Operand, b: Operand) -> ValueId {
        self.emit(Op::Icmp { pred, a, b }, Some(Ty::I1))
    }

    /// Emit a select; `t` and `f` must share a type.
    pub fn select(&mut self, c: Operand, t: Operand, f: Operand) -> ValueId {
        let ty = self.func.operand_ty(&t).expect("select arms must be typed");
        self.emit(Op::Select { c, t, f }, Some(ty))
    }

    /// Emit a load of `ty` from `ptr`.
    pub fn load(&mut self, ptr: Operand, ty: Ty) -> ValueId {
        self.emit(Op::Load { ptr, ty }, Some(ty))
    }

    /// Emit a store of `val : ty` to `ptr`.
    pub fn store(&mut self, ptr: Operand, val: Operand, ty: Ty) {
        self.emit(Op::Store { ptr, val, ty }, None);
    }

    /// Emit a stack allocation of `count` elements of `elem` (entry block only
    /// by convention; the verifier enforces it).
    pub fn alloca(&mut self, elem: Ty, count: u32) -> ValueId {
        self.emit(Op::Alloca { elem, count }, Some(Ty::Ptr))
    }

    /// Emit address arithmetic `base + index * stride + offset`.
    pub fn gep(&mut self, base: Operand, index: Operand, stride: u32, offset: i32) -> ValueId {
        self.emit(
            Op::Gep {
                base,
                index,
                stride,
                offset,
            },
            Some(Ty::Ptr),
        )
    }

    /// Emit the address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> ValueId {
        self.emit(Op::GlobalAddr(g), Some(Ty::Ptr))
    }

    /// Emit a call. `ret` must match the callee's return type.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>, ret: Option<Ty>) -> ValueId {
        self.emit(Op::Call { callee, args }, ret)
    }

    /// Emit an environment call (always returns `i32`).
    pub fn ecall(&mut self, code: u32, args: Vec<Operand>) -> ValueId {
        self.emit(Op::Ecall { code, args }, Some(Ty::I32))
    }

    /// Emit a phi node with the given incoming edges.
    pub fn phi(&mut self, ty: Ty, incoming: Vec<(BlockId, Operand)>) -> ValueId {
        self.emit(Op::Phi { incoming }, Some(ty))
    }

    /// Append an incoming edge to an existing phi (loops are built by creating
    /// the phi with its entry edge and adding the back edge once known).
    ///
    /// # Panics
    /// Panics if `phi` is not a phi node.
    pub fn add_phi_incoming(&mut self, phi: ValueId, from: BlockId, v: Operand) {
        match self.func.op_mut(phi) {
            Some(Op::Phi { incoming }) => incoming.push((from, v)),
            other => panic!("add_phi_incoming on non-phi: {other:?}"),
        }
    }

    /// Emit an integer cast.
    pub fn cast(&mut self, kind: CastKind, v: Operand, to: Ty) -> ValueId {
        self.emit(Op::Cast { kind, v, to }, Some(to))
    }

    /// Seal the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.seal(Term::Br(target));
    }

    /// Seal the current block with a conditional branch.
    pub fn cond_br(&mut self, c: Operand, t: BlockId, f: BlockId) {
        self.seal(Term::CondBr { c, t, f });
    }

    /// Seal the current block with a switch.
    pub fn switch(&mut self, v: Operand, cases: Vec<(i64, BlockId)>, default: BlockId) {
        self.seal(Term::Switch { v, cases, default });
    }

    /// Seal the current block with a return.
    pub fn ret(&mut self, v: Option<Operand>) {
        self.seal(Term::Ret(v));
    }

    /// Seal the current block as unreachable.
    pub fn unreachable(&mut self) {
        self.seal(Term::Unreachable);
    }

    /// Finish, returning the built function.
    ///
    /// # Panics
    /// Panics if any created block was left unsealed.
    pub fn finish(self) -> Function {
        for (i, s) in self.sealed.iter().enumerate() {
            assert!(*s, "block bb{i} left without a terminator");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "left without a terminator")]
    fn unsealed_block_panics() {
        let b = FunctionBuilder::new("f", vec![], None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already sealed")]
    fn double_seal_panics() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn loop_construction() {
        // fn sum10() -> i32 { s=0; for i in 0..10 { s+=i } s }
        let mut b = FunctionBuilder::new("sum10", vec![], Some(Ty::I32));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let s = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let c = b.icmp(Pred::Slt, Operand::val(i), Operand::i32(10));
        b.cond_br(Operand::val(c), body, exit);
        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, Operand::val(s), Operand::val(i));
        let i2 = b.bin(BinOp::Add, Operand::val(i), Operand::i32(1));
        b.br(header);
        b.add_phi_incoming(i, body, Operand::val(i2));
        b.add_phi_incoming(s, body, Operand::val(s2));
        b.switch_to(exit);
        b.ret(Some(Operand::val(s)));
        let func = b.finish();
        assert_eq!(func.blocks.len(), 4);
        assert!(crate::verify::verify_function(&func, &crate::Module::new()).is_ok());
    }
}
