//! Program feature extraction for predictive tuning.
//!
//! The tune database keys entries by [`stable_module_fingerprint`], which
//! only ever matches a program *exactly*. Predictive tuning needs the
//! complementary notion — "this unseen program looks like those seen ones" —
//! so this module summarizes a module into a fixed-dimension numeric
//! [`FeatureVector`] over the structural properties the paper's pass-impact
//! study found discriminative: loop structure (count, nesting), memory-op
//! density (the paging-cost driver), branch density (the `simplifycfg` /
//! jump-threading axis), call-graph fan-out (the inlining axis), the
//! instruction mix, and function count/size moments.
//!
//! ## Determinism contract
//!
//! Extraction is **order-stable and process-stable**, like
//! [`stable_module_fingerprint`]: it iterates functions in arena order and
//! blocks in the deterministic [`Function::reachable_blocks`] preorder,
//! accumulates in integer counters, and only converts to `f64` at the end
//! through exact integer-to-float conversion and IEEE division. Two
//! processes (or two runs) extracting from equal IR produce bit-identical
//! vectors, and [`FeatureVector::to_text`] / [`FeatureVector::from_text`]
//! round-trip them losslessly — which is what lets the persistent tune
//! database store features and still be byte-stable across runs.
//!
//! [`stable_module_fingerprint`]: crate::analysis::stable_module_fingerprint

use crate::analysis::AnalysisCache;
use crate::func::{Function, Module};
use crate::inst::{Op, Term};

/// Number of dimensions in a [`FeatureVector`].
pub const FEATURE_DIM: usize = 22;

/// Human-readable name of each dimension, in [`FeatureVector::raw`] order.
pub const FEATURE_LABELS: [&str; FEATURE_DIM] = [
    "func_count",
    "total_insts",
    "func_size_mean",
    "func_size_std",
    "loop_count",
    "loop_max_depth",
    "mem_op_density",
    "branch_density",
    "call_fanout",
    "mix_bin",
    "mix_icmp",
    "mix_select",
    "mix_load",
    "mix_store",
    "mix_alloca",
    "mix_gep",
    "mix_globaladdr",
    "mix_call",
    "mix_ecall",
    "mix_phi",
    "mix_cast",
    "mix_copy",
];

/// A fixed-dimension structural summary of one module.
///
/// Densities and mix entries are fractions in `[0, 1]`; the remaining
/// dimensions are raw counts/moments. The predictor z-score-normalizes
/// every dimension against its database population before measuring
/// distances, so the mixed scales here are intentional — no dimension needs
/// hand-tuned weighting at extraction time.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// The feature values, in [`FEATURE_LABELS`] order.
    pub raw: [f64; FEATURE_DIM],
}

/// Integer accumulators for one module walk.
#[derive(Default)]
struct Counts {
    insts: u64,
    blocks: u64,
    branches: u64,
    loops: u64,
    max_depth: u64,
    call_edges: u64,
    mix: [u64; 13],
}

/// Index into [`Counts::mix`] for one op. `Nop` never appears in a block's
/// instruction list, but tolerate it (counted as `copy`-adjacent dead slot
/// would distort nothing: it contributes to no category).
fn mix_slot(op: &Op) -> Option<usize> {
    Some(match op {
        Op::Bin { .. } => 0,
        Op::Icmp { .. } => 1,
        Op::Select { .. } => 2,
        Op::Load { .. } => 3,
        Op::Store { .. } => 4,
        Op::Alloca { .. } => 5,
        Op::Gep { .. } => 6,
        Op::GlobalAddr(_) => 7,
        Op::Call { .. } => 8,
        Op::Ecall { .. } => 9,
        Op::Phi { .. } => 10,
        Op::Cast { .. } => 11,
        Op::Copy(_) => 12,
        Op::Nop => return None,
    })
}

fn walk_function(f: &Function, counts: &mut Counts, sizes: &mut Vec<u64>) {
    let mut size = 0u64;
    let mut callees: Vec<u32> = Vec::new();
    for b in f.reachable_blocks() {
        counts.blocks += 1;
        let data = &f.blocks[b.index()];
        for &v in &data.insts {
            let Some(op) = f.op(v) else { continue };
            if let Some(slot) = mix_slot(op) {
                counts.mix[slot] += 1;
                counts.insts += 1;
                size += 1;
            }
            if let Op::Call { callee, .. } = op {
                if !callees.contains(&callee.0) {
                    callees.push(callee.0);
                }
            }
        }
        if matches!(data.term, Term::CondBr { .. } | Term::Switch { .. }) {
            counts.branches += 1;
        }
    }
    counts.call_edges += callees.len() as u64;
    sizes.push(size);

    // Loop structure comes from the shared analysis layer (same natural-loop
    // discovery every loop pass consumes), computed on a throwaway cache so
    // extraction never perturbs a caller's invalidation state.
    let mut ac = AnalysisCache::new();
    let loops = ac.loops(f);
    counts.loops += loops.loops.len() as u64;
    for l in &loops.loops {
        counts.max_depth = counts.max_depth.max(l.depth as u64);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl FeatureVector {
    /// Extract the feature vector of `m`. Deterministic and process-stable;
    /// see the [module docs](self).
    pub fn extract(m: &Module) -> FeatureVector {
        let mut counts = Counts::default();
        let mut sizes: Vec<u64> = Vec::with_capacity(m.funcs.len());
        for f in &m.funcs {
            walk_function(f, &mut counts, &mut sizes);
        }
        let n_funcs = sizes.len() as u64;
        let size_mean = ratio(counts.insts, n_funcs);
        let size_var = if sizes.is_empty() {
            0.0
        } else {
            sizes
                .iter()
                .map(|&s| {
                    let d = s as f64 - size_mean;
                    d * d
                })
                .sum::<f64>()
                / sizes.len() as f64
        };
        let mut raw = [0.0; FEATURE_DIM];
        raw[0] = n_funcs as f64;
        raw[1] = counts.insts as f64;
        raw[2] = size_mean;
        raw[3] = size_var.sqrt();
        raw[4] = counts.loops as f64;
        raw[5] = counts.max_depth as f64;
        raw[6] = ratio(counts.mix[3] + counts.mix[4], counts.insts);
        raw[7] = ratio(counts.branches, counts.blocks);
        raw[8] = ratio(counts.call_edges, n_funcs);
        for (i, &c) in counts.mix.iter().enumerate() {
            raw[9 + i] = ratio(c, counts.insts);
        }
        FeatureVector { raw }
    }

    /// The values as a slice, in [`FEATURE_LABELS`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.raw
    }

    /// Rebuild a vector from exactly [`FEATURE_DIM`] finite values (e.g. a
    /// deserialized tune-database entry). `None` on wrong arity or any
    /// non-finite value, so a corrupt line is rejected rather than misread.
    pub fn from_slice(values: &[f64]) -> Option<FeatureVector> {
        if values.len() != FEATURE_DIM || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut raw = [0.0; FEATURE_DIM];
        raw.copy_from_slice(values);
        Some(FeatureVector { raw })
    }

    /// Serialize as a single whitespace-free comma-joined field. Uses Rust's
    /// shortest-round-trip `f64` formatting, so `from_text(to_text(v))`
    /// reproduces `v` bit for bit.
    pub fn to_text(&self) -> String {
        let parts: Vec<String> = self.raw.iter().map(|v| format!("{v}")).collect();
        parts.join(",")
    }

    /// Parse [`FeatureVector::to_text`] output. `None` on malformed input.
    pub fn from_text(s: &str) -> Option<FeatureVector> {
        let values: Option<Vec<f64>> = s.split(',').map(|p| p.parse::<f64>().ok()).collect();
        FeatureVector::from_slice(&values?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Operand, Pred};
    use crate::ty::Ty;

    /// fn loopy(n) { s = 0; for i in 0..n { s += i } return s } — one loop,
    /// a branch, and a simple mix.
    fn loopy_module() -> Module {
        let mut b = FunctionBuilder::new("loopy", vec![Ty::I32], Some(Ty::I32));
        let entry = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let s = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let c = b.icmp(Pred::Slt, Operand::val(i), Operand::val(b.param(0)));
        b.cond_br(Operand::val(c), body, exit);
        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, Operand::val(s), Operand::val(i));
        let i2 = b.bin(BinOp::Add, Operand::val(i), Operand::i32(1));
        b.br(header);
        b.add_phi_incoming(i, body, Operand::val(i2));
        b.add_phi_incoming(s, body, Operand::val(s2));
        b.switch_to(exit);
        b.ret(Some(Operand::val(s)));
        let mut m = Module::new();
        m.add_func(b.finish());
        m
    }

    #[test]
    fn extraction_counts_the_obvious_structure() {
        let m = loopy_module();
        let fv = FeatureVector::extract(&m);
        assert_eq!(fv.raw[0], 1.0, "one function");
        assert_eq!(fv.raw[4], 1.0, "one natural loop");
        assert_eq!(fv.raw[5], 1.0, "depth-1 nesting");
        assert!(fv.raw[7] > 0.0, "the loop test is a conditional branch");
        assert_eq!(fv.raw[8], 0.0, "no calls");
        // Mix fractions are a probability distribution over counted insts.
        let mix_sum: f64 = fv.raw[9..].iter().sum();
        assert!(
            (mix_sum - 1.0).abs() < 1e-12,
            "mix sums to 1, got {mix_sum}"
        );
    }

    #[test]
    fn extraction_is_deterministic_and_content_keyed() {
        let a = FeatureVector::extract(&loopy_module());
        let b = FeatureVector::extract(&loopy_module());
        assert_eq!(a, b, "equal IR, bit-equal features");
        let mut m = loopy_module();
        // Adding an instruction must move the vector.
        let entry = m.funcs[0].entry;
        m.funcs[0].add_inst(
            entry,
            Op::Bin {
                op: BinOp::Add,
                a: Operand::i32(1),
                b: Operand::i32(2),
            },
            Some(Ty::I32),
        );
        assert_ne!(a, FeatureVector::extract(&m));
    }

    #[test]
    fn empty_module_extracts_all_zeros() {
        let fv = FeatureVector::extract(&Module::new());
        assert_eq!(fv.raw, [0.0; FEATURE_DIM]);
        assert_eq!(FeatureVector::from_text(&fv.to_text()), Some(fv));
    }

    #[test]
    fn text_round_trip_is_lossless_and_rejects_garbage() {
        let fv = FeatureVector::extract(&loopy_module());
        let text = fv.to_text();
        assert!(!text.contains(' '), "must be a single db field: {text:?}");
        assert_eq!(FeatureVector::from_text(&text), Some(fv.clone()));
        for bad in ["", "1,2,3", "nan", &format!("{text},1.0"), "a,b"] {
            assert_eq!(FeatureVector::from_text(bad), None, "{bad:?}");
        }
        let inf = vec![f64::INFINITY; FEATURE_DIM];
        assert_eq!(FeatureVector::from_slice(&inf), None);
        assert_eq!(FEATURE_LABELS.len(), FEATURE_DIM);
    }
}
