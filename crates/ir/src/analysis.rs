//! Analysis caching: [`AnalysisCache`] and [`PreservedAnalyses`].
//!
//! Mirrors LLVM's new-pass-manager analysis framework, scaled to this IR.
//! Every structural analysis in the workspace — [`Cfg`], [`DomTree`],
//! dominance frontiers, [`LoopForest`] — is a pure function of one thing: the
//! function's *CFG shape* (entry block, block count, and each terminator's
//! successor list). Instruction-level edits (adding phis, removing dead code,
//! rewriting operands) never invalidate them; only terminator/block edits do.
//!
//! The cache hands analyses out as [`Rc`] clones so a pass can hold an
//! analysis while mutating the function. The *contract* is:
//!
//! - cached results are valid for the function as it was when they were
//!   computed;
//! - a pass that changes the CFG shape must invalidate before querying again
//!   ([`AnalysisCache::invalidate`] / [`AnalysisCache::invalidate_all`]);
//! - the pass manager invalidates after each changed pass run according to
//!   the pass's declared [`PreservedAnalyses`].
//!
//! Debug builds enforce the contract: every getter fingerprints the current
//! CFG shape and panics if a cached analysis no longer matches, so a stale
//! analysis can never be served silently.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::func::{BlockId, Function};
use crate::loops::LoopForest;
use std::rc::Rc;

/// Identifier of one cached analysis kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisKind {
    /// [`Cfg`]: predecessor/successor adjacency + reverse postorder.
    Cfg,
    /// [`DomTree`] (depends on [`AnalysisKind::Cfg`]).
    DomTree,
    /// Dominance frontiers (depend on [`AnalysisKind::DomTree`]).
    Frontiers,
    /// [`LoopForest`] (depends on [`AnalysisKind::DomTree`]).
    Loops,
}

const CFG_BIT: u8 = 1 << 0;
const DOM_BIT: u8 = 1 << 1;
const FRONTIERS_BIT: u8 = 1 << 2;
const LOOPS_BIT: u8 = 1 << 3;
const ALL_BITS: u8 = CFG_BIT | DOM_BIT | FRONTIERS_BIT | LOOPS_BIT;

/// The set of analyses a pass run left valid — the pass manager's
/// invalidation currency (LLVM's `PreservedAnalyses`).
///
/// Because every analysis here derives from the CFG shape alone, the two
/// interesting points of the lattice are [`PreservedAnalyses::all`] (the pass
/// touched instructions only) and [`PreservedAnalyses::none`] (the pass may
/// have changed terminators or blocks). The full set form exists so finer
/// analyses can join later without changing the contract, and so dependency
/// closure (dropping `Cfg` drops everything above it) has one home.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreservedAnalyses {
    bits: u8,
}

impl PreservedAnalyses {
    /// Nothing survives: the pass may have restructured the CFG.
    pub const fn none() -> PreservedAnalyses {
        PreservedAnalyses { bits: 0 }
    }

    /// Everything survives: the pass changed instructions/operands only.
    pub const fn all() -> PreservedAnalyses {
        PreservedAnalyses { bits: ALL_BITS }
    }

    /// All analyses derived from the CFG shape. Synonym for [`Self::all`]
    /// today; named so pass declarations state *why* they preserve.
    pub const fn cfg_shape() -> PreservedAnalyses {
        PreservedAnalyses { bits: ALL_BITS }
    }

    /// Mark one analysis preserved (dependencies are **not** implied; use the
    /// named constructors for the common cases).
    pub const fn with(self, kind: AnalysisKind) -> PreservedAnalyses {
        let bit = match kind {
            AnalysisKind::Cfg => CFG_BIT,
            AnalysisKind::DomTree => DOM_BIT,
            AnalysisKind::Frontiers => FRONTIERS_BIT,
            AnalysisKind::Loops => LOOPS_BIT,
        };
        PreservedAnalyses {
            bits: self.bits | bit,
        }
    }

    /// Whether `kind` is preserved, after closing over dependencies:
    /// an analysis only counts as preserved if everything it is computed
    /// from is preserved too.
    pub fn preserves(&self, kind: AnalysisKind) -> bool {
        let cfg = self.bits & CFG_BIT != 0;
        let dom = cfg && self.bits & DOM_BIT != 0;
        match kind {
            AnalysisKind::Cfg => cfg,
            AnalysisKind::DomTree => dom,
            AnalysisKind::Frontiers => dom && self.bits & FRONTIERS_BIT != 0,
            AnalysisKind::Loops => dom && self.bits & LOOPS_BIT != 0,
        }
    }
}

/// Fingerprint of everything the cached analyses depend on: the entry block,
/// the block count, and each terminator's successor list. FNV-1a over the raw
/// block ids — cheap enough to run on every debug-build cache hit.
pub fn cfg_shape_fingerprint(f: &Function) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(PRIME);
    };
    mix(f.entry.0 as u64);
    mix(f.blocks.len() as u64);
    for b in &f.blocks {
        for s in b.term.successors() {
            mix(s.0 as u64);
        }
        // Separate blocks so successor lists cannot slide across boundaries.
        mix(u64::MAX);
    }
    h
}

/// Fingerprint of a function's full *live content*: signature, attribute
/// flags, entry, every block's instruction list (ids, defining ops, result
/// types) and terminator. Two equal-content functions hash equal; any edit a
/// pass can make to a function changes it. The pass manager uses this to
/// detect, per function, what a module pass actually touched.
pub fn content_fingerprint(f: &Function) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    f.params.hash(&mut h);
    f.ret.hash(&mut h);
    f.entry.hash(&mut h);
    (f.always_inline, f.no_inline, f.readnone, f.readonly).hash(&mut h);
    f.blocks.len().hash(&mut h);
    for b in &f.blocks {
        b.term.hash(&mut h);
        b.insts.hash(&mut h);
        for &v in &b.insts {
            // Hash live values through the block lists so tombstoned arena
            // slots cannot affect the fingerprint.
            f.values[v.index()].hash(&mut h);
        }
    }
    h.finish()
}

/// Stable FNV-1a fingerprint of a whole module's canonical textual form.
///
/// Unlike [`content_fingerprint`] (which hashes with [`DefaultHasher`] and is
/// only meaningful within one process), this fingerprint is **stable across
/// processes, platforms, and Rust versions**: it hashes the printed IR
/// ([`crate::print::module_to_string`]), whose format the golden snapshots
/// already pin down. It is the key the persistent tune database uses to
/// recognize a program across runs — two sources that lower to the same IR
/// warm-start from each other's tuning results.
///
/// [`DefaultHasher`]: std::collections::hash_map::DefaultHasher
pub fn stable_module_fingerprint(m: &crate::func::Module) -> u64 {
    stable_fingerprint_bytes(crate::print::module_to_string(m).as_bytes())
}

/// FNV-1a over raw bytes — the primitive under
/// [`stable_module_fingerprint`], exposed so callers can fingerprint other
/// stable serializations (e.g. source text) with the same function.
pub fn stable_fingerprint_bytes(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Serialize a fingerprint as the fixed-width lowercase hex the tune
/// database stores (`16` nibbles, zero-padded).
///
/// ```
/// use zkvmopt_ir::analysis::{fingerprint_from_hex, fingerprint_to_hex};
/// let fp = 0x00ab_cdef_0123_4567;
/// assert_eq!(fingerprint_to_hex(fp), "00abcdef01234567");
/// assert_eq!(fingerprint_from_hex(&fingerprint_to_hex(fp)), Some(fp));
/// ```
pub fn fingerprint_to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse a fingerprint serialized by [`fingerprint_to_hex`]. Returns `None`
/// for anything but exactly 16 lowercase hex digits, so a truncated or
/// hand-edited database line is rejected rather than misread.
pub fn fingerprint_from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Lazily computed, invalidation-aware per-function analyses.
///
/// See the [module docs](self) for the validity contract. All getters return
/// [`Rc`] clones, so holding an analysis across mutation is cheap and safe
/// (the clone describes the function as of computation time).
#[derive(Debug, Default, Clone)]
pub struct AnalysisCache {
    cfg: Option<Rc<Cfg>>,
    dom: Option<Rc<DomTree>>,
    frontiers: Option<Rc<Vec<Vec<BlockId>>>>,
    loops: Option<Rc<LoopForest>>,
    /// [`cfg_shape_fingerprint`] of the function at compute time
    /// (debug-assertion fuel; absent until something is cached).
    fingerprint: Option<u64>,
    /// Number of times a getter recomputed instead of hitting the cache.
    computes: u64,
    /// Number of getter calls served from the cache.
    hits: u64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    fn check_fresh(&mut self, f: &Function) {
        match self.fingerprint {
            None => self.fingerprint = Some(cfg_shape_fingerprint(f)),
            Some(fp) => debug_assert_eq!(
                fp,
                cfg_shape_fingerprint(f),
                "stale AnalysisCache: the CFG shape of `{}` changed without \
                 invalidation — a pass mutated terminators/blocks and then \
                 queried (or a pass over-declared its PreservedAnalyses)",
                f.name
            ),
        }
    }

    /// The function's [`Cfg`], computing and caching it on first use.
    pub fn cfg(&mut self, f: &Function) -> Rc<Cfg> {
        self.check_fresh(f);
        match &self.cfg {
            Some(c) => {
                self.hits += 1;
                Rc::clone(c)
            }
            None => {
                self.computes += 1;
                let c = Rc::new(Cfg::new(f));
                self.cfg = Some(Rc::clone(&c));
                c
            }
        }
    }

    /// The function's [`DomTree`], computing it (and the [`Cfg`]) on demand.
    pub fn dom(&mut self, f: &Function) -> Rc<DomTree> {
        self.check_fresh(f);
        if self.dom.is_none() {
            let cfg = self.cfg(f);
            self.computes += 1;
            self.dom = Some(Rc::new(DomTree::new(f, &cfg)));
        } else {
            self.hits += 1;
        }
        Rc::clone(self.dom.as_ref().expect("just computed"))
    }

    /// Dominance frontiers of every block (the `mem2reg` phi-placement input).
    pub fn frontiers(&mut self, f: &Function) -> Rc<Vec<Vec<BlockId>>> {
        self.check_fresh(f);
        if self.frontiers.is_none() {
            let cfg = self.cfg(f);
            let dom = self.dom(f);
            self.computes += 1;
            self.frontiers = Some(Rc::new(dom.dominance_frontiers(&cfg)));
        } else {
            self.hits += 1;
        }
        Rc::clone(self.frontiers.as_ref().expect("just computed"))
    }

    /// The function's [`LoopForest`], computing prerequisites on demand.
    pub fn loops(&mut self, f: &Function) -> Rc<LoopForest> {
        self.check_fresh(f);
        if self.loops.is_none() {
            let cfg = self.cfg(f);
            let dom = self.dom(f);
            self.computes += 1;
            self.loops = Some(Rc::new(LoopForest::new(f, &cfg, &dom)));
        } else {
            self.hits += 1;
        }
        Rc::clone(self.loops.as_ref().expect("just computed"))
    }

    /// Drop every analysis not covered by `preserved` (dependency-closed:
    /// losing the CFG loses everything computed from it).
    pub fn invalidate(&mut self, preserved: &PreservedAnalyses) {
        if !preserved.preserves(AnalysisKind::Cfg) {
            self.cfg = None;
            self.fingerprint = None;
        }
        if !preserved.preserves(AnalysisKind::DomTree) {
            self.dom = None;
        }
        if !preserved.preserves(AnalysisKind::Frontiers) {
            self.frontiers = None;
        }
        if !preserved.preserves(AnalysisKind::Loops) {
            self.loops = None;
        }
        if self.cfg.is_none()
            && self.dom.is_none()
            && self.frontiers.is_none()
            && self.loops.is_none()
        {
            self.fingerprint = None;
        }
    }

    /// Drop everything.
    pub fn invalidate_all(&mut self) {
        *self = AnalysisCache {
            computes: self.computes,
            hits: self.hits,
            ..AnalysisCache::default()
        };
    }

    /// `(recomputes, cache hits)` since construction — observability for the
    /// pipeline-throughput bench and tests.
    pub fn stats(&self) -> (u64, u64) {
        (self.computes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{Operand, Pred, Term};
    use crate::ty::Ty;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Ty::I32], Some(Ty::I32));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(Pred::Sgt, Operand::val(b.param(0)), Operand::i32(0));
        b.cond_br(Operand::val(c), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Operand::i32(0)));
        b.finish()
    }

    #[test]
    fn lazily_computes_and_reuses() {
        let f = diamond();
        let mut ac = AnalysisCache::new();
        assert_eq!(ac.stats(), (0, 0));
        let c1 = ac.cfg(&f);
        let c2 = ac.cfg(&f);
        assert!(Rc::ptr_eq(&c1, &c2), "second query must be a cache hit");
        let (computes, hits) = ac.stats();
        assert_eq!((computes, hits), (1, 1));
        // dom/frontiers/loops share the cached Cfg.
        let _ = ac.dom(&f);
        let _ = ac.frontiers(&f);
        let _ = ac.loops(&f);
        let (computes, _) = ac.stats();
        assert_eq!(computes, 4, "cfg + dom + frontiers + loops, each once");
    }

    #[test]
    fn results_match_fresh_computation() {
        let f = diamond();
        let mut ac = AnalysisCache::new();
        let cfg = ac.cfg(&f);
        let fresh = Cfg::new(&f);
        assert_eq!(cfg.rpo(), fresh.rpo());
        let dom = ac.dom(&f);
        let fresh_dom = DomTree::new(&f, &fresh);
        for b in f.block_ids() {
            assert_eq!(dom.idom(b), fresh_dom.idom(b));
        }
        assert_eq!(*ac.frontiers(&f), fresh_dom.dominance_frontiers(&fresh));
        assert_eq!(ac.loops(&f).loops.len(), 0);
    }

    #[test]
    fn invalidate_none_preserved_recomputes() {
        let mut f = diamond();
        let mut ac = AnalysisCache::new();
        assert_eq!(ac.cfg(&f).succs(BlockId(0)).len(), 2);
        // Collapse the branch: entry now goes straight to the join.
        f.blocks[0].term = Term::Br(BlockId(3));
        ac.invalidate(&PreservedAnalyses::none());
        // A stale cache would still say two successors.
        assert_eq!(ac.cfg(&f).succs(BlockId(0)).len(), 1);
        assert!(!ac.cfg(&f).is_reachable(BlockId(1)));
    }

    #[test]
    fn invalidate_all_preserved_keeps_cache() {
        let f = diamond();
        let mut ac = AnalysisCache::new();
        let before = ac.cfg(&f);
        ac.invalidate(&PreservedAnalyses::all());
        let after = ac.cfg(&f);
        assert!(Rc::ptr_eq(&before, &after));
    }

    #[test]
    fn dependency_closure_drops_derived_analyses() {
        // Preserving only DomTree (without Cfg) preserves nothing: the tree
        // is computed from the Cfg, so losing the Cfg must lose the tree.
        let pa = PreservedAnalyses::none().with(AnalysisKind::DomTree);
        assert!(!pa.preserves(AnalysisKind::Cfg));
        assert!(!pa.preserves(AnalysisKind::DomTree));
        let pa = pa.with(AnalysisKind::Cfg);
        assert!(pa.preserves(AnalysisKind::DomTree));
        assert!(!pa.preserves(AnalysisKind::Loops));
        assert!(PreservedAnalyses::all().preserves(AnalysisKind::Loops));
    }

    #[test]
    fn stable_fingerprint_is_content_keyed_and_hex_round_trips() {
        let mut m = crate::func::Module::new();
        m.add_func(diamond());
        let fp = stable_module_fingerprint(&m);
        let mut m2 = crate::func::Module::new();
        m2.add_func(diamond());
        assert_eq!(
            fp,
            stable_module_fingerprint(&m2),
            "equal content, equal fp"
        );
        // Any content edit moves the fingerprint.
        m2.funcs[0].blocks[1].term = Term::Br(BlockId(2));
        assert_ne!(fp, stable_module_fingerprint(&m2));
        // Hex serialization round-trips and rejects malformed inputs.
        assert_eq!(fingerprint_from_hex(&fingerprint_to_hex(fp)), Some(fp));
        assert_eq!(fingerprint_from_hex(&fingerprint_to_hex(0)), Some(0));
        for bad in [
            "",
            "abc",
            "00abcdef0123456",
            "00ABCDEF01234567",
            "g0abcdef01234567",
        ] {
            assert_eq!(fingerprint_from_hex(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn instruction_edits_do_not_change_the_fingerprint() {
        let mut f = diamond();
        let before = cfg_shape_fingerprint(&f);
        // Add an instruction: analyses don't depend on it.
        let j = BlockId(3);
        f.add_inst(
            j,
            crate::inst::Op::Bin {
                op: crate::inst::BinOp::Add,
                a: Operand::i32(1),
                b: Operand::i32(2),
            },
            Some(Ty::I32),
        );
        assert_eq!(before, cfg_shape_fingerprint(&f));
        // Retarget a terminator: that *is* a shape change.
        f.blocks[1].term = Term::Br(BlockId(2));
        assert_ne!(before, cfg_shape_fingerprint(&f));
    }

    /// The debug contract: serving a cached analysis after an uninvalidated
    /// CFG-shape change must panic (debug builds only — release trusts the
    /// pass manager's invalidation, which tier-1 tests exercise in debug).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale AnalysisCache")]
    fn stale_analysis_is_never_served() {
        let mut f = diamond();
        let mut ac = AnalysisCache::new();
        let _ = ac.cfg(&f);
        f.blocks[0].term = Term::Br(BlockId(3)); // CFG change, no invalidate
        let _ = ac.cfg(&f); // must panic, not serve the stale adjacency
    }
}
