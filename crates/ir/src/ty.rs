//! Scalar value types.

use std::fmt;

/// The scalar types of the IR.
///
/// The IR targets a 32-bit machine (RV32IM), so the widest integer is 32 bits.
/// Wider arithmetic (the paper's `u64` example in Fig. 11) is expressed as pairs
/// of `I32` values at the source level, which is exactly what creates the register
/// pressure the paper observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// One-bit boolean, produced by comparisons.
    I1,
    /// Byte, used by byte arrays and string data.
    I8,
    /// The native 32-bit integer.
    I32,
    /// A byte-addressed pointer (32-bit at machine level).
    Ptr,
}

impl Ty {
    /// Size of a value of this type in memory, in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I32 | Ty::Ptr => 4,
        }
    }

    /// Natural alignment in bytes.
    pub fn align_bytes(self) -> u32 {
        self.size_bytes()
    }

    /// Whether the type is an integer (everything except `Ptr`).
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::Ptr)
    }

    /// Mask a raw 64-bit value down to this type's bit width, zero-extended.
    pub fn truncate_u(self, v: i64) -> i64 {
        match self {
            Ty::I1 => v & 1,
            Ty::I8 => v & 0xff,
            Ty::I32 | Ty::Ptr => v & 0xffff_ffff,
        }
    }

    /// Mask a raw 64-bit value down to this type's bit width, sign-extended.
    pub fn truncate_s(self, v: i64) -> i64 {
        match self {
            Ty::I1 => {
                if v & 1 != 0 {
                    -1
                } else {
                    0
                }
            }
            Ty::I8 => (v as i8) as i64,
            Ty::I32 | Ty::Ptr => (v as i32) as i64,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I32 => "i32",
            Ty::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Ty::I1.size_bytes(), 1);
        assert_eq!(Ty::I8.size_bytes(), 1);
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::Ptr.size_bytes(), 4);
    }

    #[test]
    fn truncation_unsigned() {
        assert_eq!(Ty::I8.truncate_u(0x1ff), 0xff);
        assert_eq!(Ty::I1.truncate_u(2), 0);
        assert_eq!(Ty::I32.truncate_u(-1), 0xffff_ffff);
    }

    #[test]
    fn truncation_signed() {
        assert_eq!(Ty::I8.truncate_s(0xff), -1);
        assert_eq!(Ty::I32.truncate_s(0xffff_ffff), -1);
        assert_eq!(Ty::I1.truncate_s(1), -1);
        assert_eq!(Ty::I1.truncate_s(0), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Ty::I32.to_string(), "i32");
        assert_eq!(Ty::Ptr.to_string(), "ptr");
    }
}
