//! Textual IR printer (LLVM-flavoured), for debugging and golden tests.

use crate::func::{Function, Module, ValueDef, ValueId};
use crate::inst::{Op, Operand, Term};
use std::fmt::Write;

fn fmt_operand(_f: &Function, o: &Operand) -> String {
    match o {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::Const { value, ty } => format!("{value}:{ty}"),
    }
}

fn fmt_inst(func: &Function, m: &Module, v: ValueId) -> String {
    let data = &func.values[v.index()];
    let op = match &data.def {
        ValueDef::Inst(op) => op,
        ValueDef::Param { index } => return format!("%{} = param {}", v.0, index),
    };
    let lhs = match data.ty {
        Some(ty) => format!("%{} = ", v.0) + &format!("{ty} "),
        None => String::new(),
    };
    let body = match op {
        Op::Bin { op, a, b } => {
            format!(
                "{} {}, {}",
                op.mnemonic(),
                fmt_operand(func, a),
                fmt_operand(func, b)
            )
        }
        Op::Icmp { pred, a, b } => format!(
            "icmp {} {}, {}",
            pred.mnemonic(),
            fmt_operand(func, a),
            fmt_operand(func, b)
        ),
        Op::Select { c, t, f } => format!(
            "select {}, {}, {}",
            fmt_operand(func, c),
            fmt_operand(func, t),
            fmt_operand(func, f)
        ),
        Op::Load { ptr, ty } => format!("load {ty}, {}", fmt_operand(func, ptr)),
        Op::Store { ptr, val, ty } => format!(
            "store {ty} {}, {}",
            fmt_operand(func, val),
            fmt_operand(func, ptr)
        ),
        Op::Alloca { elem, count } => format!("alloca {elem} x {count}"),
        Op::Gep {
            base,
            index,
            stride,
            offset,
        } => format!(
            "gep {}, {} * {stride} + {offset}",
            fmt_operand(func, base),
            fmt_operand(func, index)
        ),
        Op::GlobalAddr(g) => {
            let name = m
                .globals
                .get(g.index())
                .map(|gl| gl.name.as_str())
                .unwrap_or("?");
            format!("global_addr @{name}")
        }
        Op::Call { callee, args } => {
            let name = m
                .funcs
                .get(callee.index())
                .map(|f| f.name.as_str())
                .unwrap_or("?");
            let a: Vec<String> = args.iter().map(|x| fmt_operand(func, x)).collect();
            format!("call @{name}({})", a.join(", "))
        }
        Op::Ecall { code, args } => {
            let a: Vec<String> = args.iter().map(|x| fmt_operand(func, x)).collect();
            format!("ecall {}({})", crate::ecall::name(*code), a.join(", "))
        }
        Op::Phi { incoming } => {
            let a: Vec<String> = incoming
                .iter()
                .map(|(b, o)| format!("[bb{}: {}]", b.0, fmt_operand(func, o)))
                .collect();
            format!("phi {}", a.join(", "))
        }
        Op::Cast { kind, v, to } => {
            let k = match kind {
                crate::inst::CastKind::Zext => "zext",
                crate::inst::CastKind::Sext => "sext",
                crate::inst::CastKind::Trunc => "trunc",
            };
            format!("{k} {} to {to}", fmt_operand(func, v))
        }
        Op::Copy(v) => format!("copy {}", fmt_operand(func, v)),
        Op::Nop => "nop".to_string(),
    };
    format!("{lhs}{body}")
}

fn fmt_term(func: &Function, t: &Term) -> String {
    match t {
        Term::Br(b) => format!("br bb{}", b.0),
        Term::CondBr { c, t, f } => {
            format!("br {}, bb{}, bb{}", fmt_operand(func, c), t.0, f.0)
        }
        Term::Switch { v, cases, default } => {
            let cs: Vec<String> = cases
                .iter()
                .map(|(k, b)| format!("{k} => bb{}", b.0))
                .collect();
            format!(
                "switch {} [{}], default bb{}",
                fmt_operand(func, v),
                cs.join(", "),
                default.0
            )
        }
        Term::Ret(Some(v)) => format!("ret {}", fmt_operand(func, v)),
        Term::Ret(None) => "ret".to_string(),
        Term::Unreachable => "unreachable".to_string(),
    }
}

/// Render one function as text.
pub fn function_to_string(func: &Function, m: &Module) -> String {
    let mut s = String::new();
    let params: Vec<String> = func
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("%{i}: {t}"))
        .collect();
    let ret = match func.ret {
        Some(t) => format!(" -> {t}"),
        None => String::new(),
    };
    let _ = writeln!(s, "fn @{}({}){ret} {{", func.name, params.join(", "));
    for b in func.reachable_blocks() {
        let _ = writeln!(s, "bb{}:", b.0);
        for &v in &func.blocks[b.index()].insts {
            let _ = writeln!(s, "  {}", fmt_inst(func, m, v));
        }
        let _ = writeln!(s, "  {}", fmt_term(func, &func.blocks[b.index()].term));
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render a whole module as text.
pub fn module_to_string(m: &Module) -> String {
    let mut s = String::new();
    for g in &m.globals {
        let _ = writeln!(
            s,
            "global @{}: {} bytes (init {})",
            g.name,
            g.size,
            g.init.len()
        );
    }
    for f in &m.funcs {
        s.push_str(&function_to_string(f, m));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Operand};
    use crate::ty::Ty;

    #[test]
    fn prints_readably() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I32], Some(Ty::I32));
        let v = b.bin(BinOp::Add, Operand::val(b.param(0)), Operand::i32(2));
        b.ret(Some(Operand::val(v)));
        let f = b.finish();
        let mut m = Module::new();
        m.add_func(f);
        let text = module_to_string(&m);
        assert!(text.contains("fn @f(%0: i32) -> i32 {"));
        assert!(text.contains("add %0, 2:i32"));
        assert!(text.contains("ret %1"));
    }

    #[test]
    fn prints_memory_and_calls() {
        let mut m = Module::new();
        let g = m.add_global(crate::Global::zeroed("buf", 64));
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let base = b.global_addr(g);
        let p = b.gep(Operand::val(base), Operand::i32(3), 4, 0);
        b.store(Operand::val(p), Operand::i32(7), Ty::I32);
        let l = b.load(Operand::val(p), Ty::I32);
        b.ret(Some(Operand::val(l)));
        m.add_func(b.finish());
        let text = module_to_string(&m);
        assert!(text.contains("global @buf: 64 bytes"));
        assert!(text.contains("global_addr @buf"));
        assert!(text.contains("store i32"));
        assert!(text.contains("load i32"));
    }
}
