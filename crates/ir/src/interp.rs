//! Reference interpreter for the IR.
//!
//! This is the workspace's *semantic oracle*: differential tests run a program
//! through every optimization profile and demand that the guest-visible
//! behaviour (return value + journal) matches what this interpreter computes
//! on the unoptimized module.
//!
//! Value representation invariants:
//! - `i1` values are 0 or 1,
//! - `i8` values are zero-extended (0..=255); `load i8` behaves like `lbu`,
//! - `i32` values are sign-extended into the `i64` slots,
//! - `ptr` values are zero-extended 32-bit addresses.

use crate::ecall;
use crate::func::{BlockId, FuncId, Function, Module, ValueDef, ValueId};
use crate::inst::{CastKind, Op, Operand, Term};
use crate::ty::Ty;
use std::fmt;

/// Total simulated memory size (8 MiB), shared with the zkVM memory map.
pub const MEM_SIZE: u32 = 0x0080_0000;
/// Initial stack pointer (grows down), leaving a guard gap at the top.
pub const STACK_TOP: u32 = MEM_SIZE - 0x1000;

/// Handler for precompile-style ecalls (SHA-256, Keccak, signatures).
///
/// The interpreter handles `halt`, `commit`, and `read_input` itself and
/// delegates everything else here.
pub trait EcallHandler {
    /// Handle ecall `code` with raw argument registers `args`, with full
    /// access to guest memory. Returns the `i32` result (sign-extended).
    fn handle(&mut self, code: u32, args: &[i64], mem: &mut [u8]) -> i64;
}

/// A no-op handler: every precompile returns 0 and leaves memory untouched.
///
/// Sufficient for tests that do not exercise crypto precompiles. The real
/// handler lives in `zkvmopt-vm` and is backed by `zkvmopt-crypto`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopEcalls;

impl EcallHandler for NopEcalls {
    fn handle(&mut self, _code: u32, _args: &[i64], _mem: &mut [u8]) -> i64 {
        0
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Abort after this many executed IR instructions.
    pub max_steps: u64,
    /// Values served by the `read_input` ecall.
    pub inputs: Vec<i32>,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            max_steps: 500_000_000,
            inputs: Vec::new(),
            max_depth: 512,
        }
    }
}

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Out-of-bounds or null memory access.
    MemFault { addr: u32 },
    /// The step budget was exhausted.
    StepLimit,
    /// Call depth exceeded.
    DepthLimit,
    /// Executed an `unreachable` terminator.
    Unreachable,
    /// The module has no `main`.
    NoMain,
    /// Malformed IR encountered mid-run (should be caught by the verifier).
    Malformed(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MemFault { addr } => write!(f, "memory fault at {addr:#x}"),
            InterpError::StepLimit => write!(f, "step limit exceeded"),
            InterpError::DepthLimit => write!(f, "call depth exceeded"),
            InterpError::Unreachable => write!(f, "reached unreachable"),
            InterpError::NoMain => write!(f, "module has no main function"),
            InterpError::Malformed(m) => write!(f, "malformed IR: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The observable result of a guest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpOutcome {
    /// `main`'s return value (sign-extended), or the halt code if the guest
    /// called the `halt` ecall.
    pub exit_value: i64,
    /// Values committed via the `commit` ecall, in order.
    pub journal: Vec<i32>,
    /// Executed IR instruction count.
    pub steps: u64,
    /// Whether the guest terminated via the `halt` ecall.
    pub halted: bool,
}

enum Flow {
    Return(Option<i64>),
    Halt(i32),
}

/// The interpreter. One instance per run.
pub struct Interp<'m, H: EcallHandler> {
    module: &'m Module,
    mem: Vec<u8>,
    global_addrs: Vec<u32>,
    sp: u32,
    steps: u64,
    journal: Vec<i32>,
    config: InterpConfig,
    handler: H,
}

impl<'m, H: EcallHandler> Interp<'m, H> {
    /// Create an interpreter over `module` with handler `handler`.
    pub fn new(module: &'m Module, config: InterpConfig, handler: H) -> Interp<'m, H> {
        let global_addrs = module.layout_globals();
        let mut mem = vec![0u8; MEM_SIZE as usize];
        for (g, &addr) in module.globals.iter().zip(&global_addrs) {
            let end = addr as usize + g.init.len();
            mem[addr as usize..end].copy_from_slice(&g.init);
        }
        Interp {
            module,
            mem,
            global_addrs,
            sp: STACK_TOP,
            steps: 0,
            journal: Vec::new(),
            config,
            handler,
        }
    }

    /// Run the module's `main` function to completion.
    ///
    /// # Errors
    /// Returns an [`InterpError`] on faults, missing `main`, or exhausted
    /// budgets.
    pub fn run_main(mut self) -> Result<InterpOutcome, InterpError> {
        let main = self.module.main_func().ok_or(InterpError::NoMain)?;
        let flow = self.run_function(main, &[], 0)?;
        let (exit_value, halted) = match flow {
            Flow::Halt(code) => (code as i64, true),
            Flow::Return(v) => (v.unwrap_or(0), false),
        };
        Ok(InterpOutcome {
            exit_value,
            journal: self.journal,
            steps: self.steps,
            halted,
        })
    }

    fn run_function(
        &mut self,
        fid: FuncId,
        args: &[i64],
        depth: usize,
    ) -> Result<Flow, InterpError> {
        if depth > self.config.max_depth {
            return Err(InterpError::DepthLimit);
        }
        let f: &Function = &self.module.funcs[fid.index()];
        let saved_sp = self.sp;
        let mut vals: Vec<i64> = vec![0; f.values.len()];
        for (i, a) in args.iter().enumerate() {
            vals[i] = *a;
        }
        let mut block = f.entry;
        let mut prev: Option<BlockId> = None;
        'blocks: loop {
            // Phi nodes: parallel evaluation against the predecessor edge.
            let insts = &f.blocks[block.index()].insts;
            let mut phi_updates: Vec<(ValueId, i64)> = Vec::new();
            let mut first_non_phi = 0;
            for (i, &v) in insts.iter().enumerate() {
                if let Some(Op::Phi { incoming }) = f.op(v) {
                    let p = prev.ok_or_else(|| {
                        InterpError::Malformed(format!("phi in entry block of @{}", f.name))
                    })?;
                    let (_, o) = incoming.iter().find(|(b, _)| *b == p).ok_or_else(|| {
                        InterpError::Malformed(format!("phi %{} missing edge from bb{}", v.0, p.0))
                    })?;
                    phi_updates.push((v, self.eval(&vals, o)));
                    first_non_phi = i + 1;
                } else {
                    break;
                }
            }
            for (v, x) in phi_updates {
                vals[v.index()] = x;
                self.bump()?;
            }
            for &v in &f.blocks[block.index()].insts[first_non_phi..] {
                self.bump()?;
                let op = match &f.values[v.index()].def {
                    ValueDef::Inst(op) => op,
                    ValueDef::Param { .. } => {
                        return Err(InterpError::Malformed("param in block".into()))
                    }
                };
                match op {
                    Op::Bin { op, a, b } => {
                        let r = op.eval32(self.eval(&vals, a), self.eval(&vals, b));
                        vals[v.index()] = r;
                    }
                    Op::Icmp { pred, a, b } => {
                        vals[v.index()] =
                            pred.eval32(self.eval(&vals, a), self.eval(&vals, b)) as i64;
                    }
                    Op::Select { c, t, f: fo } => {
                        let cv = self.eval(&vals, c);
                        vals[v.index()] = if cv != 0 {
                            self.eval(&vals, t)
                        } else {
                            self.eval(&vals, fo)
                        };
                    }
                    Op::Load { ptr, ty } => {
                        let addr = self.eval(&vals, ptr) as u32;
                        vals[v.index()] = self.load(addr, *ty)?;
                    }
                    Op::Store { ptr, val, ty } => {
                        let addr = self.eval(&vals, ptr) as u32;
                        let x = self.eval(&vals, val);
                        self.store(addr, x, *ty)?;
                    }
                    Op::Alloca { elem, count } => {
                        let bytes = (elem.size_bytes() * count + 3) & !3;
                        self.sp = self
                            .sp
                            .checked_sub(bytes)
                            .ok_or(InterpError::MemFault { addr: 0 })?;
                        if self.sp < crate::func::GLOBAL_BASE {
                            return Err(InterpError::MemFault { addr: self.sp });
                        }
                        vals[v.index()] = self.sp as i64;
                    }
                    Op::Gep {
                        base,
                        index,
                        stride,
                        offset,
                    } => {
                        let b = self.eval(&vals, base) as u32;
                        let i = self.eval(&vals, index) as u32;
                        let addr = b
                            .wrapping_add(i.wrapping_mul(*stride))
                            .wrapping_add(*offset as u32);
                        vals[v.index()] = addr as i64;
                    }
                    Op::GlobalAddr(g) => {
                        vals[v.index()] = self.global_addrs[g.index()] as i64;
                    }
                    Op::Call { callee, args } => {
                        let a: Vec<i64> = args.iter().map(|o| self.eval(&vals, o)).collect();
                        match self.run_function(*callee, &a, depth + 1)? {
                            Flow::Return(r) => vals[v.index()] = r.unwrap_or(0),
                            Flow::Halt(c) => {
                                self.sp = saved_sp;
                                return Ok(Flow::Halt(c));
                            }
                        }
                    }
                    Op::Ecall { code, args } => {
                        let a: Vec<i64> = args.iter().map(|o| self.eval(&vals, o)).collect();
                        match *code {
                            ecall::HALT => {
                                let code = a.first().copied().unwrap_or(0) as i32;
                                self.sp = saved_sp;
                                return Ok(Flow::Halt(code));
                            }
                            ecall::COMMIT => {
                                self.journal.push(a.first().copied().unwrap_or(0) as i32);
                                vals[v.index()] = 0;
                            }
                            ecall::READ_INPUT => {
                                let idx = a.first().copied().unwrap_or(0) as usize;
                                vals[v.index()] =
                                    self.config.inputs.get(idx).copied().unwrap_or(0) as i64;
                            }
                            other => {
                                vals[v.index()] = self.handler.handle(other, &a, &mut self.mem);
                            }
                        }
                    }
                    Op::Phi { .. } => {
                        return Err(InterpError::Malformed("phi after non-phi".into()))
                    }
                    Op::Cast { kind, v: src, to } => {
                        let sv = self.eval(&vals, src);
                        let sty = f
                            .operand_ty(src)
                            .ok_or_else(|| InterpError::Malformed("cast of void".into()))?;
                        vals[v.index()] = match kind {
                            CastKind::Zext => canonical(*to, sty.truncate_u(sv)),
                            CastKind::Sext => canonical(*to, sty.truncate_s(sv)),
                            CastKind::Trunc => canonical(*to, sv),
                        };
                    }
                    Op::Copy(src) => {
                        vals[v.index()] = self.eval(&vals, src);
                    }
                    Op::Nop => {}
                }
            }
            match &f.blocks[block.index()].term {
                Term::Br(b) => {
                    prev = Some(block);
                    block = *b;
                }
                Term::CondBr { c, t, f: fb } => {
                    let cv = self.eval(&vals, c);
                    prev = Some(block);
                    block = if cv != 0 { *t } else { *fb };
                }
                Term::Switch { v, cases, default } => {
                    let x = self.eval(&vals, v) as i32 as i64;
                    prev = Some(block);
                    block = cases
                        .iter()
                        .find(|(k, _)| *k == x)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                }
                Term::Ret(v) => {
                    let r = v.as_ref().map(|o| self.eval(&vals, o));
                    self.sp = saved_sp;
                    return Ok(Flow::Return(r));
                }
                Term::Unreachable => return Err(InterpError::Unreachable),
            }
            self.bump()?;
            continue 'blocks;
        }
    }

    fn bump(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > self.config.max_steps {
            return Err(InterpError::StepLimit);
        }
        Ok(())
    }

    fn eval(&self, vals: &[i64], o: &Operand) -> i64 {
        match o {
            Operand::Value(v) => vals[v.index()],
            Operand::Const { value, ty } => canonical(*ty, *value),
        }
    }

    fn load(&self, addr: u32, ty: Ty) -> Result<i64, InterpError> {
        let size = ty.size_bytes();
        if addr < 0x100 || addr.checked_add(size).is_none_or(|e| e > MEM_SIZE) {
            return Err(InterpError::MemFault { addr });
        }
        let a = addr as usize;
        Ok(match ty {
            Ty::I1 => (self.mem[a] & 1) as i64,
            Ty::I8 => self.mem[a] as i64,
            Ty::I32 | Ty::Ptr => {
                let raw = u32::from_le_bytes([
                    self.mem[a],
                    self.mem[a + 1],
                    self.mem[a + 2],
                    self.mem[a + 3],
                ]);
                canonical(ty, raw as i64)
            }
        })
    }

    fn store(&mut self, addr: u32, val: i64, ty: Ty) -> Result<(), InterpError> {
        let size = ty.size_bytes();
        if addr < 0x100 || addr.checked_add(size).is_none_or(|e| e > MEM_SIZE) {
            return Err(InterpError::MemFault { addr });
        }
        let a = addr as usize;
        match ty {
            Ty::I1 => self.mem[a] = (val & 1) as u8,
            Ty::I8 => self.mem[a] = val as u8,
            Ty::I32 | Ty::Ptr => {
                self.mem[a..a + 4].copy_from_slice(&(val as u32).to_le_bytes());
            }
        }
        Ok(())
    }
}

/// Canonicalize a raw value for storage in a value slot of type `ty`.
fn canonical(ty: Ty, v: i64) -> i64 {
    match ty {
        Ty::I1 => v & 1,
        Ty::I8 => v & 0xff,
        Ty::I32 => (v as i32) as i64,
        Ty::Ptr => v & 0xffff_ffff,
    }
}

/// Convenience: run `main` of `module` with the given inputs and a no-op
/// precompile handler.
///
/// # Errors
/// Propagates any [`InterpError`].
pub fn run_module(module: &Module, inputs: &[i32]) -> Result<InterpOutcome, InterpError> {
    let config = InterpConfig {
        inputs: inputs.to_vec(),
        ..InterpConfig::default()
    };
    Interp::new(module, config, NopEcalls).run_main()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Pred};

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.add_func(f);
        m
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let x = b.bin(BinOp::Mul, Operand::i32(6), Operand::i32(7));
        b.ret(Some(Operand::val(x)));
        let m = module_with(b.finish());
        let out = run_module(&m, &[]).unwrap();
        assert_eq!(out.exit_value, 42);
        assert!(!out.halted);
    }

    #[test]
    fn loop_with_phis() {
        // sum 0..10 == 45
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let s = b.phi(Ty::I32, vec![(entry, Operand::i32(0))]);
        let c = b.icmp(Pred::Slt, Operand::val(i), Operand::i32(10));
        b.cond_br(Operand::val(c), body, exit);
        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, Operand::val(s), Operand::val(i));
        let i2 = b.bin(BinOp::Add, Operand::val(i), Operand::i32(1));
        b.br(header);
        b.add_phi_incoming(i, body, Operand::val(i2));
        b.add_phi_incoming(s, body, Operand::val(s2));
        b.switch_to(exit);
        b.ret(Some(Operand::val(s)));
        let m = module_with(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, 45);
    }

    #[test]
    fn memory_roundtrip_via_alloca() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let p = b.alloca(Ty::I32, 4);
        let slot = b.gep(Operand::val(p), Operand::i32(2), 4, 0);
        b.store(Operand::val(slot), Operand::i32(-5), Ty::I32);
        let l = b.load(Operand::val(slot), Ty::I32);
        b.ret(Some(Operand::val(l)));
        let m = module_with(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, -5);
    }

    #[test]
    fn globals_initialized_and_addressable() {
        let mut m = Module::new();
        let g = m.add_global(crate::Global::with_data("d", vec![1, 0, 0, 0, 2, 0, 0, 0]));
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let base = b.global_addr(g);
        let a = b.load(Operand::val(base), Ty::I32);
        let p1 = b.gep(Operand::val(base), Operand::i32(1), 4, 0);
        let c = b.load(Operand::val(p1), Ty::I32);
        let s = b.bin(BinOp::Add, Operand::val(a), Operand::val(c));
        b.ret(Some(Operand::val(s)));
        m.add_func(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, 3);
    }

    #[test]
    fn calls_and_recursion() {
        // fact(5) = 120 via recursion.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("fact", vec![Ty::I32], Some(Ty::I32));
        let base_bb = fb.new_block();
        let rec_bb = fb.new_block();
        let n = fb.param(0);
        let c = fb.icmp(Pred::Sle, Operand::val(n), Operand::i32(1));
        fb.cond_br(Operand::val(c), base_bb, rec_bb);
        fb.switch_to(base_bb);
        fb.ret(Some(Operand::i32(1)));
        fb.switch_to(rec_bb);
        let n1 = fb.bin(BinOp::Sub, Operand::val(n), Operand::i32(1));
        let r = fb.call(FuncId(0), vec![Operand::val(n1)], Some(Ty::I32));
        let p = fb.bin(BinOp::Mul, Operand::val(n), Operand::val(r));
        fb.ret(Some(Operand::val(p)));
        m.add_func(fb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let r = b.call(FuncId(0), vec![Operand::i32(5)], Some(Ty::I32));
        b.ret(Some(Operand::val(r)));
        m.add_func(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, 120);
    }

    #[test]
    fn halt_and_journal() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        b.ecall(ecall::COMMIT, vec![Operand::i32(11)]);
        b.ecall(ecall::COMMIT, vec![Operand::i32(22)]);
        b.ecall(ecall::HALT, vec![Operand::i32(3)]);
        b.ret(Some(Operand::i32(0)));
        let m = module_with(b.finish());
        let out = run_module(&m, &[]).unwrap();
        assert!(out.halted);
        assert_eq!(out.exit_value, 3);
        assert_eq!(out.journal, vec![11, 22]);
    }

    #[test]
    fn read_input_serves_config_values() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let x = b.ecall(ecall::READ_INPUT, vec![Operand::i32(1)]);
        b.ret(Some(Operand::val(x)));
        let m = module_with(b.finish());
        assert_eq!(run_module(&m, &[7, 9]).unwrap().exit_value, 9);
    }

    #[test]
    fn mem_fault_on_null_access() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let z = b.gep(Operand::i32(0), Operand::i32(0), 1, 0);
        let l = b.load(Operand::val(z), Ty::I32);
        b.ret(Some(Operand::val(l)));
        let m = module_with(b.finish());
        assert!(matches!(
            run_module(&m, &[]),
            Err(InterpError::MemFault { .. })
        ));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let l = b.new_block();
        b.br(l);
        b.switch_to(l);
        b.br(l);
        let m = module_with(b.finish());
        let cfg = InterpConfig {
            max_steps: 1000,
            ..Default::default()
        };
        let r = Interp::new(&m, cfg, NopEcalls).run_main();
        assert_eq!(r.unwrap_err(), InterpError::StepLimit);
    }

    #[test]
    fn byte_loads_are_zero_extended() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let p = b.alloca(Ty::I8, 1);
        b.store(Operand::val(p), Operand::i8(0xff), Ty::I8);
        let l = b.load(Operand::val(p), Ty::I8);
        let w = b.cast(CastKind::Zext, Operand::val(l), Ty::I32);
        b.ret(Some(Operand::val(w)));
        let m = module_with(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, 255);
    }

    #[test]
    fn sext_of_byte() {
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        let w = b.cast(CastKind::Sext, Operand::i8(0xff), Ty::I32);
        b.ret(Some(Operand::val(w)));
        let m = module_with(b.finish());
        assert_eq!(run_module(&m, &[]).unwrap().exit_value, -1);
    }

    #[test]
    fn gep_with_i32_base_is_a_fault_guard() {
        // Using a constant pointer below 0x100 faults; this is the null guard.
        let mut b = FunctionBuilder::new("main", vec![], Some(Ty::I32));
        b.store(
            Operand::Const {
                value: 0x10,
                ty: Ty::Ptr,
            },
            Operand::i32(1),
            Ty::I32,
        );
        b.ret(Some(Operand::i32(0)));
        let m = module_with(b.finish());
        assert!(matches!(
            run_module(&m, &[]),
            Err(InterpError::MemFault { addr: 0x10 })
        ));
    }
}
