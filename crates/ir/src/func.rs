//! Functions, basic blocks, globals, and modules.

use crate::inst::{Op, Operand, Term};
use crate::ty::Ty;
use std::collections::HashSet;

/// Index of an SSA value within a [`Function`]'s value arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a basic block within a [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl ValueId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FuncId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GlobalId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How an SSA value is defined.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum ValueDef {
    /// The `index`-th function parameter.
    Param { index: usize },
    /// An instruction result (or a result-less instruction slot).
    Inst(Op),
}

/// One entry in a function's value arena.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct ValueData {
    /// The defining construct.
    pub def: ValueDef,
    /// Result type; `None` for result-less instructions (`store`, `nop`,
    /// void calls).
    pub ty: Option<Ty>,
}

/// A basic block: an ordered instruction list plus a terminator.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct BlockData {
    /// Instruction list, in execution order. Phi nodes must form a prefix.
    pub insts: Vec<ValueId>,
    /// The block terminator.
    pub term: Term,
}

impl BlockData {
    fn new() -> BlockData {
        BlockData {
            insts: Vec::new(),
            term: Term::Unreachable,
        }
    }
}

/// A function in SSA form.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name (unique within a module).
    pub name: String,
    /// Parameter types. Parameter `i` is `ValueId(i)`.
    pub params: Vec<Ty>,
    /// Return type, or `None` for `void`.
    pub ret: Option<Ty>,
    /// The value arena. The first `params.len()` slots are parameters.
    pub values: Vec<ValueData>,
    /// The block arena. Unreachable blocks may linger until `compact`.
    pub blocks: Vec<BlockData>,
    /// The entry block.
    pub entry: BlockId,
    /// Always-inline hint (source-level `#[inline(always)]` analogue).
    pub always_inline: bool,
    /// Never-inline hint.
    pub no_inline: bool,
    /// Computed by `function-attrs`: the function neither reads nor writes
    /// memory and has no side effects (calls may be CSE'd or removed).
    pub readnone: bool,
    /// Computed by `function-attrs`: the function may read but never writes
    /// memory and has no side effects.
    pub readonly: bool,
}

impl Function {
    /// Create a function with an (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>) -> Function {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, t)| ValueData {
                def: ValueDef::Param { index: i },
                ty: Some(*t),
            })
            .collect();
        Function {
            name: name.into(),
            params,
            ret,
            values,
            blocks: vec![BlockData::new()],
            entry: BlockId(0),
            always_inline: false,
            no_inline: false,
            readnone: false,
            readonly: false,
        }
    }

    /// The `ValueId` of parameter `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// Append a fresh empty block.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(BlockData::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Append an instruction to `block`, returning its value id.
    pub fn add_inst(&mut self, block: BlockId, op: Op, ty: Option<Ty>) -> ValueId {
        let v = self.new_value(op, ty);
        self.blocks[block.index()].insts.push(v);
        v
    }

    /// Insert an instruction at position `at` within `block`.
    pub fn insert_inst(&mut self, block: BlockId, at: usize, op: Op, ty: Option<Ty>) -> ValueId {
        let v = self.new_value(op, ty);
        self.blocks[block.index()].insts.insert(at, v);
        v
    }

    /// Allocate a value slot without placing it in a block.
    ///
    /// The caller is responsible for inserting the id into exactly one block's
    /// instruction list (the verifier checks this).
    pub fn new_value(&mut self, op: Op, ty: Option<Ty>) -> ValueId {
        self.values.push(ValueData {
            def: ValueDef::Inst(op),
            ty,
        });
        ValueId((self.values.len() - 1) as u32)
    }

    /// The defining op of `v`, if `v` is an instruction.
    pub fn op(&self, v: ValueId) -> Option<&Op> {
        match &self.values[v.index()].def {
            ValueDef::Inst(op) => Some(op),
            ValueDef::Param { .. } => None,
        }
    }

    /// Mutable access to the defining op of `v`.
    pub fn op_mut(&mut self, v: ValueId) -> Option<&mut Op> {
        match &mut self.values[v.index()].def {
            ValueDef::Inst(op) => Some(op),
            ValueDef::Param { .. } => None,
        }
    }

    /// Result type of `v` (`None` for result-less instructions).
    pub fn ty(&self, v: ValueId) -> Option<Ty> {
        self.values[v.index()].ty
    }

    /// Type of an operand.
    pub fn operand_ty(&self, o: &Operand) -> Option<Ty> {
        match o {
            Operand::Value(v) => self.ty(*v),
            Operand::Const { ty, .. } => Some(*ty),
        }
    }

    /// Remove `v` from `block`'s instruction list and tombstone its slot.
    ///
    /// Uses of `v` elsewhere become dangling; callers must have rewritten them
    /// (the verifier will complain otherwise).
    pub fn remove_inst(&mut self, block: BlockId, v: ValueId) {
        self.blocks[block.index()].insts.retain(|x| *x != v);
        self.values[v.index()] = ValueData {
            def: ValueDef::Inst(Op::Nop),
            ty: None,
        };
    }

    /// Tombstone `v` without touching block lists (for bulk editing where the
    /// caller rebuilds the list).
    pub fn kill_value(&mut self, v: ValueId) {
        self.values[v.index()] = ValueData {
            def: ValueDef::Inst(Op::Nop),
            ty: None,
        };
    }

    /// Replace every use of value `from` (in instructions and terminators of
    /// reachable and unreachable blocks alike) with operand `to`.
    pub fn replace_all_uses(&mut self, from: ValueId, to: Operand) {
        // Collect instruction ids first to appease the borrow checker.
        let all: Vec<ValueId> = (0..self.values.len() as u32).map(ValueId).collect();
        for v in all {
            if let ValueDef::Inst(op) = &mut self.values[v.index()].def {
                op.for_each_operand_mut(|o| {
                    if *o == Operand::Value(from) {
                        *o = to;
                    }
                });
            }
        }
        for b in &mut self.blocks {
            b.term.for_each_operand_mut(|o| {
                if *o == Operand::Value(from) {
                    *o = to;
                }
            });
        }
    }

    /// Number of uses of `v` across all instructions and terminators.
    pub fn use_count(&self, v: ValueId) -> usize {
        let mut n = 0;
        for vd in &self.values {
            if let ValueDef::Inst(op) = &vd.def {
                op.for_each_operand(|o| {
                    if *o == Operand::Value(v) {
                        n += 1;
                    }
                });
            }
        }
        for b in &self.blocks {
            b.term.for_each_operand(|o| {
                if *o == Operand::Value(v) {
                    n += 1;
                }
            });
        }
        n
    }

    /// Ids of all blocks (including ones that may be unreachable).
    pub fn block_ids(&self) -> Vec<BlockId> {
        (0..self.blocks.len() as u32).map(BlockId).collect()
    }

    /// Blocks reachable from entry, in depth-first preorder.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            order.push(b);
            let succs = self.blocks[b.index()].term.successors();
            for s in succs.into_iter().rev() {
                stack.push(s);
            }
        }
        order
    }

    /// Count instructions in reachable blocks (a static size metric used by the
    /// inliner and the `-Os`/`-Oz` pipelines).
    pub fn size(&self) -> usize {
        self.reachable_blocks()
            .iter()
            .map(|b| self.blocks[b.index()].insts.len())
            .sum()
    }

    /// Whether any reachable instruction is a call to `callee`.
    pub fn calls(&self, callee: FuncId) -> bool {
        for b in self.reachable_blocks() {
            for &v in &self.blocks[b.index()].insts {
                if let Some(Op::Call { callee: c, .. }) = self.op(v) {
                    if *c == callee {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// A statically allocated global byte region.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents; shorter than `size` means zero-padded.
    pub init: Vec<u8>,
    /// Alignment in bytes (power of two).
    pub align: u32,
}

impl Global {
    /// A zero-initialized global.
    pub fn zeroed(name: impl Into<String>, size: u32) -> Global {
        Global {
            name: name.into(),
            size,
            init: Vec::new(),
            align: 4,
        }
    }

    /// A global with initial data.
    pub fn with_data(name: impl Into<String>, data: Vec<u8>) -> Global {
        let size = data.len() as u32;
        Global {
            name: name.into(),
            size,
            init: data,
            align: 4,
        }
    }
}

/// A compilation unit: functions plus globals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// All functions. `FuncId` indexes this vector.
    pub funcs: Vec<Function>,
    /// All globals. `GlobalId` indexes this vector.
    pub globals: Vec<Global>,
}

/// Base virtual address where globals are laid out (both in the reference
/// interpreter and in the zkVM memory map).
pub const GLOBAL_BASE: u32 = 0x0002_0000;

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Add a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId((self.funcs.len() - 1) as u32)
    }

    /// Add a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        self.globals.push(g);
        GlobalId((self.globals.len() - 1) as u32)
    }

    /// Find a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The function named `main`, which every guest program must define.
    pub fn main_func(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Assign each global a virtual address starting at [`GLOBAL_BASE`].
    ///
    /// Returns one address per global, respecting alignment.
    pub fn layout_globals(&self) -> Vec<u32> {
        let mut addr = GLOBAL_BASE;
        let mut out = Vec::with_capacity(self.globals.len());
        for g in &self.globals {
            let align = g.align.max(1);
            addr = (addr + align - 1) & !(align - 1);
            out.push(addr);
            addr += g.size.max(1);
        }
        out
    }

    /// Total static instruction count across reachable code in all functions.
    pub fn size(&self) -> usize {
        self.funcs.iter().map(Function::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn sample() -> Function {
        let mut f = Function::new("f", vec![Ty::I32], Some(Ty::I32));
        let p = f.param(0);
        let v = f.add_inst(
            f.entry,
            Op::Bin {
                op: BinOp::Add,
                a: Operand::val(p),
                b: Operand::i32(1),
            },
            Some(Ty::I32),
        );
        f.blocks[f.entry.index()].term = Term::Ret(Some(Operand::val(v)));
        f
    }

    #[test]
    fn param_values_precede_insts() {
        let f = sample();
        assert_eq!(f.param(0), ValueId(0));
        assert!(matches!(f.values[0].def, ValueDef::Param { index: 0 }));
        assert!(f.op(ValueId(1)).is_some());
    }

    #[test]
    fn replace_all_uses_rewrites_terms_too() {
        let mut f = sample();
        let v = ValueId(1);
        f.replace_all_uses(v, Operand::i32(7));
        match &f.blocks[0].term {
            Term::Ret(Some(o)) => assert!(o.is_const_val(7)),
            t => panic!("unexpected term {t:?}"),
        }
    }

    #[test]
    fn use_count_counts_term_uses() {
        let f = sample();
        assert_eq!(f.use_count(ValueId(0)), 1); // param used by add
        assert_eq!(f.use_count(ValueId(1)), 1); // add used by ret
    }

    #[test]
    fn reachable_blocks_skips_orphans() {
        let mut f = sample();
        let orphan = f.add_block();
        f.blocks[orphan.index()].term = Term::Ret(None);
        assert_eq!(f.reachable_blocks(), vec![f.entry]);
        assert_eq!(f.size(), 1);
    }

    #[test]
    fn remove_inst_tombstones() {
        let mut f = sample();
        let v = ValueId(1);
        f.replace_all_uses(v, Operand::i32(0));
        f.remove_inst(f.entry, v);
        assert!(matches!(f.op(v), Some(Op::Nop)));
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn global_layout_respects_alignment() {
        let mut m = Module::new();
        m.add_global(Global {
            name: "a".into(),
            size: 3,
            init: vec![],
            align: 4,
        });
        m.add_global(Global {
            name: "b".into(),
            size: 8,
            init: vec![],
            align: 8,
        });
        let l = m.layout_globals();
        assert_eq!(l[0], GLOBAL_BASE);
        assert_eq!(l[1] % 8, 0);
        assert!(l[1] >= l[0] + 3);
    }

    #[test]
    fn func_by_name_lookup() {
        let mut m = Module::new();
        m.add_func(sample());
        assert_eq!(m.func_by_name("f"), Some(FuncId(0)));
        assert_eq!(m.func_by_name("g"), None);
        assert!(m.main_func().is_none());
    }
}
