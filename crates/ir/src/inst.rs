//! Instructions, operands, and terminators.

use crate::func::{BlockId, FuncId, GlobalId, ValueId};
use crate::ty::Ty;
use std::fmt;

/// An instruction operand: either an SSA value or an immediate constant.
///
/// Carrying constants inline (rather than as separate constant instructions)
/// keeps constant folding and pattern matching in the passes simple, mirroring
/// how LLVM treats `ConstantInt` operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A reference to an SSA value (parameter or instruction result).
    Value(ValueId),
    /// A typed immediate. The payload is stored sign-agnostically; consumers
    /// truncate according to `ty`.
    Const { value: i64, ty: Ty },
}

impl Operand {
    /// Shorthand for a value operand.
    pub fn val(v: ValueId) -> Operand {
        Operand::Value(v)
    }

    /// Shorthand for an `i32` immediate.
    pub fn i32(v: i32) -> Operand {
        Operand::Const {
            value: v as i64,
            ty: Ty::I32,
        }
    }

    /// Shorthand for an `i8` immediate.
    pub fn i8(v: u8) -> Operand {
        Operand::Const {
            value: v as i64,
            ty: Ty::I8,
        }
    }

    /// Shorthand for a boolean immediate.
    pub fn bool(v: bool) -> Operand {
        Operand::Const {
            value: v as i64,
            ty: Ty::I1,
        }
    }

    /// Returns the constant payload if this operand is an immediate.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Operand::Const { value, .. } => Some(*value),
            Operand::Value(_) => None,
        }
    }

    /// Returns the value id if this operand is an SSA value.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            Operand::Const { .. } => None,
        }
    }

    /// True if this operand is the constant `c` (of any integer type).
    pub fn is_const_val(&self, c: i64) -> bool {
        matches!(self, Operand::Const { value, .. } if *value == c)
    }
}

/// Binary integer operations. All operate on `I32` (pointers use `Gep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Division by zero yields `-1` (RISC-V semantics).
    DivS,
    /// Unsigned division. Division by zero yields all-ones.
    DivU,
    /// Signed remainder. Remainder by zero yields the dividend.
    RemS,
    /// Unsigned remainder.
    RemU,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 5 bits).
    Shl,
    /// Logical shift right.
    ShrU,
    /// Arithmetic shift right.
    ShrA,
}

impl BinOp {
    /// Whether `a op b == b op a`.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Evaluate on 32-bit semantics, returning a sign-extended `i64`.
    ///
    /// Division semantics follow RISC-V (no traps: `x/0 == -1` signed,
    /// `0xffff_ffff` unsigned; `MIN/-1 == MIN`).
    pub fn eval32(self, a: i64, b: i64) -> i64 {
        let a32 = a as i32;
        let b32 = b as i32;
        let ua = a as u32;
        let ub = b as u32;
        let r: i32 = match self {
            BinOp::Add => a32.wrapping_add(b32),
            BinOp::Sub => a32.wrapping_sub(b32),
            BinOp::Mul => a32.wrapping_mul(b32),
            BinOp::DivS => {
                if b32 == 0 {
                    -1
                } else if a32 == i32::MIN && b32 == -1 {
                    i32::MIN
                } else {
                    a32.wrapping_div(b32)
                }
            }
            BinOp::DivU => ua.checked_div(ub).map_or(-1i32, |q| q as i32),
            BinOp::RemS => {
                if b32 == 0 {
                    a32
                } else if a32 == i32::MIN && b32 == -1 {
                    0
                } else {
                    a32.wrapping_rem(b32)
                }
            }
            BinOp::RemU => {
                if ub == 0 {
                    a32
                } else {
                    (ua % ub) as i32
                }
            }
            BinOp::And => a32 & b32,
            BinOp::Or => a32 | b32,
            BinOp::Xor => a32 ^ b32,
            BinOp::Shl => a32.wrapping_shl(ub & 31),
            BinOp::ShrU => (ua.wrapping_shr(ub & 31)) as i32,
            BinOp::ShrA => a32.wrapping_shr(ub & 31),
        };
        r as i64
    }

    /// Mnemonic used by the printer and the pass registry.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::DivS => "sdiv",
            BinOp::DivU => "udiv",
            BinOp::RemS => "srem",
            BinOp::RemU => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::ShrU => "lshr",
            BinOp::ShrA => "ashr",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl Pred {
    /// Evaluate the predicate on 32-bit values.
    pub fn eval32(self, a: i64, b: i64) -> bool {
        let sa = a as i32;
        let sb = b as i32;
        let ua = a as u32;
        let ub = b as u32;
        match self {
            Pred::Eq => sa == sb,
            Pred::Ne => sa != sb,
            Pred::Slt => sa < sb,
            Pred::Sle => sa <= sb,
            Pred::Sgt => sa > sb,
            Pred::Sge => sa >= sb,
            Pred::Ult => ua < ub,
            Pred::Ule => ua <= ub,
            Pred::Ugt => ua > ub,
            Pred::Uge => ua >= ub,
        }
    }

    /// The predicate testing the opposite condition.
    pub fn inverse(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Slt => Pred::Sge,
            Pred::Sle => Pred::Sgt,
            Pred::Sgt => Pred::Sle,
            Pred::Sge => Pred::Slt,
            Pred::Ult => Pred::Uge,
            Pred::Ule => Pred::Ugt,
            Pred::Ugt => Pred::Ule,
            Pred::Uge => Pred::Ult,
        }
    }

    /// The predicate with operands swapped (`a p b == b p.swapped() a`).
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Slt => Pred::Sgt,
            Pred::Sle => Pred::Sge,
            Pred::Sgt => Pred::Slt,
            Pred::Sge => Pred::Sle,
            Pred::Ult => Pred::Ugt,
            Pred::Ule => Pred::Uge,
            Pred::Ugt => Pred::Ult,
            Pred::Uge => Pred::Ule,
        }
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Slt => "slt",
            Pred::Sle => "sle",
            Pred::Sgt => "sgt",
            Pred::Sge => "sge",
            Pred::Ult => "ult",
            Pred::Ule => "ule",
            Pred::Ugt => "ugt",
            Pred::Uge => "uge",
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Cast kinds between integer widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Zero-extend to a wider type.
    Zext,
    /// Sign-extend to a wider type.
    Sext,
    /// Truncate to a narrower type.
    Trunc,
}

/// An SSA instruction.
///
/// Instructions live in a per-function arena (`Function::values`); each occupies
/// one [`ValueId`] slot whether or not it produces a result
/// (`store` and `nop` have no result type).
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Op {
    /// Two-operand integer arithmetic / logic.
    Bin { op: BinOp, a: Operand, b: Operand },
    /// Integer comparison producing `i1`.
    Icmp { pred: Pred, a: Operand, b: Operand },
    /// `c ? t : f` — the predication form `simplifycfg` produces (paper Fig. 13).
    Select { c: Operand, t: Operand, f: Operand },
    /// Load a scalar of type `ty` from `ptr`.
    Load { ptr: Operand, ty: Ty },
    /// Store `val` (of type `ty`) to `ptr`. No result.
    Store { ptr: Operand, val: Operand, ty: Ty },
    /// Reserve `count` elements of `elem` bytes each in the stack frame.
    /// Result is the address. Must appear in the entry block.
    Alloca { elem: Ty, count: u32 },
    /// `base + index * stride + offset` address arithmetic. Result is `ptr`.
    ///
    /// This is the IR construct whose duplication in loop-closed SSA form drives
    /// the paper's licm paging regressions.
    Gep {
        base: Operand,
        index: Operand,
        stride: u32,
        offset: i32,
    },
    /// Address of a module global.
    GlobalAddr(GlobalId),
    /// Direct call. Result type is the callee's return type (if any).
    Call { callee: FuncId, args: Vec<Operand> },
    /// zkVM environment call (precompile / host service). Result is `i32`.
    Ecall { code: u32, args: Vec<Operand> },
    /// SSA phi node. Must appear at the head of its block, with exactly one
    /// incoming operand per CFG predecessor.
    Phi { incoming: Vec<(BlockId, Operand)> },
    /// Integer width cast.
    Cast { kind: CastKind, v: Operand, to: Ty },
    /// Value copy; trivially forwardable. Produced transiently by some passes.
    Copy(Operand),
    /// Deleted instruction slot. Never appears in a block's instruction list.
    Nop,
}

impl Op {
    /// Visit every operand immutably.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::Select { c, t, f: fo } => {
                f(c);
                f(t);
                f(fo);
            }
            Op::Load { ptr, .. } => f(ptr),
            Op::Store { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            Op::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Op::Call { args, .. } | Op::Ecall { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Phi { incoming } => {
                for (_, a) in incoming {
                    f(a);
                }
            }
            Op::Cast { v, .. } => f(v),
            Op::Copy(v) => f(v),
            Op::Alloca { .. } | Op::GlobalAddr(_) | Op::Nop => {}
        }
    }

    /// Visit every operand mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } => {
                f(a);
                f(b);
            }
            Op::Select { c, t, f: fo } => {
                f(c);
                f(t);
                f(fo);
            }
            Op::Load { ptr, .. } => f(ptr),
            Op::Store { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            Op::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Op::Call { args, .. } | Op::Ecall { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Op::Phi { incoming } => {
                for (_, a) in incoming {
                    f(a);
                }
            }
            Op::Cast { v, .. } => f(v),
            Op::Copy(v) => f(v),
            Op::Alloca { .. } | Op::GlobalAddr(_) | Op::Nop => {}
        }
    }

    /// Whether the instruction may read or write memory or have side effects,
    /// i.e. must not be removed even when unused, and must not be reordered
    /// across other effectful instructions.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. } | Op::Ecall { .. })
    }

    /// Whether the instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Call { .. } | Op::Ecall { .. })
    }

    /// Whether the instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. } | Op::Ecall { .. })
    }

    /// Whether the instruction is a phi node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Op::Phi { .. })
    }

    /// True for instructions that are safe to speculatively execute (hoist past
    /// branches): no memory access, no side effects, no trap potential.
    pub fn is_speculatable(&self) -> bool {
        matches!(
            self,
            Op::Bin { .. }
                | Op::Icmp { .. }
                | Op::Select { .. }
                | Op::Gep { .. }
                | Op::GlobalAddr(_)
                | Op::Cast { .. }
                | Op::Copy(_)
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on an `i1` operand.
    CondBr { c: Operand, t: BlockId, f: BlockId },
    /// Multi-way dispatch. Lowered to compare chains by `lower-switch`.
    Switch {
        v: Operand,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// Control never reaches here.
    Unreachable,
}

impl Term {
    /// All successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br(b) => vec![*b],
            Term::CondBr { t, f, .. } => vec![*t, *f],
            Term::Switch { cases, default, .. } => {
                let mut v: Vec<BlockId> = cases.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Term::Ret(_) | Term::Unreachable => vec![],
        }
    }

    /// Visit every operand immutably.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Term::CondBr { c, .. } => f(c),
            Term::Switch { v, .. } => f(v),
            Term::Ret(Some(v)) => f(v),
            _ => {}
        }
    }

    /// Visit every operand mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Term::CondBr { c, .. } => f(c),
            Term::Switch { v, .. } => f(v),
            Term::Ret(Some(v)) => f(v),
            _ => {}
        }
    }

    /// Replace every successor equal to `from` with `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Term::Br(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Term::CondBr { t, f, .. } => {
                if *t == from {
                    *t = to;
                }
                if *f == from {
                    *f = to;
                }
            }
            Term::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    if *b == from {
                        *b = to;
                    }
                }
                if *default == from {
                    *default = to;
                }
            }
            Term::Ret(_) | Term::Unreachable => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wrapping() {
        assert_eq!(BinOp::Add.eval32(i32::MAX as i64, 1), i32::MIN as i64);
        assert_eq!(BinOp::Mul.eval32(0x10000, 0x10000), 0);
        assert_eq!(BinOp::Sub.eval32(0, 1), -1);
    }

    #[test]
    fn binop_eval_division_riscv_semantics() {
        assert_eq!(BinOp::DivS.eval32(7, 0), -1);
        assert_eq!(BinOp::DivU.eval32(7, 0), -1); // all ones as i32
        assert_eq!(BinOp::RemS.eval32(7, 0), 7);
        assert_eq!(BinOp::DivS.eval32(i32::MIN as i64, -1), i32::MIN as i64);
        assert_eq!(BinOp::RemS.eval32(i32::MIN as i64, -1), 0);
        assert_eq!(BinOp::DivS.eval32(-7, 2), -3);
        assert_eq!(BinOp::RemS.eval32(-7, 2), -1);
        assert_eq!(BinOp::DivU.eval32(-8, 2), 0x7fff_fffc);
    }

    #[test]
    fn binop_eval_shifts_masked() {
        assert_eq!(BinOp::Shl.eval32(1, 33), 2); // shift amount mod 32
        assert_eq!(BinOp::ShrA.eval32(-8, 1), -4);
        assert_eq!(BinOp::ShrU.eval32(-8, 1), 0x7fff_fffc);
    }

    #[test]
    fn pred_eval_signedness() {
        assert!(Pred::Slt.eval32(-1, 0));
        assert!(!Pred::Ult.eval32(-1, 0)); // 0xffffffff > 0 unsigned
        assert!(Pred::Ugt.eval32(-1, 0));
    }

    #[test]
    fn pred_inverse_exhaustive() {
        let all = [
            Pred::Eq,
            Pred::Ne,
            Pred::Slt,
            Pred::Sle,
            Pred::Sgt,
            Pred::Sge,
            Pred::Ult,
            Pred::Ule,
            Pred::Ugt,
            Pred::Uge,
        ];
        for p in all {
            for (a, b) in [(0i64, 0i64), (1, 2), (-5, 3), (7, -7)] {
                assert_eq!(p.eval32(a, b), !p.inverse().eval32(a, b), "{p:?} {a} {b}");
                assert_eq!(
                    p.eval32(a, b),
                    p.swapped().eval32(b, a),
                    "{p:?} swap {a} {b}"
                );
            }
        }
    }

    #[test]
    fn term_successors_and_retarget() {
        let b0 = BlockId(0);
        let b1 = BlockId(1);
        let b2 = BlockId(2);
        let mut t = Term::CondBr {
            c: Operand::bool(true),
            t: b0,
            f: b1,
        };
        assert_eq!(t.successors(), vec![b0, b1]);
        t.retarget(b1, b2);
        assert_eq!(t.successors(), vec![b0, b2]);
    }

    #[test]
    fn op_operand_visit() {
        let mut op = Op::Bin {
            op: BinOp::Add,
            a: Operand::i32(1),
            b: Operand::i32(2),
        };
        let mut n = 0;
        op.for_each_operand(|_| n += 1);
        assert_eq!(n, 2);
        op.for_each_operand_mut(|o| *o = Operand::i32(9));
        match op {
            Op::Bin { a, b, .. } => {
                assert!(a.is_const_val(9) && b.is_const_val(9));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn side_effect_classification() {
        assert!(Op::Store {
            ptr: Operand::i32(0),
            val: Operand::i32(0),
            ty: Ty::I32
        }
        .has_side_effects());
        assert!(!Op::Load {
            ptr: Operand::i32(0),
            ty: Ty::I32
        }
        .has_side_effects());
        assert!(Op::Load {
            ptr: Operand::i32(0),
            ty: Ty::I32
        }
        .reads_memory());
        assert!(Op::Bin {
            op: BinOp::Add,
            a: Operand::i32(0),
            b: Operand::i32(0)
        }
        .is_speculatable());
        assert!(!Op::Load {
            ptr: Operand::i32(0),
            ty: Ty::I32
        }
        .is_speculatable());
    }
}
