//! # zkvmopt-ir
//!
//! The SSA intermediate representation at the heart of the zkvm-opt workspace.
//!
//! The IR deliberately mirrors the subset of LLVM IR that the reproduced paper's
//! optimization passes act on:
//!
//! - functions made of basic blocks with explicit terminators,
//! - SSA values with phi nodes,
//! - `alloca`/`load`/`store` for stack memory (the `-O0`-style form produced by the
//!   `zkvmopt-lang` frontend, which `mem2reg` then promotes),
//! - `gep`-style address arithmetic ([`Op::Gep`]), the source of the LCSSA-related
//!   memory traffic the paper blames for `licm` regressions,
//! - calls, a small set of casts, and `ecall` for zkVM precompiles.
//!
//! The crate also hosts the *analyses* shared by every pass (CFG utilities,
//! dominator tree, natural-loop forest), the IR *verifier*, a textual *printer*,
//! and a reference *interpreter* used as the semantic oracle by the workspace's
//! differential tests.
//!
//! ## Example
//!
//! ```
//! use zkvmopt_ir::{FunctionBuilder, Module, Ty, BinOp, Operand};
//!
//! // fn add1(x: i32) -> i32 { x + 1 }
//! let mut b = FunctionBuilder::new("add1", vec![Ty::I32], Some(Ty::I32));
//! let x = b.param(0);
//! let one = Operand::i32(1);
//! let sum = b.bin(BinOp::Add, Operand::val(x), one);
//! b.ret(Some(Operand::val(sum)));
//! let f = b.finish();
//! let mut m = Module::new();
//! m.add_func(f);
//! assert!(zkvmopt_ir::verify::verify_module(&m).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod cfg;
pub mod dom;
pub mod ecall;
pub mod features;
pub mod func;
pub mod inst;
pub mod interp;
pub mod loops;
pub mod print;
pub mod ty;
pub mod verify;

pub use analysis::{stable_module_fingerprint, AnalysisCache, AnalysisKind, PreservedAnalyses};
pub use builder::FunctionBuilder;
pub use features::{FeatureVector, FEATURE_DIM, FEATURE_LABELS};
pub use func::{
    BlockData, BlockId, FuncId, Function, Global, GlobalId, Module, ValueData, ValueDef, ValueId,
};
pub use inst::{BinOp, CastKind, Op, Operand, Pred, Term};
pub use interp::{EcallHandler, Interp, InterpConfig, InterpError, InterpOutcome, NopEcalls};
pub use ty::Ty;
