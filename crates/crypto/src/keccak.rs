//! Keccak-f\[1600\] and Keccak-256 (the Ethereum variant: 0x01 padding),
//! implemented from scratch.

const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// The Keccak-f\[1600\] permutation over the 25-lane state.
pub fn keccak_f(state: &mut [u64; 25]) {
    for rc in RC {
        // Theta.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // Rho and pi.
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // Chi.
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ (!row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // Iota.
        state[0] ^= rc;
    }
}

/// Keccak-256 (rate 1088 bits / 136 bytes, `0x01` domain padding — the
/// Ethereum `keccak256`, distinct from NIST SHA3-256's `0x06`).
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    const RATE: usize = 136;
    let mut state = [0u64; 25];
    let mut offset = 0;
    // Absorb full blocks.
    while data.len() - offset >= RATE {
        absorb(&mut state, &data[offset..offset + RATE]);
        keccak_f(&mut state);
        offset += RATE;
    }
    // Final block with padding.
    let mut block = [0u8; RATE];
    let rem = &data[offset..];
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] ^= 0x01;
    block[RATE - 1] ^= 0x80;
    absorb(&mut state, &block);
    keccak_f(&mut state);
    // Squeeze 32 bytes.
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[8 * i..8 * i + 8].copy_from_slice(&state[i].to_le_bytes());
    }
    out
}

fn absorb(state: &mut [u64; 25], block: &[u8]) {
    for (i, lane) in block.chunks_exact(8).enumerate() {
        state[i] ^= u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn known_vectors() {
        // Ethereum's canonical empty-string keccak256.
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
        // The Solidity classic.
        assert_eq!(
            hex(&keccak256(b"hello")),
            "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn rate_boundaries() {
        let mut seen = std::collections::HashSet::new();
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273] {
            let data = vec![0x5au8; len];
            assert!(seen.insert(keccak256(&data)), "collision at {len}");
        }
    }

    #[test]
    fn permutation_changes_state() {
        let mut s = [0u64; 25];
        keccak_f(&mut s);
        assert_ne!(s, [0u64; 25]);
        // First lane after permuting the zero state is the iota chain value.
        let mut s2 = [0u64; 25];
        keccak_f(&mut s2);
        assert_eq!(s, s2, "permutation must be deterministic");
    }
}
