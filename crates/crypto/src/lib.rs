//! # zkvmopt-crypto
//!
//! Host-side implementations of the zkVM precompiles used by the benchmark
//! suite: SHA-256, Keccak-256, a Merkle tree, and toy Schnorr-style signature
//! schemes standing in for the paper's `k256`/`ed25519_dalek` verifies.
//!
//! These back the `ecall` precompile surface of `zkvmopt-vm` — the paper's
//! point that precompiled crypto is charged a *fixed* cycle cost (and thus
//! sees smaller compiler-optimization gains, §4.2) is reproduced by routing
//! these through ecalls rather than guest instructions.

pub mod keccak;
pub mod merkle;
pub mod sha256;
pub mod sig;

pub use keccak::keccak256;
pub use merkle::MerkleTree;
pub use sha256::sha256;
pub use sig::{sign, verify, KeyPair, Scheme, Signature};
