//! A SHA-256 binary Merkle tree with inclusion proofs.

use crate::sha256::sha256;

/// A fully-built Merkle tree over leaf byte strings.
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Levels bottom-up: `levels[0]` are leaf hashes, last level is the root.
    levels: Vec<Vec<[u8; 32]>>,
}

fn hash_pair(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 64];
    buf[..32].copy_from_slice(a);
    buf[32..].copy_from_slice(b);
    sha256(&buf)
}

impl MerkleTree {
    /// Build a tree over the given leaves (odd nodes are paired with
    /// themselves).
    ///
    /// # Panics
    /// Panics if `leaves` is empty.
    pub fn new(leaves: &[Vec<u8>]) -> MerkleTree {
        assert!(!leaves.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![leaves.iter().map(|l| sha256(l)).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(hash_pair(&pair[0], right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Sibling path for leaf `index`, bottom-up.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn proof(&self, index: usize) -> Vec<[u8; 32]> {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = if i.is_multiple_of(2) {
                (i + 1).min(level.len() - 1)
            } else {
                i - 1
            };
            path.push(level[sib]);
            i /= 2;
        }
        path
    }

    /// Verify an inclusion proof produced by [`MerkleTree::proof`].
    pub fn verify(root: &[u8; 32], leaf: &[u8], index: usize, proof: &[[u8; 32]]) -> bool {
        let mut h = sha256(leaf);
        let mut i = index;
        for sib in proof {
            h = if i.is_multiple_of(2) {
                hash_pair(&h, sib)
            } else {
                hash_pair(sib, &h)
            };
            i /= 2;
        }
        h == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proofs_verify_for_every_leaf() {
        let leaves: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; 5]).collect();
        let t = MerkleTree::new(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let p = t.proof(i);
            assert!(MerkleTree::verify(&t.root(), leaf, i, &p), "leaf {i}");
        }
    }

    #[test]
    fn tampered_leaf_fails() {
        let leaves: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i]).collect();
        let t = MerkleTree::new(&leaves);
        let p = t.proof(3);
        assert!(!MerkleTree::verify(&t.root(), b"evil", 3, &p));
        assert!(!MerkleTree::verify(&t.root(), &leaves[3], 2, &p));
    }

    #[test]
    fn single_leaf_tree() {
        let t = MerkleTree::new(&[b"only".to_vec()]);
        assert_eq!(t.leaf_count(), 1);
        assert!(MerkleTree::verify(&t.root(), b"only", 0, &t.proof(0)));
    }
}
