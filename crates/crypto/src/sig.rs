//! Toy Schnorr-style signatures over the multiplicative group of
//! Z_p (p = 2^61 − 1), standing in for the paper's secp256k1-ECDSA and
//! Ed25519 verifies.
//!
//! **Substitution note (DESIGN.md):** the study needs precompiled signature
//! verification with (a) deterministic test vectors and (b) a fixed proving
//! cost. The group choice is irrelevant to the compiler measurements, so we
//! use a 61-bit discrete-log group rather than vendoring big-integer curve
//! arithmetic. The verification *dataflow* (hash, exponentiations, group
//! equation) matches Schnorr/EdDSA.

use crate::sha256::sha256;

/// The Mersenne prime 2^61 − 1.
pub const P: u64 = (1 << 61) - 1;
/// Group generator.
pub const G: u64 = 3;

/// Distinguishes the two precompile flavours (domain separation only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Stand-in for secp256k1 ECDSA.
    Ecdsa,
    /// Stand-in for Ed25519.
    Eddsa,
}

impl Scheme {
    fn tag(self) -> u8 {
        match self {
            Scheme::Ecdsa => 0xEC,
            Scheme::Eddsa => 0xED,
        }
    }
}

/// A signing/verification key pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    /// Secret exponent.
    pub secret: u64,
    /// `G^secret mod P`.
    pub public: u64,
}

/// A signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// Commitment `G^k mod P`.
    pub r: u64,
    /// Response `k + e·d mod (P−1)`.
    pub s: u64,
}

fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `base^exp mod m` by square-and-multiply.
pub fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    base %= m;
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

fn hash_to_scalar(parts: &[&[u8]]) -> u64 {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(p);
    }
    let h = sha256(&buf);
    u64::from_le_bytes(h[..8].try_into().expect("8 bytes")) % (P - 1)
}

/// Derive a key pair from a seed (deterministic, for test vectors).
pub fn keypair_from_seed(seed: u64) -> KeyPair {
    let secret = hash_to_scalar(&[b"key", &seed.to_le_bytes()]).max(2);
    KeyPair {
        secret,
        public: powmod(G, secret, P),
    }
}

/// Sign a 32-byte message hash.
pub fn sign(scheme: Scheme, kp: &KeyPair, msg: &[u8; 32]) -> Signature {
    let k = hash_to_scalar(&[&[scheme.tag()], &kp.secret.to_le_bytes(), msg]).max(2);
    let r = powmod(G, k, P);
    let e = hash_to_scalar(&[&[scheme.tag()], &r.to_le_bytes(), msg]);
    let s = (k as u128 + mulmod(e, kp.secret, P - 1) as u128) % (P - 1) as u128;
    Signature { r, s: s as u64 }
}

/// Verify a signature over a 32-byte message hash: `G^s == r · pub^e`.
pub fn verify(scheme: Scheme, public: u64, msg: &[u8; 32], sig: &Signature) -> bool {
    if sig.r == 0 || sig.r >= P || sig.s >= P - 1 {
        return false;
    }
    let e = hash_to_scalar(&[&[scheme.tag()], &sig.r.to_le_bytes(), msg]);
    let lhs = powmod(G, sig.s, P);
    let rhs = mulmod(sig.r, powmod(public, e, P), P);
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip_both_schemes() {
        for scheme in [Scheme::Ecdsa, Scheme::Eddsa] {
            let kp = keypair_from_seed(42);
            let msg = sha256(b"the quick brown fox");
            let sig = sign(scheme, &kp, &msg);
            assert!(verify(scheme, kp.public, &msg, &sig), "{scheme:?}");
        }
    }

    #[test]
    fn wrong_message_or_key_fails() {
        let kp = keypair_from_seed(1);
        let other = keypair_from_seed(2);
        let msg = sha256(b"msg");
        let sig = sign(Scheme::Ecdsa, &kp, &msg);
        assert!(!verify(Scheme::Ecdsa, kp.public, &sha256(b"other"), &sig));
        assert!(!verify(Scheme::Ecdsa, other.public, &msg, &sig));
        // Cross-scheme signatures don't verify (domain separation).
        assert!(!verify(Scheme::Eddsa, kp.public, &msg, &sig));
    }

    #[test]
    fn malformed_signatures_rejected() {
        let kp = keypair_from_seed(7);
        let msg = sha256(b"m");
        assert!(!verify(
            Scheme::Ecdsa,
            kp.public,
            &msg,
            &Signature { r: 0, s: 1 }
        ));
        assert!(!verify(
            Scheme::Ecdsa,
            kp.public,
            &msg,
            &Signature { r: P, s: 1 }
        ));
        assert!(!verify(
            Scheme::Ecdsa,
            kp.public,
            &msg,
            &Signature { r: 5, s: P }
        ));
    }

    #[test]
    fn powmod_matches_naive() {
        for (b, e) in [(3u64, 10u64), (5, 0), (7, 1), (1234567, 13)] {
            let mut naive = 1u64;
            for _ in 0..e {
                naive = ((naive as u128 * b as u128) % P as u128) as u64;
            }
            assert_eq!(powmod(b, e, P), naive);
        }
    }
}
