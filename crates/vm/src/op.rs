//! Pre-decoded instruction stream for the block-dispatch engine.
//!
//! [`DecodedProgram::decode`] walks a linked [`Program`] **once**, lowering
//! every [`Inst`] into a dense internal [`Op`] and grouping the stream into
//! fall-through basic [`Block`]s keyed by branch targets. The per-pc
//! `block_of` table is the engine's direct-indexed block cache: dispatching a
//! jump is one array load, never a search. Pre-decoding also bakes in what
//! the step interpreter recomputes on every execution of an instruction:
//! `jal`/`jalr` link values, the `x0` write sink, and each block's static
//! instruction mix.

use crate::machine::InstMix;
use zkvmopt_riscv::encode;
use zkvmopt_riscv::inst::{AluImmOp, AluOp, BranchCond, MemWidth, MixClass};
use zkvmopt_riscv::{Inst, Program, Reg};

/// Register-file slot that swallows writes to `x0`. The engine's register
/// file has 33 slots; slot 0 is never written, so reads of `x0` stay 0 and
/// the hot path stores unconditionally instead of branching on `rd != x0`.
pub const REG_SINK: u8 = 32;

/// One pre-decoded RV32IM operation. Register fields are plain `u8` indices
/// into the engine's 33-slot register file with the `x0`-write remap already
/// applied; control-flow fields carry precomputed link values and targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `lui` — the full 32-bit immediate is precomputed.
    Lui { rd: u8, imm: i32 },
    /// Register–register ALU.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// Register–immediate ALU.
    AluImm {
        op: AluImmOp,
        rd: u8,
        rs1: u8,
        imm: i32,
    },
    /// Load of the given width.
    Load {
        width: MemWidth,
        rd: u8,
        base: u8,
        offset: i32,
    },
    /// Store of the given width.
    Store {
        width: MemWidth,
        src: u8,
        base: u8,
        offset: i32,
    },
    /// Conditional branch to code index `target`.
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// Unconditional jump; `link` is the precomputed return address
    /// `(pc + 1) * 4`.
    Jal { rd: u8, link: u32, target: u32 },
    /// Indirect jump; `link` as for [`Op::Jal`].
    Jalr {
        rd: u8,
        rs1: u8,
        offset: i32,
        link: u32,
    },
    /// Environment call (falls through except for `halt`).
    Ecall,
}

/// How the engine may execute a [`Block`], decided statically at decode
/// time from the ops it contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// No loads, stores, or ecalls: the engine executes the whole block
    /// straight-line with batched cycle/segment accounting.
    Pure,
    /// Contains loads and/or stores but no ecalls: eligible for the batched
    /// memory path (residency pre-probe + per-access paging charge).
    Mem,
    /// Contains at least one ecall: always stepped (ecalls can halt
    /// mid-block, commit to the journal, and charge precompile cycles).
    Ecall,
}

/// A maximal fall-through run of pre-decoded ops. Blocks partition the code
/// contiguously; a block's terminator (if any) is its last op.
#[derive(Debug, Clone)]
pub struct Block {
    /// First code index of the block.
    pub start: u32,
    /// One past the last code index.
    pub end: u32,
    /// Which execution path the block is eligible for.
    pub kind: BlockKind,
    /// Static instruction mix of the block. Every op of a block executes
    /// whenever the block is entered at its head, so for pure blocks this is
    /// exactly the dynamic mix contribution per entry.
    pub mix: InstMix,
}

impl Block {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true for decoded programs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A program decoded once for block-at-a-time dispatch.
///
/// Owns everything the engine needs, so it can be cached and shared across
/// arbitrarily many executions (the batched suite runner compiles + decodes
/// each {workload × profile} pair exactly once).
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// Pre-decoded ops, 1:1 with the original instruction stream.
    pub ops: Vec<Op>,
    /// Basic blocks, in code order, contiguously partitioning `ops`.
    pub blocks: Vec<Block>,
    /// Direct-indexed block cache: `block_of[pc]` is the block containing
    /// `pc`.
    pub block_of: Vec<u32>,
    /// Entry code index (the `_start` stub).
    pub entry: usize,
    /// Initialized globals: (virtual address, bytes).
    pub globals: Vec<(u32, Vec<u8>)>,
}

fn remap_rd(rd: Reg) -> u8 {
    if rd == Reg::ZERO {
        REG_SINK
    } else {
        rd.0
    }
}

fn lower(inst: &Inst<Reg>, pc: usize) -> Op {
    let link = (pc as u32 + 1) * 4;
    match *inst {
        Inst::Lui { rd, imm } => Op::Lui {
            rd: remap_rd(rd),
            imm,
        },
        Inst::Alu { op, rd, rs1, rs2 } => Op::Alu {
            op,
            rd: remap_rd(rd),
            rs1: rs1.0,
            rs2: rs2.0,
        },
        Inst::AluImm { op, rd, rs1, imm } => Op::AluImm {
            op,
            rd: remap_rd(rd),
            rs1: rs1.0,
            imm,
        },
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => Op::Load {
            width,
            rd: remap_rd(rd),
            base: base.0,
            offset,
        },
        Inst::Store {
            width,
            src,
            base,
            offset,
        } => Op::Store {
            width,
            src: src.0,
            base: base.0,
            offset,
        },
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => Op::Branch {
            cond,
            rs1: rs1.0,
            rs2: rs2.0,
            target: target as u32,
        },
        Inst::Jal { rd, target } => Op::Jal {
            rd: remap_rd(rd),
            link,
            target: target as u32,
        },
        Inst::Jalr { rd, rs1, offset } => Op::Jalr {
            rd: remap_rd(rd),
            rs1: rs1.0,
            offset,
            link,
        },
        Inst::Ecall => Op::Ecall,
    }
}

impl Op {
    /// Which instruction-mix bucket a dynamic execution of this op falls
    /// into. Mirrors [`Inst::mix_class`] (both route ALU bucketing through
    /// [`AluOp::mix_class`]); the engine's stepped path and the per-block
    /// static mixes both use this, so the accounting cannot drift.
    #[inline]
    pub fn mix_class(&self) -> MixClass {
        match self {
            Op::Lui { .. } | Op::AluImm { .. } => MixClass::Alu,
            Op::Alu { op, .. } => op.mix_class(),
            Op::Load { .. } => MixClass::Load,
            Op::Store { .. } => MixClass::Store,
            Op::Branch { .. } => MixClass::Branch,
            Op::Jal { .. } | Op::Jalr { .. } => MixClass::Jump,
            Op::Ecall => MixClass::Ecall,
        }
    }
}

impl DecodedProgram {
    /// Decode a linked program once for block dispatch.
    pub fn decode(p: &Program) -> DecodedProgram {
        Self::build(&p.code, p.entry, p.globals.clone())
    }

    /// Decode raw RV32IM words (e.g. a real guest binary image) via the
    /// shared [`encode::decode`] decoder.
    ///
    /// # Errors
    /// Returns the code index of the first undecodable word.
    pub fn decode_words(
        words: &[u32],
        entry: usize,
        globals: Vec<(u32, Vec<u8>)>,
    ) -> Result<DecodedProgram, usize> {
        let code = encode::decode_program(words)?;
        Ok(Self::build(&code, entry, globals))
    }

    fn build(code: &[Inst<Reg>], entry: usize, globals: Vec<(u32, Vec<u8>)>) -> DecodedProgram {
        let n = code.len();
        // Leaders: the entry, every static control-flow target, and every
        // fall-through / return point after a terminator (`jalr` return
        // addresses are always `pc + 1` of some `jal`, so this covers every
        // dynamic target the emitter can produce; anything else still runs
        // through the engine's mid-block entry path).
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        if entry < n {
            leader[entry] = true;
        }
        for (pc, inst) in code.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t < n {
                    leader[t] = true;
                }
            }
            if inst.is_terminator() && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let ops: Vec<Op> = code
            .iter()
            .enumerate()
            .map(|(pc, i)| lower(i, pc))
            .collect();

        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0u32; n];
        let mut pc = 0;
        while pc < n {
            let start = pc;
            let mut mix = InstMix::default();
            let mut has_mem = false;
            let mut has_ecall = false;
            loop {
                let class = ops[pc].mix_class();
                mix.bump(class);
                has_mem |= matches!(class, MixClass::Load | MixClass::Store);
                has_ecall |= matches!(class, MixClass::Ecall);
                block_of[pc] = blocks.len() as u32;
                pc += 1;
                if pc >= n || leader[pc] {
                    break;
                }
            }
            let kind = if has_ecall {
                BlockKind::Ecall
            } else if has_mem {
                BlockKind::Mem
            } else {
                BlockKind::Pure
            };
            blocks.push(Block {
                start: start as u32,
                end: pc as u32,
                kind,
                mix,
            });
        }

        DecodedProgram {
            ops,
            blocks,
            block_of,
            entry,
            globals,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvmopt_riscv::TargetCostModel;

    fn decode_src(src: &str) -> (Program, DecodedProgram) {
        let m = zkvmopt_lang::compile_guest(src).expect("compiles");
        let p = zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).expect("codegen");
        let d = DecodedProgram::decode(&p);
        (p, d)
    }

    #[test]
    fn blocks_partition_the_code() {
        let (p, d) = decode_src(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 9; i += 1) { s += i; }
               return s;
             }",
        );
        assert_eq!(d.ops.len(), p.code.len());
        assert_eq!(d.block_of.len(), p.code.len());
        let mut covered = 0usize;
        for (i, b) in d.blocks.iter().enumerate() {
            assert_eq!(b.start as usize, covered, "blocks must be contiguous");
            assert!(b.end > b.start);
            covered = b.end as usize;
            for pc in b.start..b.end {
                assert_eq!(d.block_of[pc as usize] as usize, i);
            }
            let mix_total = b.mix.alu
                + b.mix.mul
                + b.mix.div
                + b.mix.load
                + b.mix.store
                + b.mix.branch
                + b.mix.jump
                + b.mix.ecall;
            assert_eq!(mix_total as usize, b.len(), "block mix partitions ops");
        }
        assert_eq!(covered, p.code.len());
    }

    #[test]
    fn terminators_end_blocks_and_targets_lead_them() {
        let (p, d) = decode_src(
            "fn f(x: i32) -> i32 { if (x > 0) { return x; } return -x; }
             fn main() -> i32 { return f(-3) + f(4); }",
        );
        for (pc, inst) in p.code.iter().enumerate() {
            if inst.is_terminator() {
                let b = &d.blocks[d.block_of[pc] as usize];
                assert_eq!(b.end as usize, pc + 1, "terminator must end its block");
            }
            if let Some(t) = inst.static_target() {
                let b = &d.blocks[d.block_of[t] as usize];
                assert_eq!(b.start as usize, t, "target must start a block");
            }
        }
    }

    #[test]
    fn x0_writes_are_redirected_to_the_sink() {
        let (p, d) = decode_src("fn main() -> i32 { return 7; }");
        for (inst, op) in p.code.iter().zip(&d.ops) {
            if let (Inst::Jal { rd, .. }, Op::Jal { rd: r, .. }) = (inst, op) {
                if *rd == Reg::ZERO {
                    assert_eq!(*r, REG_SINK);
                } else {
                    assert_eq!(*r, rd.0);
                }
            }
        }
    }

    #[test]
    fn decode_words_matches_decode() {
        let (p, d) = decode_src(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 5; i += 1) { s += i * i; }
               return s;
             }",
        );
        let words: Vec<u32> = p
            .code
            .iter()
            .enumerate()
            .map(|(pc, i)| encode::encode(i, pc))
            .collect();
        let d2 = DecodedProgram::decode_words(&words, p.entry, p.globals.clone())
            .expect("round-trips through the binary encoding");
        assert_eq!(d.ops, d2.ops);
        assert_eq!(d.block_of, d2.block_of);
        assert_eq!(d.blocks.len(), d2.blocks.len());
    }
}
