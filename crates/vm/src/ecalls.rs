//! Shared precompile dispatch used by both the zkVM executor (paged memory)
//! and the IR reference interpreter (flat memory), guaranteeing identical
//! guest-visible behaviour — the property the differential tests rely on.

use zkvmopt_crypto::{keccak256, sha256, sig};
use zkvmopt_ir::ecall;

/// Byte-level memory access used by precompiles.
pub trait MemIo {
    /// Read `len` bytes at `addr` (zero-filled on fault — precompile inputs
    /// are validated by the guest).
    fn read_bytes(&mut self, addr: u32, len: u32) -> Vec<u8>;
    /// Write bytes at `addr` (ignored on fault).
    fn write_bytes(&mut self, addr: u32, data: &[u8]);
}

/// Flat byte-slice adapter (used by the IR interpreter's memory).
pub struct FlatMem<'a>(pub &'a mut [u8]);

impl MemIo for FlatMem<'_> {
    fn read_bytes(&mut self, addr: u32, len: u32) -> Vec<u8> {
        let a = addr as usize;
        let e = a.saturating_add(len as usize);
        if e <= self.0.len() {
            self.0[a..e].to_vec()
        } else {
            vec![0; len as usize]
        }
    }

    fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let a = addr as usize;
        let e = a.saturating_add(data.len());
        if e <= self.0.len() {
            self.0[a..e].copy_from_slice(data);
        }
    }
}

/// Execute a crypto precompile. `args` are the raw `a0..a2` registers.
/// Returns the value placed in `a0`.
pub fn run_precompile(code: u32, args: &[i64], mem: &mut dyn MemIo) -> i64 {
    let a = |i: usize| args.get(i).copied().unwrap_or(0) as u32;
    match code {
        ecall::SHA256 => {
            let data = mem.read_bytes(a(0), a(1));
            let digest = sha256(&data);
            mem.write_bytes(a(2), &digest);
            0
        }
        ecall::KECCAK256 => {
            let data = mem.read_bytes(a(0), a(1));
            let digest = keccak256(&data);
            mem.write_bytes(a(2), &digest);
            0
        }
        ecall::ECDSA_VERIFY | ecall::EDDSA_VERIFY => {
            let scheme = if code == ecall::ECDSA_VERIFY {
                sig::Scheme::Ecdsa
            } else {
                sig::Scheme::Eddsa
            };
            let msg_bytes = mem.read_bytes(a(0), 32);
            let mut msg = [0u8; 32];
            msg.copy_from_slice(&msg_bytes);
            let pk_bytes = mem.read_bytes(a(1), 8);
            let public = u64::from_le_bytes(pk_bytes.try_into().expect("8 bytes"));
            let sig_bytes = mem.read_bytes(a(2), 16);
            let r = u64::from_le_bytes(sig_bytes[..8].try_into().expect("8 bytes"));
            let s = u64::from_le_bytes(sig_bytes[8..].try_into().expect("8 bytes"));
            sig::verify(scheme, public, &msg, &sig::Signature { r, s }) as i64
        }
        _ => 0,
    }
}

/// Precompile cycle charge for a call (fixed-cost circuits, per the paper's
/// precompile discussion in §4.2).
#[inline]
pub fn precompile_cycles(profile: &crate::profile::VmProfile, code: u32, args: &[i64]) -> u64 {
    let len = args.get(1).copied().unwrap_or(0).max(0) as u64;
    match code {
        ecall::SHA256 => (len / 64 + 2) * profile.sha256_block_cycles,
        ecall::KECCAK256 => (len / 136 + 1) * profile.keccak_block_cycles,
        ecall::ECDSA_VERIFY | ecall::EDDSA_VERIFY => profile.sig_verify_cycles,
        _ => 0,
    }
}

/// [`zkvmopt_ir::EcallHandler`] implementation backed by the real crypto —
/// plug this into the reference interpreter so it matches the zkVM executor
/// bit for bit.
#[derive(Debug, Default, Clone, Copy)]
pub struct CryptoEcalls;

impl zkvmopt_ir::EcallHandler for CryptoEcalls {
    fn handle(&mut self, code: u32, args: &[i64], mem: &mut [u8]) -> i64 {
        run_precompile(code, args, &mut FlatMem(mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_precompile_via_flat_memory() {
        let mut mem = vec![0u8; 4096];
        mem[100..103].copy_from_slice(b"abc");
        let r = run_precompile(ecall::SHA256, &[100, 3, 200], &mut FlatMem(&mut mem[..]));
        assert_eq!(r, 0);
        assert_eq!(mem[200], 0xba);
        assert_eq!(mem[201], 0x78);
    }

    #[test]
    fn signature_precompile_roundtrip() {
        let kp = sig::keypair_from_seed(9);
        let msg = zkvmopt_crypto::sha256(b"payload");
        let s = sig::sign(sig::Scheme::Ecdsa, &kp, &msg);
        let mut mem = vec![0u8; 4096];
        mem[0..32].copy_from_slice(&msg);
        mem[64..72].copy_from_slice(&kp.public.to_le_bytes());
        mem[96..104].copy_from_slice(&s.r.to_le_bytes());
        mem[104..112].copy_from_slice(&s.s.to_le_bytes());
        let ok = run_precompile(
            ecall::ECDSA_VERIFY,
            &[0, 64, 96],
            &mut FlatMem(&mut mem[..]),
        );
        assert_eq!(ok, 1);
        // Corrupt the message: verification fails.
        mem[0] ^= 1;
        let bad = run_precompile(
            ecall::ECDSA_VERIFY,
            &[0, 64, 96],
            &mut FlatMem(&mut mem[..]),
        );
        assert_eq!(bad, 0);
    }
}
