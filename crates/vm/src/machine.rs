//! The **reference** zkVM step interpreter plus the execution-report types
//! shared with the block-dispatch engine.
//!
//! `Machine` decodes on every step and accounts per instruction; it is the
//! original executor, kept as the differential oracle for
//! [`crate::engine::Engine`] behind `cfg(test)` / the `reference` cargo
//! feature. Production execution goes through the engine — `run_program`
//! here delegates to it. (Code spans, not links: these items are compiled
//! out of default-feature docs.)

#[cfg(any(test, feature = "reference"))]
use crate::ecalls::{self, MemIo};
#[cfg(any(test, feature = "reference"))]
use crate::mem::{MemFault, PagedMemory, STACK_TOP};
#[cfg(any(test, feature = "reference"))]
use crate::profile::VmProfile;
use crate::profile::{EngineStats, VmKind};
use std::fmt;
#[cfg(any(test, feature = "reference"))]
use zkvmopt_ir::ecall;
use zkvmopt_riscv::inst::{AluImmOp, AluOp};
#[cfg(any(test, feature = "reference"))]
use zkvmopt_riscv::inst::{Inst, MemWidth};
#[cfg(any(test, feature = "reference"))]
use zkvmopt_riscv::{Program, Reg};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Values served by `read_input`.
    pub inputs: Vec<i32>,
    /// Abort after this many user cycles.
    pub max_cycles: u64,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            inputs: Vec::new(),
            max_cycles: 2_000_000_000,
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Guest memory fault.
    MemFault { addr: u32, pc: usize },
    /// Jump outside the code.
    BadPc { pc: usize },
    /// Cycle budget exhausted.
    CycleLimit,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemFault { addr, pc } => {
                write!(f, "memory fault at {addr:#x} (pc {pc})")
            }
            ExecError::BadPc { pc } => write!(f, "jump outside code (pc {pc})"),
            ExecError::CycleLimit => write!(f, "cycle limit exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Dynamic instruction-mix counters (feed the proving-cost model's chip
/// tables and the x86 comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstMix {
    /// ALU / immediate ALU operations.
    pub alu: u64,
    /// Multiplies (RV32M).
    pub mul: u64,
    /// Divisions and remainders (RV32M).
    pub div: u64,
    /// Loads.
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Conditional branches.
    pub branch: u64,
    /// Jumps (`jal`/`jalr`).
    pub jump: u64,
    /// Environment calls.
    pub ecall: u64,
}

impl InstMix {
    /// Count one dynamic instruction of the given class (the canonical
    /// bucketing lives in [`zkvmopt_riscv::inst::MixClass`]).
    #[inline]
    pub fn bump(&mut self, class: zkvmopt_riscv::inst::MixClass) {
        use zkvmopt_riscv::inst::MixClass;
        match class {
            MixClass::Alu => self.alu += 1,
            MixClass::Mul => self.mul += 1,
            MixClass::Div => self.div += 1,
            MixClass::Load => self.load += 1,
            MixClass::Store => self.store += 1,
            MixClass::Branch => self.branch += 1,
            MixClass::Jump => self.jump += 1,
            MixClass::Ecall => self.ecall += 1,
        }
    }

    /// Accumulate another mix (the engine adds a whole block's static mix
    /// per batched entry).
    pub fn add(&mut self, other: &InstMix) {
        self.alu += other.alu;
        self.mul += other.mul;
        self.div += other.div;
        self.load += other.load;
        self.store += other.store;
        self.branch += other.branch;
        self.jump += other.jump;
        self.ecall += other.ecall;
    }

    /// Per-class difference vs an `earlier` snapshot of the same cumulative
    /// counters (`self - earlier`) — the per-segment mix deltas behind
    /// [`crate::SegmentRecord`]. Every field of `earlier` must be `<=` the
    /// corresponding field of `self`.
    #[must_use]
    pub fn delta_since(&self, earlier: &InstMix) -> InstMix {
        InstMix {
            alu: self.alu - earlier.alu,
            mul: self.mul - earlier.mul,
            div: self.div - earlier.div,
            load: self.load - earlier.load,
            store: self.store - earlier.store,
            branch: self.branch - earlier.branch,
            jump: self.jump - earlier.jump,
            ecall: self.ecall - earlier.ecall,
        }
    }
}

/// Everything the study measures from one guest execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Which VM profile ran this.
    pub kind: VmKind,
    /// Dynamic instruction count (the paper's key cost driver, §5.1).
    pub instret: u64,
    /// Cycles from instruction execution (incl. precompile charges).
    pub user_cycles: u64,
    /// Cycles from page-ins/page-outs.
    pub paging_cycles: u64,
    /// `user_cycles + paging_cycles` — the "cycle count" metric.
    pub total_cycles: u64,
    /// Page-in count.
    pub page_ins: u64,
    /// Page-out count.
    pub page_outs: u64,
    /// Continuation segments (RISC Zero) / proof shards (SP1).
    pub segments: u64,
    /// Exit code (`main`'s return value, or the `halt` argument).
    pub exit_code: i32,
    /// Whether the guest called `halt` explicitly.
    pub halted: bool,
    /// Values committed to the journal.
    pub journal: Vec<i32>,
    /// Instruction mix.
    pub mix: InstMix,
    /// Advisory engine-v3 profiling counters (all zero from the reference
    /// interpreter; excluded from the bit-identity contract — see
    /// [`EngineStats`]).
    pub stats: EngineStats,
    /// Modelled zkVM execution (replay) time in milliseconds.
    pub exec_time_ms: f64,
    /// Measured wall-clock time of this simulation (informational).
    pub wall_time_ms: f64,
}

/// The reference step interpreter (decode-per-step, per-instruction
/// accounting). Kept as the differential oracle for the block-dispatch
/// engine; compiled only for tests or under the `reference` feature.
#[cfg(any(test, feature = "reference"))]
pub struct Machine<'p> {
    program: &'p Program,
    profile: VmProfile,
    config: ExecConfig,
    regs: [u32; 32],
    pc: usize,
    mem: PagedMemory,
    journal: Vec<i32>,
}

#[cfg(any(test, feature = "reference"))]
struct PagedIo<'a>(&'a mut PagedMemory);

#[cfg(any(test, feature = "reference"))]
impl MemIo for PagedIo<'_> {
    fn read_bytes(&mut self, addr: u32, len: u32) -> Vec<u8> {
        self.0
            .read_bytes_host(addr, len)
            .unwrap_or_else(|_| vec![0; len as usize])
    }

    fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let _ = self.0.write_bytes_host(addr, data);
    }
}

#[cfg(any(test, feature = "reference"))]
impl<'p> Machine<'p> {
    /// Set up a machine with globals loaded and `sp` initialized.
    pub fn new(program: &'p Program, profile: VmProfile, config: ExecConfig) -> Machine<'p> {
        let mut mem = PagedMemory::new(profile.page_size);
        for (addr, data) in &program.globals {
            mem.write_bytes_host(*addr, data)
                .expect("global image fits");
        }
        let mut regs = [0u32; 32];
        regs[Reg::SP.0 as usize] = STACK_TOP;
        Machine {
            program,
            profile,
            config,
            regs,
            pc: program.entry,
            mem,
            journal: Vec::new(),
        }
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.0 as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Run to halt, producing the metric report.
    ///
    /// # Errors
    /// Returns [`ExecError`] on faults or budget exhaustion.
    pub fn run(mut self) -> Result<ExecutionReport, ExecError> {
        let start = std::time::Instant::now();
        let mut instret: u64 = 0;
        let mut user_cycles: u64 = 0;
        let mut mix = InstMix::default();
        let mut segments: u64 = 1;
        let mut segment_cycles: u64 = 0;
        #[allow(unused_assignments)]
        let mut exit_code: i32 = 0;
        #[allow(unused_assignments)]
        let mut halted = false;

        'run: loop {
            let Some(inst) = self.program.code.get(self.pc) else {
                return Err(ExecError::BadPc { pc: self.pc });
            };
            let page_ins_before = self.mem.page_ins();
            let page_outs_before = self.mem.page_outs();
            let mut cost: u64 = 1;
            let mut next_pc = self.pc + 1;
            match *inst {
                Inst::Lui { rd, imm } => {
                    mix.alu += 1;
                    self.set_reg(rd, imm as u32);
                }
                Inst::Alu { op, rd, rs1, rs2 } => {
                    let a = self.reg(rs1);
                    let b = self.reg(rs2);
                    match op {
                        AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => mix.mul += 1,
                        AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => mix.div += 1,
                        _ => mix.alu += 1,
                    }
                    self.set_reg(rd, alu(op, a, b));
                }
                Inst::AluImm { op, rd, rs1, imm } => {
                    mix.alu += 1;
                    let a = self.reg(rs1);
                    self.set_reg(rd, alu_imm(op, a, imm));
                }
                Inst::Load {
                    width,
                    rd,
                    base,
                    offset,
                } => {
                    mix.load += 1;
                    let addr = self.reg(base).wrapping_add(offset as u32);
                    let raw = self
                        .mem
                        .read(addr, width.bytes())
                        .map_err(|MemFault { addr }| ExecError::MemFault { addr, pc: self.pc })?;
                    let v = match width {
                        MemWidth::Byte => (raw as u8 as i8) as i32 as u32,
                        MemWidth::ByteU => raw & 0xff,
                        MemWidth::Half => (raw as u16 as i16) as i32 as u32,
                        MemWidth::HalfU => raw & 0xffff,
                        MemWidth::Word => raw,
                    };
                    self.set_reg(rd, v);
                }
                Inst::Store {
                    width,
                    src,
                    base,
                    offset,
                } => {
                    mix.store += 1;
                    let addr = self.reg(base).wrapping_add(offset as u32);
                    self.mem
                        .write(addr, self.reg(src), width.bytes())
                        .map_err(|MemFault { addr }| ExecError::MemFault { addr, pc: self.pc })?;
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    mix.branch += 1;
                    if cond.eval(self.reg(rs1), self.reg(rs2)) {
                        next_pc = target;
                    }
                }
                Inst::Jal { rd, target } => {
                    mix.jump += 1;
                    self.set_reg(rd, (self.pc as u32 + 1) * 4);
                    next_pc = target;
                }
                Inst::Jalr { rd, rs1, offset } => {
                    mix.jump += 1;
                    let t = self.reg(rs1).wrapping_add(offset as u32) / 4;
                    self.set_reg(rd, (self.pc as u32 + 1) * 4);
                    next_pc = t as usize;
                }
                Inst::Ecall => {
                    mix.ecall += 1;
                    let code = self.reg(Reg::T0);
                    let args: [i64; 3] = [
                        self.reg(Reg::A0) as i64,
                        self.reg(Reg::A1) as i64,
                        self.reg(Reg::A2) as i64,
                    ];
                    match code {
                        ecall::HALT => {
                            exit_code = self.reg(Reg::A0) as i32;
                            halted = true;
                            instret += 1;
                            user_cycles += cost;
                            break 'run;
                        }
                        ecall::COMMIT => {
                            self.journal.push(self.reg(Reg::A0) as i32);
                            self.set_reg(Reg::A0, 0);
                        }
                        ecall::READ_INPUT => {
                            let idx = self.reg(Reg::A0) as usize;
                            let v = self.config.inputs.get(idx).copied().unwrap_or(0);
                            self.set_reg(Reg::A0, v as u32);
                        }
                        other => {
                            cost += ecalls::precompile_cycles(&self.profile, other, &args);
                            let r =
                                ecalls::run_precompile(other, &args, &mut PagedIo(&mut self.mem));
                            self.set_reg(Reg::A0, r as u32);
                        }
                    }
                }
            }
            instret += 1;
            user_cycles += cost;
            // Paging cycles from this instruction.
            let dins = self.mem.page_ins() - page_ins_before;
            let douts = self.mem.page_outs() - page_outs_before;
            let pcycles = self.profile.paging_cycles(dins, douts);
            segment_cycles += cost + pcycles;
            if segment_cycles >= self.profile.segment_cycles {
                segments += 1;
                segment_cycles = 0;
                self.mem.flush_segment();
            }
            if user_cycles > self.config.max_cycles {
                return Err(ExecError::CycleLimit);
            }
            self.pc = next_pc;
        }

        let paging_cycles = self
            .profile
            .paging_cycles(self.mem.page_ins(), self.mem.page_outs());
        let total_cycles = user_cycles + paging_cycles;
        // Modelled replay time: RISC Zero's executor also replays paging
        // work; SP1's does not expose it.
        let exec_cycles = match self.profile.kind {
            VmKind::RiscZero => total_cycles,
            VmKind::Sp1 => user_cycles,
        };
        let exec_time_ms = exec_cycles as f64 / self.profile.emulation_hz * 1e3;
        // The exit code without an explicit halt is main's return in a0 —
        // the _start stub halts with it, so `halted` distinguishes guest
        // halts only when halt() was called before main returned. Either
        // way the code is in `exit_code` when halted; otherwise read a0.
        let exit = if halted {
            exit_code
        } else {
            self.reg(Reg::A0) as i32
        };
        Ok(ExecutionReport {
            kind: self.profile.kind,
            instret,
            user_cycles,
            paging_cycles,
            total_cycles,
            page_ins: self.mem.page_ins(),
            page_outs: self.mem.page_outs(),
            segments,
            exit_code: exit,
            halted,
            journal: self.journal,
            mix,
            stats: EngineStats::default(),
            exec_time_ms,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

/// Evaluate a register-register ALU op with RV32IM semantics (shared with
/// the x86 timing model).
pub fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    let (sa, sb) = (a as i32, b as i32);
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => (sa < sb) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => (sa.wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => ((sa as i64 * sb as i64) >> 32) as u32,
        AluOp::Mulhsu => ((sa as i64 * b as i64) >> 32) as u32,
        AluOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if sa == i32::MIN && sb == -1 {
                a
            } else {
                sa.wrapping_div(sb) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if sa == i32::MIN && sb == -1 {
                0
            } else {
                sa.wrapping_rem(sb) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

/// Evaluate a register-immediate ALU op (shared with the x86 timing model).
pub fn alu_imm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    let sa = a as i32;
    let b = imm as u32;
    match op {
        AluImmOp::Addi => a.wrapping_add(b),
        AluImmOp::Slti => ((sa) < imm) as u32,
        AluImmOp::Sltiu => (a < b) as u32,
        AluImmOp::Xori => a ^ b,
        AluImmOp::Ori => a | b,
        AluImmOp::Andi => a & b,
        AluImmOp::Slli => a.wrapping_shl(b & 31),
        AluImmOp::Srli => a.wrapping_shr(b & 31),
        AluImmOp::Srai => (sa.wrapping_shr(b & 31)) as u32,
    }
}

/// Run `program` through the **reference** step interpreter — the oracle the
/// differential harness and the `engine_throughput` bench compare against.
///
/// # Errors
/// Propagates [`ExecError`].
#[cfg(any(test, feature = "reference"))]
pub fn run_program_reference(
    program: &Program,
    kind: VmKind,
    inputs: &[i32],
) -> Result<ExecutionReport, ExecError> {
    let profile = VmProfile::for_kind(kind);
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        ..ExecConfig::default()
    };
    Machine::new(program, profile, config).run()
}
