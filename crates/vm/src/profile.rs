//! zkVM cost-model profiles.
//!
//! Constants follow the sources the paper cites: the RISC Zero optimization
//! guide (1 KiB pages, ~1130 cycles per page-in/page-out, near-uniform
//! instruction cost) and SP1's shard-based prover (no public paging metric —
//! Table 2 lists paging as "N/A" for SP1).

use std::fmt;

/// Which zkVM is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmKind {
    /// RISC Zero–like: paged memory, segment continuations.
    RiscZero,
    /// SP1-like: chip tables, proof shards.
    Sp1,
}

impl VmKind {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            VmKind::RiscZero => "RISC Zero",
            VmKind::Sp1 => "SP1",
        }
    }

    /// Both studied zkVMs.
    pub const BOTH: [VmKind; 2] = [VmKind::RiscZero, VmKind::Sp1];
}

impl fmt::Display for VmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable cost parameters of a zkVM profile.
#[derive(Debug, Clone, PartialEq)]
pub struct VmProfile {
    /// Which VM this models.
    pub kind: VmKind,
    /// Memory page size in bytes.
    pub page_size: u32,
    /// Cycles charged per page-in (first touch of a page in a segment).
    pub page_in_cycles: u64,
    /// Cycles charged per page-out (first write to a page in a segment).
    pub page_out_cycles: u64,
    /// Maximum user cycles per segment/shard before a continuation split.
    pub segment_cycles: u64,
    /// Fixed cycles for the SHA-256 precompile per 64-byte block.
    pub sha256_block_cycles: u64,
    /// Fixed cycles for the Keccak precompile per 136-byte block.
    pub keccak_block_cycles: u64,
    /// Fixed cycles per signature-verify precompile call.
    pub sig_verify_cycles: u64,
    /// Modelled executor replay rate (instructions per second) used for the
    /// zkVM-execution-time metric.
    pub emulation_hz: f64,
}

impl VmProfile {
    /// The RISC Zero–like profile.
    pub fn risc_zero() -> VmProfile {
        VmProfile {
            kind: VmKind::RiscZero,
            page_size: 1024,
            page_in_cycles: 1130,
            page_out_cycles: 1130,
            segment_cycles: 1 << 20,
            sha256_block_cycles: 68,
            keccak_block_cycles: 400,
            sig_verify_cycles: 6_000,
            emulation_hz: 10.0e6,
        }
    }

    /// The SP1-like profile. Paging is not a published SP1 metric; page
    /// costs are folded into a small uniform memory-access surcharge via
    /// `page_in_cycles` on much larger shards.
    pub fn sp1() -> VmProfile {
        VmProfile {
            kind: VmKind::Sp1,
            page_size: 1024,
            page_in_cycles: 188,
            page_out_cycles: 188,
            segment_cycles: 1 << 19,
            sha256_block_cycles: 80,
            keccak_block_cycles: 300,
            sig_verify_cycles: 4_000,
            emulation_hz: 25.0e6,
        }
    }

    /// Profile for a [`VmKind`].
    pub fn for_kind(kind: VmKind) -> VmProfile {
        match kind {
            VmKind::RiscZero => VmProfile::risc_zero(),
            VmKind::Sp1 => VmProfile::sp1(),
        }
    }

    /// Cycles charged for `ins` page-ins and `outs` page-outs — the one
    /// paging-cost formula shared by the step interpreter and the
    /// block-dispatch engine, so their accounting cannot drift.
    #[inline]
    pub fn paging_cycles(&self, ins: u64, outs: u64) -> u64 {
        ins * self.page_in_cycles + outs * self.page_out_cycles
    }
}

/// Advisory engine-v3 profiling counters, surfaced per run in
/// [`crate::ExecutionReport::stats`]: superblock (trace) formation and deopt
/// activity, plus the hit rate of the residency pre-probe that lets the
/// batched memory path skip full paging checks.
///
/// These counters describe *how* the engine ran, not *what* it computed:
/// they are excluded from the bit-identity contract (the reference
/// interpreter reports all zeros, and under [`crate::Engine::run_lockstep`]
/// trace formation is shared across the cohort, making the attribution
/// scheduling-dependent). Every architectural observable — cycles, paging,
/// segments, journal, exit — stays bit-identical regardless of these values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Superblock traces formed (attributed to the lane whose block entry
    /// crossed the formation threshold).
    pub traces_formed: u64,
    /// Early trace exits taken (deopts back to block dispatch because an
    /// observed successor diverged from the trace's trained direction).
    pub trace_exits: u64,
    /// Loads/stores served entirely by the residency pre-probe cache (page
    /// known resident this segment: no bounds/paging work, zero charge).
    pub probe_hits: u64,
    /// Loads/stores that took the full charged access path.
    pub probe_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_cited_constants() {
        let r0 = VmProfile::risc_zero();
        assert_eq!(r0.page_size, 1024);
        assert_eq!(r0.page_in_cycles, 1130); // RISC Zero guide figure
        let sp1 = VmProfile::sp1();
        assert!(sp1.page_in_cycles < r0.page_in_cycles);
        assert!(sp1.emulation_hz > r0.emulation_hz); // Table 6: SP1 exec faster
    }

    #[test]
    fn kind_names() {
        assert_eq!(VmKind::RiscZero.name(), "RISC Zero");
        assert_eq!(VmKind::Sp1.to_string(), "SP1");
    }
}
