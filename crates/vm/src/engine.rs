//! The block-dispatch zkVM executor.
//!
//! [`Engine`] runs a [`DecodedProgram`] block-at-a-time: blocks with no
//! memory or ecall instructions take a **batched straight-line path** (one
//! cycle/segment/mix update per block instead of per instruction), everything
//! else takes a stepped path whose per-instruction accounting replicates the
//! reference step interpreter bit for bit. Cycle counts, paging charges,
//! segment splits, instruction mixes, journals, and error classes are
//! guaranteed identical to `crate::machine::Machine` — the suite-wide
//! differential harness (`tests/differential.rs`) enforces this across all
//! 58 workloads × 5 profiles × both VM kinds.

use crate::ecalls::{self, MemIo};
use crate::machine::{alu, alu_imm, ExecConfig, ExecError, ExecutionReport, InstMix};
use crate::mem::{FastMemory, MemFault, STACK_TOP};
use crate::op::{DecodedProgram, Op};
use crate::profile::{VmKind, VmProfile};
use zkvmopt_ir::ecall;
use zkvmopt_riscv::{Program, Reg};

struct FastIo<'a>(&'a mut FastMemory);

impl MemIo for FastIo<'_> {
    fn read_bytes(&mut self, addr: u32, len: u32) -> Vec<u8> {
        self.0
            .read_bytes_host(addr, len)
            .unwrap_or_else(|_| vec![0; len as usize])
    }

    fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let _ = self.0.write_bytes_host(addr, data);
    }
}

/// The pre-decoded block-dispatch executor.
pub struct Engine<'p> {
    prog: &'p DecodedProgram,
    profile: VmProfile,
    config: ExecConfig,
    /// 33 slots: `x0`–`x31` plus the `x0` write sink (see [`crate::op`]).
    regs: [u32; 33],
    mem: FastMemory,
    journal: Vec<i32>,
}

impl<'p> Engine<'p> {
    /// Set up an engine with globals loaded and `sp` initialized.
    pub fn new(prog: &'p DecodedProgram, profile: VmProfile, config: ExecConfig) -> Engine<'p> {
        let mut mem = FastMemory::new(profile.page_size);
        for (addr, data) in &prog.globals {
            mem.write_bytes_host(*addr, data)
                .expect("global image fits");
        }
        let mut regs = [0u32; 33];
        regs[Reg::SP.0 as usize] = STACK_TOP;
        Engine {
            prog,
            profile,
            config,
            regs,
            mem,
            journal: Vec::new(),
        }
    }

    #[inline]
    fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize]
    }

    /// Run to halt, producing the metric report.
    ///
    /// # Errors
    /// Returns [`ExecError`] on faults or budget exhaustion, with the same
    /// error classes the reference interpreter reports.
    #[allow(clippy::too_many_lines)]
    pub fn run(mut self) -> Result<ExecutionReport, ExecError> {
        let start = std::time::Instant::now();
        let mut instret: u64 = 0;
        let mut user_cycles: u64 = 0;
        let mut mix = InstMix::default();
        let mut segments: u64 = 1;
        let mut segment_cycles: u64 = 0;
        let exit_code: i32;
        let halted: bool;

        let seg_limit = self.profile.segment_cycles;
        let max_cycles = self.config.max_cycles;
        let n = self.prog.ops.len();
        let mut pc = self.prog.entry;

        'run: loop {
            if pc >= n {
                return Err(ExecError::BadPc { pc });
            }
            let block = &self.prog.blocks[self.prog.block_of[pc] as usize];
            if block.pure && pc == block.start as usize {
                // ---- Batched straight-line path (no memory, no ecalls) ----
                let ops = &self.prog.ops[block.start as usize..block.end as usize];
                let mut next_pc = block.end as usize;
                for op in ops {
                    match *op {
                        Op::Lui { rd, imm } => self.regs[rd as usize] = imm as u32,
                        Op::Alu { op, rd, rs1, rs2 } => {
                            self.regs[rd as usize] =
                                alu(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                        }
                        Op::AluImm { op, rd, rs1, imm } => {
                            self.regs[rd as usize] = alu_imm(op, self.regs[rs1 as usize], imm);
                        }
                        Op::Branch {
                            cond,
                            rs1,
                            rs2,
                            target,
                        } => {
                            if cond.eval(self.regs[rs1 as usize], self.regs[rs2 as usize]) {
                                next_pc = target as usize;
                            }
                        }
                        Op::Jal { rd, link, target } => {
                            self.regs[rd as usize] = link;
                            next_pc = target as usize;
                        }
                        Op::Jalr {
                            rd,
                            rs1,
                            offset,
                            link,
                        } => {
                            let t = self.regs[rs1 as usize].wrapping_add(offset as u32) / 4;
                            self.regs[rd as usize] = link;
                            next_pc = t as usize;
                        }
                        Op::Load { .. } | Op::Store { .. } | Op::Ecall => {
                            unreachable!("impure op in pure block")
                        }
                    }
                }
                let k = block.len() as u64;
                instret += k;
                user_cycles += k;
                mix.add(&block.mix);
                // Per-instruction semantics replayed arithmetically: each op
                // adds one segment cycle; crossing the limit resets to zero.
                if seg_limit == 0 {
                    segments += k;
                    self.mem.flush_segment();
                } else {
                    let room = seg_limit - segment_cycles;
                    if k < room {
                        segment_cycles += k;
                    } else {
                        segments += 1 + (k - room) / seg_limit;
                        segment_cycles = (k - room) % seg_limit;
                        self.mem.flush_segment();
                    }
                }
                if user_cycles > max_cycles {
                    return Err(ExecError::CycleLimit);
                }
                pc = next_pc;
            } else {
                // ---- Stepped path (memory/ecall blocks, mid-block entry) ----
                let end = block.end as usize;
                let mut i = pc;
                while i < end {
                    let mut cost: u64 = 1;
                    let mut next = i + 1;
                    let mut pcycles: u64 = 0;
                    let op = self.prog.ops[i];
                    mix.bump(op.mix_class());
                    match op {
                        Op::Lui { rd, imm } => {
                            self.regs[rd as usize] = imm as u32;
                        }
                        Op::Alu { op, rd, rs1, rs2 } => {
                            self.regs[rd as usize] = alu(op, self.reg(rs1), self.reg(rs2));
                        }
                        Op::AluImm { op, rd, rs1, imm } => {
                            self.regs[rd as usize] = alu_imm(op, self.reg(rs1), imm);
                        }
                        Op::Load {
                            width,
                            rd,
                            base,
                            offset,
                        } => {
                            let addr = self.reg(base).wrapping_add(offset as u32);
                            let ins0 = self.mem.page_ins();
                            let outs0 = self.mem.page_outs();
                            let raw = self
                                .mem
                                .read(addr, width.bytes())
                                .map_err(|MemFault { addr }| ExecError::MemFault { addr, pc: i })?;
                            let v = match width {
                                zkvmopt_riscv::MemWidth::Byte => (raw as u8 as i8) as i32 as u32,
                                zkvmopt_riscv::MemWidth::ByteU => raw & 0xff,
                                zkvmopt_riscv::MemWidth::Half => (raw as u16 as i16) as i32 as u32,
                                zkvmopt_riscv::MemWidth::HalfU => raw & 0xffff,
                                zkvmopt_riscv::MemWidth::Word => raw,
                            };
                            self.regs[rd as usize] = v;
                            pcycles = self.profile.paging_cycles(
                                self.mem.page_ins() - ins0,
                                self.mem.page_outs() - outs0,
                            );
                        }
                        Op::Store {
                            width,
                            src,
                            base,
                            offset,
                        } => {
                            let addr = self.reg(base).wrapping_add(offset as u32);
                            let ins0 = self.mem.page_ins();
                            let outs0 = self.mem.page_outs();
                            self.mem
                                .write(addr, self.reg(src), width.bytes())
                                .map_err(|MemFault { addr }| ExecError::MemFault { addr, pc: i })?;
                            pcycles = self.profile.paging_cycles(
                                self.mem.page_ins() - ins0,
                                self.mem.page_outs() - outs0,
                            );
                        }
                        Op::Branch {
                            cond,
                            rs1,
                            rs2,
                            target,
                        } => {
                            if cond.eval(self.reg(rs1), self.reg(rs2)) {
                                next = target as usize;
                            }
                        }
                        Op::Jal { rd, link, target } => {
                            self.regs[rd as usize] = link;
                            next = target as usize;
                        }
                        Op::Jalr {
                            rd,
                            rs1,
                            offset,
                            link,
                        } => {
                            let t = self.reg(rs1).wrapping_add(offset as u32) / 4;
                            self.regs[rd as usize] = link;
                            next = t as usize;
                        }
                        Op::Ecall => {
                            let code = self.reg(Reg::T0.0);
                            let args: [i64; 3] = [
                                self.reg(Reg::A0.0) as i64,
                                self.reg(Reg::A1.0) as i64,
                                self.reg(Reg::A2.0) as i64,
                            ];
                            match code {
                                ecall::HALT => {
                                    exit_code = self.reg(Reg::A0.0) as i32;
                                    halted = true;
                                    instret += 1;
                                    user_cycles += cost;
                                    break 'run;
                                }
                                ecall::COMMIT => {
                                    self.journal.push(self.reg(Reg::A0.0) as i32);
                                    self.regs[Reg::A0.0 as usize] = 0;
                                }
                                ecall::READ_INPUT => {
                                    let idx = self.reg(Reg::A0.0) as usize;
                                    let v = self.config.inputs.get(idx).copied().unwrap_or(0);
                                    self.regs[Reg::A0.0 as usize] = v as u32;
                                }
                                other => {
                                    cost += ecalls::precompile_cycles(&self.profile, other, &args);
                                    let r = ecalls::run_precompile(
                                        other,
                                        &args,
                                        &mut FastIo(&mut self.mem),
                                    );
                                    self.regs[Reg::A0.0 as usize] = r as u32;
                                }
                            }
                        }
                    }
                    instret += 1;
                    user_cycles += cost;
                    segment_cycles += cost + pcycles;
                    if segment_cycles >= seg_limit {
                        segments += 1;
                        segment_cycles = 0;
                        self.mem.flush_segment();
                    }
                    if user_cycles > max_cycles {
                        return Err(ExecError::CycleLimit);
                    }
                    if next != i + 1 {
                        pc = next;
                        continue 'run;
                    }
                    i = next;
                }
                pc = end;
            }
        }

        let paging_cycles = self
            .profile
            .paging_cycles(self.mem.page_ins(), self.mem.page_outs());
        let total_cycles = user_cycles + paging_cycles;
        let exec_cycles = match self.profile.kind {
            VmKind::RiscZero => total_cycles,
            VmKind::Sp1 => user_cycles,
        };
        let exec_time_ms = exec_cycles as f64 / self.profile.emulation_hz * 1e3;
        let exit = if halted {
            exit_code
        } else {
            self.reg(Reg::A0.0) as i32
        };
        Ok(ExecutionReport {
            kind: self.profile.kind,
            instret,
            user_cycles,
            paging_cycles,
            total_cycles,
            page_ins: self.mem.page_ins(),
            page_outs: self.mem.page_outs(),
            segments,
            exit_code: exit,
            halted,
            journal: self.journal,
            mix,
            exec_time_ms,
            wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

/// Run a decoded program under `kind` with `inputs` — the hot entry point
/// for cached (batched-suite) execution.
///
/// # Errors
/// Propagates [`ExecError`].
pub fn run_decoded(
    prog: &DecodedProgram,
    kind: VmKind,
    inputs: &[i32],
) -> Result<ExecutionReport, ExecError> {
    let profile = VmProfile::for_kind(kind);
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        ..ExecConfig::default()
    };
    Engine::new(prog, profile, config).run()
}

/// Decode-and-run convenience for one-shot executions of a [`Program`].
///
/// # Errors
/// Propagates [`ExecError`].
pub fn run_program(
    program: &Program,
    kind: VmKind,
    inputs: &[i32],
) -> Result<ExecutionReport, ExecError> {
    run_decoded(&DecodedProgram::decode(program), kind, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use zkvmopt_passes::{OptLevel, PassConfig, PassManager};
    use zkvmopt_riscv::TargetCostModel;

    fn build(src: &str, level: Option<OptLevel>) -> Program {
        let mut m = zkvmopt_lang::compile_guest(src).expect("compiles");
        if let Some(l) = level {
            PassManager::for_level(l).run(&mut m, &PassConfig::default());
        }
        zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).expect("codegen")
    }

    /// Every observable and every cost metric must match the reference step
    /// interpreter exactly (wall time excluded, of course).
    fn assert_identical(src: &str, inputs: &[i32], level: Option<OptLevel>) {
        let p = build(src, level);
        for kind in VmKind::BOTH {
            let config = ExecConfig {
                inputs: inputs.to_vec(),
                ..ExecConfig::default()
            };
            let old = Machine::new(&p, VmProfile::for_kind(kind), config.clone())
                .run()
                .expect("reference runs");
            let d = DecodedProgram::decode(&p);
            let new = Engine::new(&d, VmProfile::for_kind(kind), config)
                .run()
                .expect("engine runs");
            assert_eq!(new.instret, old.instret, "instret ({kind})");
            assert_eq!(new.user_cycles, old.user_cycles, "user_cycles ({kind})");
            assert_eq!(new.paging_cycles, old.paging_cycles, "paging ({kind})");
            assert_eq!(new.total_cycles, old.total_cycles, "total ({kind})");
            assert_eq!(new.page_ins, old.page_ins, "page_ins ({kind})");
            assert_eq!(new.page_outs, old.page_outs, "page_outs ({kind})");
            assert_eq!(new.segments, old.segments, "segments ({kind})");
            assert_eq!(new.exit_code, old.exit_code, "exit ({kind})");
            assert_eq!(new.halted, old.halted, "halted ({kind})");
            assert_eq!(new.journal, old.journal, "journal ({kind})");
            assert_eq!(new.mix, old.mix, "mix ({kind})");
        }
    }

    #[test]
    fn matches_reference_on_arithmetic_loops() {
        assert_identical(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 1; i <= 200; i += 1) { s += i * i - s / 7; }
               commit(s);
               return s;
             }",
            &[],
            None,
        );
    }

    #[test]
    fn matches_reference_on_memory_and_paging() {
        assert_identical(
            "static A: [i32; 16384];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 16384; i += 64) { A[i] = i * 3; }
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 16384; i += 64) { s += A[i]; }
               commit(s);
               return s;
             }",
            &[],
            Some(OptLevel::O2),
        );
    }

    #[test]
    fn matches_reference_on_calls_and_recursion() {
        assert_identical(
            "fn fib(n: i32) -> i32 {
               if (n < 2) { return n; }
               return fib(n - 1) + fib(n - 2);
             }
             fn main() -> i32 { commit(fib(15)); return fib(11); }",
            &[],
            Some(OptLevel::O3),
        );
    }

    #[test]
    fn matches_reference_on_segment_splits() {
        // A long loop over one page: segment flushes re-page the resident
        // set, the accounting the batched path replays arithmetically.
        assert_identical(
            "static A: [i32; 4];
             fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 400000; i += 1) { A[0] = i; s += A[0]; }
               return s;
             }",
            &[],
            Some(OptLevel::O1),
        );
    }

    #[test]
    fn matches_reference_on_precompiles_and_halt() {
        assert_identical(
            "static MSG: [i8; 3] = \"abc\";
             static OUT: [i8; 32];
             fn main() -> i32 {
               sha256(MSG, 3, OUT);
               commit(OUT[0] as i32);
               halt(OUT[1] as i32);
               return -1;
             }",
            &[],
            None,
        );
    }

    #[test]
    fn matches_reference_on_inputs_and_division_edges() {
        assert_identical(
            "fn main() -> i32 {
               let a: i32 = read_input(0);
               let b: i32 = read_input(1);
               commit(a / b); commit(a % b);
               commit((-2147483647 - 1) / -1); commit((-2147483647 - 1) % -1);
               return a / 8;
             }",
            &[-7, 0],
            None,
        );
    }

    #[test]
    fn cycle_limit_matches_reference() {
        let p = build(
            "fn main() -> i32 { let mut i: i32 = 0; while (true) { i += 1; } return i; }",
            None,
        );
        let cfg = ExecConfig {
            max_cycles: 10_000,
            ..ExecConfig::default()
        };
        let d = DecodedProgram::decode(&p);
        let r = Engine::new(&d, VmProfile::risc_zero(), cfg).run();
        assert_eq!(r.unwrap_err(), ExecError::CycleLimit);
    }

    #[test]
    fn run_decoded_reuses_one_decode_across_vm_kinds() {
        let p = build("fn main() -> i32 { return 6 * 7; }", None);
        let d = DecodedProgram::decode(&p);
        let r0 = run_decoded(&d, VmKind::RiscZero, &[]).unwrap();
        let sp1 = run_decoded(&d, VmKind::Sp1, &[]).unwrap();
        assert_eq!(r0.exit_code, 42);
        assert_eq!(sp1.exit_code, 42);
        assert_eq!(r0.instret, sp1.instret);
    }
}
