//! The block-dispatch zkVM executor, v3.
//!
//! [`Engine`] runs a [`DecodedProgram`] block-at-a-time through three tiers:
//!
//! - **Pure blocks** (no memory, no ecalls) take a batched straight-line
//!   path: one cycle/segment/mix update per block instead of per
//!   instruction, with the per-instruction segment semantics replayed
//!   arithmetically.
//! - **Memory blocks** (loads/stores, no ecalls) take a batched path with a
//!   per-lane *residency pre-probe*: the page an access resolves to is
//!   cached once per segment, and subsequent same-page accesses skip the
//!   bounds/paging machinery entirely (their paging charge is provably
//!   zero while the page stays resident). Accounting is bit-identical to
//!   the stepped path because residency is monotone within a segment.
//! - **Ecall blocks** and mid-block entries take a stepped path whose
//!   per-instruction accounting replicates the reference step interpreter
//!   bit for bit.
//!
//! On top of block dispatch, hot block heads are chained into
//! **superblocks/traces**: after `TRACE_THRESHOLD` (64) entries, the observed
//! branch direction at each terminator is baked into a trace of up to
//! `TRACE_MAX_BLOCKS` (16) blocks, and execution follows the trace without
//! consulting the dispatch loop until a successor diverges from the trained
//! direction (a *deopt*, counted in [`EngineStats::trace_exits`], which
//! safely falls back to block dispatch — per-block accounting never depends
//! on the successor, so a deopt costs nothing but the early exit).
//!
//! [`Engine::run_lockstep`] advances N machine states through the shared
//! decoded program in convoys keyed by pc, using a structure-of-arrays
//! register layout so the candidate fan-out of the tuner amortizes block
//! lookup, dispatch, and (for pure blocks) even the op-fetch loop across
//! the whole cohort.
//!
//! Cycle counts, paging charges, segment splits, instruction mixes,
//! journals, and error classes are guaranteed identical to
//! `crate::machine::Machine` — the suite-wide differential harness
//! (`tests/differential.rs`) enforces this across all 58 workloads × 5
//! profiles × both VM kinds, and `tests/engine_lockstep.rs` enforces
//! lockstep-vs-sequential identity.

use crate::ecalls::{self, MemIo};
use crate::machine::{alu, alu_imm, ExecConfig, ExecError, ExecutionReport, InstMix};
use crate::mem::{FastMemory, MemFault, STACK_TOP};
use crate::op::{Block, BlockKind, DecodedProgram, Op};
use crate::profile::{EngineStats, VmKind, VmProfile};
use crate::segment::{SegmentRecord, SegmentRecorder};
use std::mem;
use std::time::Instant;
use zkvmopt_ir::ecall;
use zkvmopt_riscv::{MemWidth, Program, Reg};

/// Register-file slots per machine state: `x0`–`x31` plus the `x0` write
/// sink (see [`crate::op`]).
const NREGS: usize = 33;

/// Block-head entries before a superblock trace is formed.
const TRACE_THRESHOLD: u32 = 64;
/// Maximum blocks chained into one trace.
const TRACE_MAX_BLOCKS: usize = 16;
/// Hot-counter sentinel: trace formation failed, never retry.
const REJECTED: u32 = u32::MAX;

/// Residency pre-probe sentinel: no page cached this segment. Real page
/// indices never reach this value (`page_size >= 4`, so `addr >> page_shift`
/// tops out at `u32::MAX >> 2`). An *impossible* sentinel matters: the
/// previous sentinel `0` conflated "empty probe" with page 0 itself, so the
/// first access to any page-0 address vacuously "hit" — swallowing the
/// null-guard `MemFault` for `addr < 0x100` and eliding the page-in charge
/// for legal page-0 addresses.
const PROBE_NONE: u32 = u32::MAX;

struct FastIo<'a>(&'a mut FastMemory);

impl MemIo for FastIo<'_> {
    fn read_bytes(&mut self, addr: u32, len: u32) -> Vec<u8> {
        self.0
            .read_bytes_host(addr, len)
            .unwrap_or_else(|_| vec![0; len as usize])
    }

    fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let _ = self.0.write_bytes_host(addr, data);
    }
}

/// Outcome of executing one block (or trace) for one machine state.
enum StepOut {
    /// Continue at this code index.
    Next(usize),
    /// The guest halted with this exit code.
    Halt(i32),
    /// Execution failed.
    Err(ExecError),
}

/// One machine state's everything-but-registers: memory, accounting,
/// journal, and the residency pre-probe cache. The solo [`Engine`] owns one
/// lane; [`Engine::run_lockstep`] owns N.
struct Lane {
    profile: VmProfile,
    inputs: Vec<i32>,
    max_cycles: u64,
    mem: FastMemory,
    journal: Vec<i32>,
    instret: u64,
    user_cycles: u64,
    mix: InstMix,
    segments: u64,
    segment_cycles: u64,
    page_shift: u32,
    page_mask: u32,
    /// Residency pre-probe: the one page known resident this segment
    /// ([`PROBE_NONE`] = no page cached).
    probe_page: u32,
    /// First page the probe may cache. Every byte of a cached page must
    /// clear the `addr < 0x100` null guard, so pages overlapping the
    /// guarded range are never cached and always take the fully-checked
    /// access path — a probe hit can never bypass the validity check.
    min_probe_page: u32,
    /// Whether `probe_page` is known dirty (stores to it charge nothing).
    probe_writable: bool,
    stats: EngineStats,
    /// First global-image byte that failed to load, reported lazily as a
    /// `MemFault` when the lane runs.
    init_fault: Option<u32>,
    /// Per-segment accounting capture, installed only by
    /// [`Engine::run_segmented`] (`None` everywhere else, including every
    /// lockstep lane — the boxed option costs the hot paths nothing).
    recorder: Option<Box<SegmentRecorder>>,
}

impl Lane {
    fn new(profile: VmProfile, config: ExecConfig, globals: &[(u32, Vec<u8>)]) -> Lane {
        let mut mem = FastMemory::new(profile.page_size);
        let mut init_fault = None;
        for (addr, data) in globals {
            if mem.write_bytes_host(*addr, data).is_err() && init_fault.is_none() {
                init_fault = Some(*addr);
            }
        }
        let page_shift = profile.page_size.trailing_zeros();
        let page_mask = profile.page_size - 1;
        let min_probe_page = 0x100u32.div_ceil(profile.page_size);
        Lane {
            max_cycles: config.max_cycles,
            inputs: config.inputs,
            profile,
            mem,
            journal: Vec::new(),
            instret: 0,
            user_cycles: 0,
            mix: InstMix::default(),
            segments: 1,
            segment_cycles: 0,
            page_shift,
            page_mask,
            probe_page: PROBE_NONE,
            min_probe_page,
            probe_writable: false,
            stats: EngineStats::default(),
            init_fault,
            recorder: None,
        }
    }

    /// End the segment: residency drops, so the probe cache must too. When
    /// a [`SegmentRecorder`] is installed ([`Engine::run_segmented`]), the
    /// closing segment's accounting deltas are captured first.
    #[inline]
    fn flush_segment(&mut self) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.close(
                &self.profile,
                self.instret,
                self.user_cycles,
                self.mem.page_ins(),
                self.mem.page_outs(),
                &self.mix,
            );
        }
        self.mem.flush_segment();
        self.probe_page = PROBE_NONE;
        self.probe_writable = false;
    }

    /// Load through the residency pre-probe. Returns the raw value and the
    /// paging cycles charged (zero on a probe hit — the page is already
    /// resident this segment, so the reference charges nothing either).
    #[inline]
    fn load(&mut self, addr: u32, size: u32) -> Result<(u32, u64), MemFault> {
        let page = addr >> self.page_shift;
        // `wrapping_add`: near-u32::MAX addresses wrap into page 0, which
        // is never cached (`min_probe_page >= 1`), so the hit test stays
        // correct without widening.
        if page == self.probe_page && addr.wrapping_add(size - 1) >> self.page_shift == page {
            self.stats.probe_hits += 1;
            return Ok((self.mem.peek_in_page(page, addr & self.page_mask, size), 0));
        }
        self.stats.probe_misses += 1;
        let (v, ins, outs) = self.mem.read_charged(addr, size)?;
        if addr.wrapping_add(size - 1) >> self.page_shift == page && page >= self.min_probe_page {
            self.probe_page = page;
            self.probe_writable = self.mem.page_dirty(page);
        }
        Ok((v, self.profile.paging_cycles(ins, outs)))
    }

    /// Store through the residency pre-probe. Returns the paging cycles
    /// charged (zero on a hit — the page is already dirty this segment).
    #[inline]
    fn store(&mut self, addr: u32, value: u32, size: u32) -> Result<u64, MemFault> {
        let page = addr >> self.page_shift;
        if page == self.probe_page
            && self.probe_writable
            && addr.wrapping_add(size - 1) >> self.page_shift == page
        {
            self.stats.probe_hits += 1;
            self.mem
                .poke_in_page(page, addr & self.page_mask, value, size);
            return Ok(0);
        }
        self.stats.probe_misses += 1;
        let (ins, outs) = self.mem.write_charged(addr, value, size)?;
        if addr.wrapping_add(size - 1) >> self.page_shift == page && page >= self.min_probe_page {
            self.probe_page = page;
            self.probe_writable = true;
        }
        Ok(self.profile.paging_cycles(ins, outs))
    }
}

#[inline]
fn extend(width: MemWidth, raw: u32) -> u32 {
    match width {
        MemWidth::Byte => (raw as u8 as i8) as i32 as u32,
        MemWidth::ByteU => raw & 0xff,
        MemWidth::Half => (raw as u16 as i16) as i32 as u32,
        MemWidth::HalfU => raw & 0xffff,
        MemWidth::Word => raw,
    }
}

/// The stepped path: per-instruction accounting identical to the reference
/// interpreter, from `pc` to the end of its block (or a taken jump, halt,
/// or error). Handles every op class; the batched paths fall back here.
#[allow(clippy::too_many_lines)]
fn exec_stepped(
    prog: &DecodedProgram,
    lane: &mut Lane,
    regs: &mut [u32],
    pc: usize,
    end: usize,
) -> StepOut {
    let seg_limit = lane.profile.segment_cycles;
    let max_cycles = lane.max_cycles;
    let mut i = pc;
    while i < end {
        let mut cost: u64 = 1;
        let mut next = i + 1;
        let mut pcycles: u64 = 0;
        let op = prog.ops[i];
        lane.mix.bump(op.mix_class());
        match op {
            Op::Lui { rd, imm } => regs[rd as usize] = imm as u32,
            Op::Alu { op, rd, rs1, rs2 } => {
                regs[rd as usize] = alu(op, regs[rs1 as usize], regs[rs2 as usize]);
            }
            Op::AluImm { op, rd, rs1, imm } => {
                regs[rd as usize] = alu_imm(op, regs[rs1 as usize], imm);
            }
            Op::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let addr = regs[base as usize].wrapping_add(offset as u32);
                match lane.load(addr, width.bytes()) {
                    Ok((raw, p)) => {
                        regs[rd as usize] = extend(width, raw);
                        pcycles = p;
                    }
                    Err(MemFault { addr }) => {
                        return StepOut::Err(ExecError::MemFault { addr, pc: i });
                    }
                }
            }
            Op::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = regs[base as usize].wrapping_add(offset as u32);
                match lane.store(addr, regs[src as usize], width.bytes()) {
                    Ok(p) => pcycles = p,
                    Err(MemFault { addr }) => {
                        return StepOut::Err(ExecError::MemFault { addr, pc: i });
                    }
                }
            }
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(regs[rs1 as usize], regs[rs2 as usize]) {
                    next = target as usize;
                }
            }
            Op::Jal { rd, link, target } => {
                regs[rd as usize] = link;
                next = target as usize;
            }
            Op::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                let t = regs[rs1 as usize].wrapping_add(offset as u32) / 4;
                regs[rd as usize] = link;
                next = t as usize;
            }
            Op::Ecall => {
                let code = regs[Reg::T0.0 as usize];
                let args: [i64; 3] = [
                    regs[Reg::A0.0 as usize] as i64,
                    regs[Reg::A1.0 as usize] as i64,
                    regs[Reg::A2.0 as usize] as i64,
                ];
                match code {
                    ecall::HALT => {
                        let exit = regs[Reg::A0.0 as usize] as i32;
                        lane.instret += 1;
                        lane.user_cycles += cost;
                        return StepOut::Halt(exit);
                    }
                    ecall::COMMIT => {
                        lane.journal.push(regs[Reg::A0.0 as usize] as i32);
                        regs[Reg::A0.0 as usize] = 0;
                    }
                    ecall::READ_INPUT => {
                        let idx = regs[Reg::A0.0 as usize] as usize;
                        let v = lane.inputs.get(idx).copied().unwrap_or(0);
                        regs[Reg::A0.0 as usize] = v as u32;
                    }
                    other => {
                        cost += ecalls::precompile_cycles(&lane.profile, other, &args);
                        let r = ecalls::run_precompile(other, &args, &mut FastIo(&mut lane.mem));
                        regs[Reg::A0.0 as usize] = r as u32;
                    }
                }
            }
        }
        lane.instret += 1;
        lane.user_cycles += cost;
        lane.segment_cycles += cost + pcycles;
        if lane.segment_cycles >= seg_limit {
            lane.segments += 1;
            lane.segment_cycles = 0;
            lane.flush_segment();
        }
        if lane.user_cycles > max_cycles {
            return StepOut::Err(ExecError::CycleLimit);
        }
        if next != i + 1 {
            return StepOut::Next(next);
        }
        i = next;
    }
    StepOut::Next(end)
}

/// The pure batched path: execute a memory-free, ecall-free block
/// straight-line against one lane's register window. Accounting is the
/// caller's job ([`account_pure`]).
fn exec_pure(prog: &DecodedProgram, block: &Block, regs: &mut [u32]) -> usize {
    let mut next_pc = block.end as usize;
    for op in &prog.ops[block.start as usize..block.end as usize] {
        match *op {
            Op::Lui { rd, imm } => regs[rd as usize] = imm as u32,
            Op::Alu { op, rd, rs1, rs2 } => {
                regs[rd as usize] = alu(op, regs[rs1 as usize], regs[rs2 as usize]);
            }
            Op::AluImm { op, rd, rs1, imm } => {
                regs[rd as usize] = alu_imm(op, regs[rs1 as usize], imm);
            }
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(regs[rs1 as usize], regs[rs2 as usize]) {
                    next_pc = target as usize;
                }
            }
            Op::Jal { rd, link, target } => {
                regs[rd as usize] = link;
                next_pc = target as usize;
            }
            Op::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                let t = regs[rs1 as usize].wrapping_add(offset as u32) / 4;
                regs[rd as usize] = link;
                next_pc = t as usize;
            }
            Op::Load { .. } | Op::Store { .. } | Op::Ecall => {
                debug_assert!(false, "impure op in pure block");
            }
        }
    }
    next_pc
}

/// Batched accounting for one pure-block execution: per-instruction
/// semantics replayed arithmetically (each op adds one segment cycle;
/// crossing the limit resets to zero). The caller guarantees the block
/// fits the cycle budget, so no limit check is needed here.
fn account_pure(lane: &mut Lane, block: &Block) {
    let k = block.len() as u64;
    lane.instret += k;
    lane.user_cycles += k;
    lane.mix.add(&block.mix);
    let seg_limit = lane.profile.segment_cycles;
    if seg_limit == 0 {
        lane.segments += k;
        lane.flush_segment();
    } else {
        let room = seg_limit - lane.segment_cycles;
        if k < room {
            lane.segment_cycles += k;
        } else {
            lane.segments += 1 + (k - room) / seg_limit;
            lane.segment_cycles = (k - room) % seg_limit;
            lane.flush_segment();
        }
    }
}

/// The batched memory path: execute a load/store-bearing (ecall-free)
/// block with loads and stores resolved through the lane's residency
/// pre-probe, charging segment cycles per access exactly as the stepped
/// path would, and batching `instret`/`user_cycles`/mix at the end. The
/// caller guarantees the block fits the cycle budget (so CycleLimit cannot
/// fire mid-block and error ordering matches the stepped path) and that
/// the segment limit is nonzero.
fn exec_mem(prog: &DecodedProgram, block: &Block, lane: &mut Lane, regs: &mut [u32]) -> StepOut {
    let start = block.start as usize;
    let end = block.end as usize;
    let seg_limit = lane.profile.segment_cycles;
    let mut next = end;
    for (j, op) in prog.ops[start..end].iter().enumerate() {
        let mut pcycles: u64 = 0;
        match *op {
            Op::Lui { rd, imm } => regs[rd as usize] = imm as u32,
            Op::Alu { op, rd, rs1, rs2 } => {
                regs[rd as usize] = alu(op, regs[rs1 as usize], regs[rs2 as usize]);
            }
            Op::AluImm { op, rd, rs1, imm } => {
                regs[rd as usize] = alu_imm(op, regs[rs1 as usize], imm);
            }
            Op::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let addr = regs[base as usize].wrapping_add(offset as u32);
                match lane.load(addr, width.bytes()) {
                    Ok((raw, p)) => {
                        regs[rd as usize] = extend(width, raw);
                        pcycles = p;
                    }
                    Err(MemFault { addr }) => {
                        return StepOut::Err(ExecError::MemFault {
                            addr,
                            pc: start + j,
                        });
                    }
                }
            }
            Op::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = regs[base as usize].wrapping_add(offset as u32);
                match lane.store(addr, regs[src as usize], width.bytes()) {
                    Ok(p) => pcycles = p,
                    Err(MemFault { addr }) => {
                        return StepOut::Err(ExecError::MemFault {
                            addr,
                            pc: start + j,
                        });
                    }
                }
            }
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(regs[rs1 as usize], regs[rs2 as usize]) {
                    next = target as usize;
                }
            }
            Op::Jal { rd, link, target } => {
                regs[rd as usize] = link;
                next = target as usize;
            }
            Op::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                let t = regs[rs1 as usize].wrapping_add(offset as u32) / 4;
                regs[rd as usize] = link;
                next = t as usize;
            }
            Op::Ecall => debug_assert!(false, "ecall in memory block"),
        }
        lane.segment_cycles += 1 + pcycles;
        if lane.segment_cycles >= seg_limit {
            lane.segments += 1;
            lane.segment_cycles = 0;
            lane.flush_segment();
        }
    }
    let k = block.len() as u64;
    lane.instret += k;
    lane.user_cycles += k;
    lane.mix.add(&block.mix);
    StepOut::Next(next)
}

/// Execute the block `bidx` (entered at its head) for one lane, picking the
/// fastest path its kind and the lane's remaining cycle budget allow.
fn exec_block_auto(
    prog: &DecodedProgram,
    bidx: usize,
    lane: &mut Lane,
    regs: &mut [u32],
) -> StepOut {
    let block = &prog.blocks[bidx];
    let k = block.len() as u64;
    let fits = lane.user_cycles.saturating_add(k) <= lane.max_cycles;
    match block.kind {
        BlockKind::Pure if fits => {
            let next = exec_pure(prog, block, regs);
            account_pure(lane, block);
            StepOut::Next(next)
        }
        BlockKind::Mem if fits && lane.profile.segment_cycles > 0 => {
            exec_mem(prog, block, lane, regs)
        }
        _ => exec_stepped(prog, lane, regs, block.start as usize, block.end as usize),
    }
}

/// One step of a superblock trace: the block to execute and the successor
/// pc the trace was trained to expect (`u32::MAX` on the final step — a
/// planned exit, not a deopt).
#[derive(Clone, Copy)]
struct TraceStep {
    block: u32,
    expected: u32,
}

/// A superblock: a chain of blocks along the trained branch directions.
struct Trace {
    steps: Vec<TraceStep>,
}

/// Per-program trace state: hot counters, last observed branch directions,
/// and formed traces, all direct-indexed by block. One `TraceSet` is shared
/// by a whole lockstep cohort, so formation thresholds are crossed by the
/// cohort's combined entry weight.
struct TraceSet {
    hot: Vec<u32>,
    taken: Vec<bool>,
    traces: Vec<Option<Box<Trace>>>,
}

impl TraceSet {
    fn new(nblocks: usize) -> TraceSet {
        TraceSet {
            hot: vec![0; nblocks],
            taken: vec![false; nblocks],
            traces: (0..nblocks).map(|_| None).collect(),
        }
    }

    /// Count `weight` entries at block `bidx`; at [`TRACE_THRESHOLD`], form
    /// a trace (or reject the head permanently if none can be built).
    fn observe_entry(
        &mut self,
        prog: &DecodedProgram,
        bidx: usize,
        weight: u32,
        stats: &mut EngineStats,
    ) {
        if self.hot[bidx] == REJECTED || self.traces[bidx].is_some() {
            return;
        }
        let h = self.hot[bidx].saturating_add(weight).min(TRACE_THRESHOLD);
        self.hot[bidx] = h;
        if h >= TRACE_THRESHOLD {
            match form_trace(prog, &self.taken, bidx) {
                Some(t) => {
                    self.traces[bidx] = Some(Box::new(t));
                    stats.traces_formed += 1;
                }
                None => self.hot[bidx] = REJECTED,
            }
        }
    }

    /// Record the direction a block's terminating branch actually went, so
    /// trace formation chains along observed behavior.
    fn record_branch(&mut self, prog: &DecodedProgram, bidx: usize, next: usize) {
        let block = &prog.blocks[bidx];
        if let Op::Branch { target, .. } = prog.ops[block.end as usize - 1] {
            self.taken[bidx] = next == target as usize;
        }
    }
}

/// Build a trace from `head` by following predicted successors: branches go
/// the last observed direction, `jal` follows its target, fall-throughs
/// continue, and `jalr` (dynamic target) ends the chain. Formation stops
/// before ecall-bearing blocks, at mid-block targets, on revisits, and at
/// [`TRACE_MAX_BLOCKS`]; a chain shorter than two blocks is not worth a
/// trace (`None` → the head is rejected and never reconsidered).
fn form_trace(prog: &DecodedProgram, taken: &[bool], head: usize) -> Option<Trace> {
    let n = prog.ops.len();
    let mut steps: Vec<TraceStep> = Vec::new();
    let mut bidx = head;
    loop {
        let block = &prog.blocks[bidx];
        if block.mix.ecall > 0 {
            break;
        }
        let pred: Option<usize> = match prog.ops[block.end as usize - 1] {
            Op::Branch { target, .. } => {
                if taken[bidx] {
                    Some(target as usize)
                } else {
                    Some(block.end as usize)
                }
            }
            Op::Jal { target, .. } => Some(target as usize),
            Op::Jalr { .. } => None,
            _ => Some(block.end as usize),
        };
        steps.push(TraceStep {
            block: bidx as u32,
            expected: u32::MAX,
        });
        if steps.len() >= TRACE_MAX_BLOCKS {
            break;
        }
        let Some(p) = pred else { break };
        if p >= n {
            break;
        }
        let nb = prog.block_of[p] as usize;
        if prog.blocks[nb].start as usize != p {
            break; // mid-block target: dispatch handles it
        }
        if nb == head || steps.iter().any(|s| s.block as usize == nb) {
            break; // loop closed: let the head's own trace take over
        }
        if let Some(s) = steps.last_mut() {
            s.expected = p as u32;
        }
        bidx = nb;
    }
    if steps.len() >= 2 {
        Some(Trace { steps })
    } else {
        None
    }
}

/// Run a trace for one lane: execute each step's block, continuing while
/// the observed successor matches the trained one. A mismatch before the
/// final step is a deopt (counted, then back to dispatch at the actual pc —
/// always safe, because per-block accounting never depends on the
/// successor).
fn run_trace(prog: &DecodedProgram, trace: &Trace, lane: &mut Lane, regs: &mut [u32]) -> StepOut {
    let len = trace.steps.len();
    let mut i = 0;
    loop {
        let TraceStep { block, expected } = trace.steps[i];
        let out = exec_block_auto(prog, block as usize, lane, regs);
        let StepOut::Next(p) = out else { return out };
        i += 1;
        if i == len {
            return StepOut::Next(p);
        }
        if p as u32 != expected {
            lane.stats.trace_exits += 1;
            return StepOut::Next(p);
        }
    }
}

/// Build the final report for a finished lane.
fn finish(
    lane: &mut Lane,
    regs: &[u32],
    halted: bool,
    exit_code: i32,
    start: Instant,
) -> ExecutionReport {
    let paging_cycles = lane
        .profile
        .paging_cycles(lane.mem.page_ins(), lane.mem.page_outs());
    let total_cycles = lane.user_cycles + paging_cycles;
    let exec_cycles = match lane.profile.kind {
        VmKind::RiscZero => total_cycles,
        VmKind::Sp1 => lane.user_cycles,
    };
    let exec_time_ms = exec_cycles as f64 / lane.profile.emulation_hz * 1e3;
    let exit = if halted {
        exit_code
    } else {
        regs[Reg::A0.0 as usize] as i32
    };
    ExecutionReport {
        kind: lane.profile.kind,
        instret: lane.instret,
        user_cycles: lane.user_cycles,
        paging_cycles,
        total_cycles,
        page_ins: lane.mem.page_ins(),
        page_outs: lane.mem.page_outs(),
        segments: lane.segments,
        exit_code: exit,
        halted,
        journal: std::mem::take(&mut lane.journal),
        mix: lane.mix,
        stats: lane.stats,
        exec_time_ms,
        wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// The pre-decoded block-dispatch executor.
pub struct Engine<'p> {
    prog: &'p DecodedProgram,
    lane: Lane,
    regs: [u32; NREGS],
}

impl<'p> Engine<'p> {
    /// Set up an engine with globals loaded and `sp` initialized. A global
    /// image that does not fit guest memory is reported as a `MemFault`
    /// from [`Engine::run`], not a panic.
    pub fn new(prog: &'p DecodedProgram, profile: VmProfile, config: ExecConfig) -> Engine<'p> {
        let lane = Lane::new(profile, config, &prog.globals);
        let mut regs = [0u32; NREGS];
        regs[Reg::SP.0 as usize] = STACK_TOP;
        Engine { prog, lane, regs }
    }

    /// Run to halt, producing the metric report.
    ///
    /// # Errors
    /// Returns [`ExecError`] on faults or budget exhaustion, with the same
    /// error classes the reference interpreter reports.
    pub fn run(mut self) -> Result<ExecutionReport, ExecError> {
        let start = Instant::now();
        if let Some(addr) = self.lane.init_fault {
            return Err(ExecError::MemFault { addr, pc: 0 });
        }
        let n = self.prog.ops.len();
        let mut traces = TraceSet::new(self.prog.blocks.len());
        let mut pc = self.prog.entry;
        loop {
            if pc >= n {
                return Err(ExecError::BadPc { pc });
            }
            let bidx = self.prog.block_of[pc] as usize;
            let block = &self.prog.blocks[bidx];
            let out = if pc == block.start as usize {
                if let Some(trace) = traces.traces[bidx].as_deref() {
                    run_trace(self.prog, trace, &mut self.lane, &mut self.regs)
                } else {
                    traces.observe_entry(self.prog, bidx, 1, &mut self.lane.stats);
                    let out = exec_block_auto(self.prog, bidx, &mut self.lane, &mut self.regs);
                    if let StepOut::Next(p) = out {
                        traces.record_branch(self.prog, bidx, p);
                    }
                    out
                }
            } else {
                exec_stepped(
                    self.prog,
                    &mut self.lane,
                    &mut self.regs,
                    pc,
                    block.end as usize,
                )
            };
            match out {
                StepOut::Next(p) => pc = p,
                StepOut::Halt(code) => {
                    return Ok(finish(&mut self.lane, &self.regs, true, code, start));
                }
                StepOut::Err(e) => return Err(e),
            }
        }
    }

    /// Run to halt like [`Engine::run`], additionally splitting the
    /// execution into per-segment accounting records — the input to the
    /// segmented proving pipeline (`zkvmopt-prover`).
    ///
    /// Dispatch is stepped-only: the batched paths replay segment
    /// boundaries arithmetically (one internal segment flush can stand in
    /// for several crossings), which is fine for totals but cannot
    /// attribute cycles to individual segments. The stepped path flushes
    /// exactly once per boundary, so hooking the flush yields exact
    /// per-segment deltas; the report stays bit-identical to [`Engine::run`]
    /// because the stepped path *is* the accounting reference the batched
    /// tiers are verified against.
    ///
    /// Guarantees (gated by tests and the prover throughput bench):
    /// - the returned report equals [`Engine::run`]'s bit for bit
    ///   (advisory [`EngineStats`] excluded);
    /// - records sum bit-identically to the report's totals (`instret`,
    ///   `user_cycles`, paging, page-ins/outs, mix);
    /// - `records.len() == report.segments`.
    ///
    /// Callers supply profiles with nonzero `segment_cycles`; a zero limit
    /// degenerates to one record per instruction.
    ///
    /// # Errors
    /// Returns [`ExecError`] exactly as [`Engine::run`] would.
    pub fn run_segmented(mut self) -> Result<(ExecutionReport, Vec<SegmentRecord>), ExecError> {
        let start = Instant::now();
        if let Some(addr) = self.lane.init_fault {
            return Err(ExecError::MemFault { addr, pc: 0 });
        }
        self.lane.recorder = Some(Box::default());
        let n = self.prog.ops.len();
        let mut pc = self.prog.entry;
        loop {
            if pc >= n {
                return Err(ExecError::BadPc { pc });
            }
            let block = &self.prog.blocks[self.prog.block_of[pc] as usize];
            let out = exec_stepped(
                self.prog,
                &mut self.lane,
                &mut self.regs,
                pc,
                block.end as usize,
            );
            match out {
                StepOut::Next(p) => pc = p,
                StepOut::Halt(code) => {
                    let mut rec = self.lane.recorder.take().expect("recorder installed");
                    // The final (partial) segment never hit the limit, so no
                    // flush closed it; close it now. It is never empty: the
                    // halting ecall itself lands in it.
                    rec.close(
                        &self.lane.profile,
                        self.lane.instret,
                        self.lane.user_cycles,
                        self.lane.mem.page_ins(),
                        self.lane.mem.page_outs(),
                        &self.lane.mix,
                    );
                    let report = finish(&mut self.lane, &self.regs, true, code, start);
                    debug_assert_eq!(rec.records.len() as u64, report.segments);
                    return Ok((report, rec.records));
                }
                StepOut::Err(e) => return Err(e),
            }
        }
    }

    /// Advance N machine states through one shared decoded program in
    /// lockstep, returning one result per job in job order.
    ///
    /// States at the same pc form a *convoy* that shares block lookup and
    /// dispatch; pure-block convoys execute op-outer/lane-inner over a
    /// structure-of-arrays register file (lane-major `33 × N` flat array),
    /// amortizing even the op-fetch loop. When control flow diverges the
    /// convoy partitions by successor pc; each partition continues
    /// independently (no remerge). Trace formation is shared across the
    /// cohort — formation thresholds are crossed by combined entry weight —
    /// so [`EngineStats`] attribution is scheduling-dependent, but every
    /// architectural observable (cycles, paging, segments, journal, exit)
    /// is bit-identical to running each job alone via [`Engine::run`].
    pub fn run_lockstep(
        prog: &DecodedProgram,
        jobs: &[(VmProfile, ExecConfig)],
    ) -> Vec<Result<ExecutionReport, ExecError>> {
        let nlanes = jobs.len();
        let mut co = Cohort {
            prog,
            lanes: jobs
                .iter()
                .map(|(p, c)| Lane::new(p.clone(), c.clone(), &prog.globals))
                .collect(),
            regs: vec![[0u32; NREGS]; nlanes],
            results: (0..nlanes).map(|_| None).collect(),
            start: Instant::now(),
        };
        let mut live: Vec<usize> = Vec::new();
        for l in 0..nlanes {
            co.regs[l][Reg::SP.0 as usize] = STACK_TOP;
            match co.lanes[l].init_fault {
                Some(addr) => co.results[l] = Some(Err(ExecError::MemFault { addr, pc: 0 })),
                None => live.push(l),
            }
        }
        let n = prog.ops.len();
        let mut traces = TraceSet::new(prog.blocks.len());
        let mut sc = Scratch::default();
        let mut queue: Vec<(usize, Vec<usize>)> = Vec::new();
        if !live.is_empty() {
            queue.push((prog.entry, live));
        }
        // Outer loop: one queue entry = one convoy. The inner loop keeps a
        // convoy running block-to-block without touching the queue for as
        // long as every member agrees on the successor — the converged
        // common case pays no queue, grouping, or outcome-buffer traffic.
        'groups: while let Some((mut pc, mut members)) = queue.pop() {
            loop {
                if pc >= n {
                    for l in members {
                        co.results[l] = Some(Err(ExecError::BadPc { pc }));
                    }
                    continue 'groups;
                }
                let bidx = prog.block_of[pc] as usize;
                let head = prog.blocks[bidx].start as usize;
                if pc == head {
                    if let Some(trace) = traces.traces[bidx].as_deref() {
                        match run_trace_members(&mut co, trace, &mut members, &mut queue, &mut sc) {
                            Some(p) => {
                                pc = p;
                                continue;
                            }
                            None => continue 'groups,
                        }
                    }
                    traces.observe_entry(
                        prog,
                        bidx,
                        members.len() as u32,
                        &mut co.lanes[members[0]].stats,
                    );
                    if co.try_exec_tight(bidx, &members, &mut sc) {
                        if let Some(mi0) = sc.faults.iter().position(Option::is_none) {
                            let p0 = sc.nexts[mi0];
                            traces.record_branch(prog, bidx, p0);
                            if sc.faults.iter().all(Option::is_none)
                                && sc.nexts.iter().all(|&p| p == p0)
                            {
                                pc = p0;
                                continue;
                            }
                        }
                        sc.movers.clear();
                        for (mi, &l) in members.iter().enumerate() {
                            match sc.faults[mi].take() {
                                Some(e) => co.results[l] = Some(Err(e)),
                                None => sc.movers.push((l, sc.nexts[mi])),
                            }
                        }
                        enqueue_by_pc(&mut queue, &mut sc.movers, &mut members);
                        continue 'groups;
                    }
                    co.exec_block_members(bidx, &members, &mut sc);
                    let first_next = sc.outs.iter().find_map(|(_, o)| match o {
                        StepOut::Next(p) => Some(*p),
                        _ => None,
                    });
                    if let Some(p) = first_next {
                        traces.record_branch(prog, bidx, p);
                    }
                } else {
                    let end = prog.blocks[bidx].end as usize;
                    sc.outs.clear();
                    for &l in &members {
                        let out = co.exec_lane_stepped(l, pc, end);
                        sc.outs.push((l, out));
                    }
                }
                // Converged fast path: everyone advanced to the same pc.
                if let Some(&(_, StepOut::Next(p0))) = sc.outs.first() {
                    if sc.outs.len() == members.len()
                        && sc
                            .outs
                            .iter()
                            .all(|(_, o)| matches!(o, StepOut::Next(p) if *p == p0))
                    {
                        sc.outs.clear();
                        pc = p0;
                        continue;
                    }
                }
                sc.movers.clear();
                for (l, out) in sc.outs.drain(..) {
                    match out {
                        StepOut::Next(p) => sc.movers.push((l, p)),
                        StepOut::Halt(code) => co.finalize_halt(l, code),
                        StepOut::Err(e) => co.results[l] = Some(Err(e)),
                    }
                }
                enqueue_by_pc(&mut queue, &mut sc.movers, &mut members);
                continue 'groups;
            }
        }
        debug_assert!(co.results.iter().all(Option::is_some));
        co.results
            .into_iter()
            .map(|r| r.unwrap_or(Err(ExecError::BadPc { pc: usize::MAX })))
            .collect()
    }
}

/// N machine states advancing through one decoded program: per-lane
/// accounting in `lanes`, registers as one lane-major structure-of-arrays
/// slab, and finished results scattered by lane index.
struct Cohort<'p> {
    prog: &'p DecodedProgram,
    lanes: Vec<Lane>,
    regs: Vec<[u32; NREGS]>,
    results: Vec<Option<Result<ExecutionReport, ExecError>>>,
    start: Instant,
}

/// Reusable dispatch buffers for the lockstep loop. Each block dispatch
/// needs a handful of small vectors (budget flags, convoy membership,
/// successor pcs, outcomes, movers); allocating them fresh per block would
/// cost more than the block itself, so they live here and are cleared
/// between uses.
#[derive(Default)]
struct Scratch {
    /// Per-member "whole block fits in budget" flags.
    fits: Vec<bool>,
    /// Lane indices of the in-budget convoy members.
    fast: Vec<usize>,
    /// Successor pc per `fast` entry.
    nexts: Vec<usize>,
    /// Per-member block outcomes, in member order.
    outs: Vec<(usize, StepOut)>,
    /// Per-member memory fault from a tight convoy block, if any.
    faults: Vec<Option<ExecError>>,
    /// Lanes that left the current block/trace, with their actual pcs.
    movers: Vec<(usize, usize)>,
    /// Lanes staying on a trace at the current step.
    stay: Vec<usize>,
}

impl Scratch {
    /// Size `nexts`/`faults` for an `n`-member convoy. Every `nexts` slot
    /// is overwritten by the convoy executors, and `faults` slots are
    /// `None` between dispatches (every setter is paired with a `take`),
    /// so no clearing is needed when the size already matches.
    #[inline]
    fn ensure(&mut self, n: usize) {
        if self.nexts.len() != n {
            self.nexts.resize(n, 0);
            self.faults.clear();
            self.faults.resize(n, None);
        }
    }
}

impl Cohort<'_> {
    fn exec_lane_block(&mut self, l: usize, bidx: usize) -> StepOut {
        exec_block_auto(self.prog, bidx, &mut self.lanes[l], &mut self.regs[l])
    }

    fn exec_lane_stepped(&mut self, l: usize, pc: usize, end: usize) -> StepOut {
        exec_stepped(self.prog, &mut self.lanes[l], &mut self.regs[l], pc, end)
    }

    /// The hot convoy path: a pure or memory block with **every** member
    /// lane in budget runs op-outer/lane-inner directly over `members` (no
    /// membership copy, no outcome buffer), leaving each member's successor
    /// pc in `sc.nexts` and any memory fault in `sc.faults`. Returns
    /// `false` — having executed nothing — when the preconditions don't
    /// hold and the generic [`Cohort::exec_block_members`] path must run
    /// instead.
    fn try_exec_tight(&mut self, bidx: usize, members: &[usize], sc: &mut Scratch) -> bool {
        let (kind, k) = {
            let b = &self.prog.blocks[bidx];
            (b.kind, b.len() as u64)
        };
        if members.len() < 2 {
            return false;
        }
        let fits = |lane: &Lane| lane.user_cycles.saturating_add(k) <= lane.max_cycles;
        match kind {
            BlockKind::Pure => {
                if !members.iter().all(|&l| fits(&self.lanes[l])) {
                    return false;
                }
                sc.ensure(members.len());
                exec_pure_convoy(self.prog, bidx, members, &mut self.regs, &mut sc.nexts);
                for &l in members {
                    account_pure(&mut self.lanes[l], &self.prog.blocks[bidx]);
                }
                true
            }
            BlockKind::Mem => {
                if !members.iter().all(|&l| {
                    let lane = &self.lanes[l];
                    fits(lane) && lane.profile.segment_cycles > 0
                }) {
                    return false;
                }
                sc.ensure(members.len());
                // Memory blocks run lane-outer: op-outer interleaving would
                // touch every lane's memory per op and thrash the cache,
                // while lane-outer keeps each lane's working set hot for
                // the whole block.
                let block = &self.prog.blocks[bidx];
                for (mi, &l) in members.iter().enumerate() {
                    let out = exec_mem(self.prog, block, &mut self.lanes[l], &mut self.regs[l]);
                    match out {
                        StepOut::Next(p) => sc.nexts[mi] = p,
                        StepOut::Err(e) => sc.faults[mi] = Some(e),
                        StepOut::Halt(_) => debug_assert!(false, "halt in memory block"),
                    }
                }
                true
            }
            BlockKind::Ecall => false,
        }
    }

    /// Execute block `bidx` (entered at its head) for every member lane,
    /// filling `sc.outs` in member order. Pure blocks with more than one
    /// in-budget lane run op-outer/lane-inner over the shared register
    /// slab; everything else runs per-lane.
    fn exec_block_members(&mut self, bidx: usize, members: &[usize], sc: &mut Scratch) {
        let (kind, k) = {
            let b = &self.prog.blocks[bidx];
            (b.kind, b.len() as u64)
        };
        sc.outs.clear();
        sc.fits.clear();
        sc.fits.extend(
            members
                .iter()
                .map(|&l| self.lanes[l].user_cycles.saturating_add(k) <= self.lanes[l].max_cycles),
        );
        let nfast = sc.fits.iter().filter(|&&f| f).count();
        if kind == BlockKind::Pure && nfast > 1 {
            sc.fast.clear();
            sc.fast.extend(
                members
                    .iter()
                    .zip(&sc.fits)
                    .filter(|&(_, &f)| f)
                    .map(|(&l, _)| l),
            );
            sc.nexts.clear();
            sc.nexts.resize(sc.fast.len(), 0);
            exec_pure_convoy(self.prog, bidx, &sc.fast, &mut self.regs, &mut sc.nexts);
            let mut fi = 0;
            for (mi, &l) in members.iter().enumerate() {
                if sc.fits[mi] {
                    account_pure(&mut self.lanes[l], &self.prog.blocks[bidx]);
                    sc.outs.push((l, StepOut::Next(sc.nexts[fi])));
                    fi += 1;
                } else {
                    let out = self.exec_lane_block(l, bidx);
                    sc.outs.push((l, out));
                }
            }
        } else {
            for &l in members {
                let out = self.exec_lane_block(l, bidx);
                sc.outs.push((l, out));
            }
        }
    }

    fn finalize_halt(&mut self, l: usize, code: i32) {
        let report = finish(&mut self.lanes[l], &self.regs[l], true, code, self.start);
        self.results[l] = Some(Ok(report));
    }
}

/// Op-outer/lane-inner execution of one pure block for the in-budget
/// lanes of a convoy: each op is fetched and matched once and applied to
/// every lane's register window before moving on. `nexts[j]` receives the
/// successor pc of `fast[j]`.
fn exec_pure_convoy(
    prog: &DecodedProgram,
    bidx: usize,
    fast: &[usize],
    regs: &mut [[u32; NREGS]],
    nexts: &mut [usize],
) {
    let block = &prog.blocks[bidx];
    let end = block.end as usize;
    for nx in nexts.iter_mut() {
        *nx = end;
    }
    for op in &prog.ops[block.start as usize..end] {
        match *op {
            Op::Lui { rd, imm } => {
                for &l in fast {
                    regs[l][rd as usize] = imm as u32;
                }
            }
            Op::Alu { op, rd, rs1, rs2 } => {
                for &l in fast {
                    let r = &mut regs[l];
                    r[rd as usize] = alu(op, r[rs1 as usize], r[rs2 as usize]);
                }
            }
            Op::AluImm { op, rd, rs1, imm } => {
                for &l in fast {
                    let r = &mut regs[l];
                    r[rd as usize] = alu_imm(op, r[rs1 as usize], imm);
                }
            }
            Op::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                for (j, &l) in fast.iter().enumerate() {
                    let r = &regs[l];
                    if cond.eval(r[rs1 as usize], r[rs2 as usize]) {
                        nexts[j] = target as usize;
                    }
                }
            }
            Op::Jal { rd, link, target } => {
                for (j, &l) in fast.iter().enumerate() {
                    regs[l][rd as usize] = link;
                    nexts[j] = target as usize;
                }
            }
            Op::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                for (j, &l) in fast.iter().enumerate() {
                    let r = &mut regs[l];
                    let t = r[rs1 as usize].wrapping_add(offset as u32) / 4;
                    r[rd as usize] = link;
                    nexts[j] = t as usize;
                }
            }
            Op::Load { .. } | Op::Store { .. } | Op::Ecall => {
                debug_assert!(false, "impure op in pure block");
            }
        }
    }
}

/// Run a trace for a whole convoy: lanes whose observed successor matches
/// the trained direction stay; divergers deopt (counted per lane) and are
/// regrouped by actual pc onto the dispatch queue.
/// Returns `Some(pc)` when the **entire** (unchanged) membership left the
/// trace converged at one pc — the caller keeps the convoy running inline.
/// Returns `None` when lanes were dispersed (finalized, errored, or
/// regrouped onto the dispatch queue).
fn run_trace_members(
    co: &mut Cohort<'_>,
    trace: &Trace,
    members: &mut Vec<usize>,
    queue: &mut Vec<(usize, Vec<usize>)>,
    sc: &mut Scratch,
) -> Option<usize> {
    let len = trace.steps.len();
    let mut i = 0;
    while i < len && !members.is_empty() {
        let TraceStep { block, expected } = trace.steps[i];
        i += 1;
        let last = i == len;
        if co.try_exec_tight(block as usize, members, sc) {
            if sc.faults.iter().all(Option::is_none) {
                let p0 = sc.nexts[0];
                if sc.nexts.iter().all(|&p| p == p0) {
                    if !last && p0 as u32 == expected {
                        continue; // whole convoy stays on the trace
                    }
                    if !last {
                        for &l in members.iter() {
                            co.lanes[l].stats.trace_exits += 1;
                        }
                    }
                    return Some(p0); // converged exit (planned or joint deopt)
                }
            }
            sc.stay.clear();
            sc.movers.clear();
            for (mi, &l) in members.iter().enumerate() {
                match sc.faults[mi].take() {
                    Some(e) => co.results[l] = Some(Err(e)),
                    None => {
                        let p = sc.nexts[mi];
                        if !last && p as u32 == expected {
                            sc.stay.push(l);
                        } else {
                            if !last {
                                co.lanes[l].stats.trace_exits += 1;
                            }
                            sc.movers.push((l, p));
                        }
                    }
                }
            }
        } else {
            co.exec_block_members(block as usize, members, sc);
            sc.stay.clear();
            sc.movers.clear();
            for (l, out) in sc.outs.drain(..) {
                match out {
                    StepOut::Next(p) => {
                        if !last && p as u32 == expected {
                            sc.stay.push(l);
                        } else {
                            if !last {
                                co.lanes[l].stats.trace_exits += 1;
                            }
                            sc.movers.push((l, p));
                        }
                    }
                    StepOut::Halt(code) => co.finalize_halt(l, code),
                    StepOut::Err(e) => co.results[l] = Some(Err(e)),
                }
            }
        }
        if sc.movers.is_empty() && sc.stay.len() == members.len() {
            continue; // everyone stayed; membership unchanged
        }
        if sc.stay.is_empty() && sc.movers.len() == members.len() {
            let p0 = sc.movers[0].1;
            if sc.movers.iter().all(|&(_, p)| p == p0) {
                sc.movers.clear();
                return Some(p0); // converged exit (deopts already counted)
            }
        }
        // Keep the stayers in `members` (reusing its storage) and recycle
        // the previous round's buffer as grouping spare.
        mem::swap(members, &mut sc.stay);
        enqueue_by_pc(queue, &mut sc.movers, &mut sc.stay);
    }
    None
}

/// Group `(lane, pc)` movers by pc (first-seen order, lanes in arrival
/// order) and push each group as a dispatch-queue entry. `spare` donates
/// its storage when every mover shares one pc — the common converged case
/// — making the hot path allocation-free.
fn enqueue_by_pc(
    queue: &mut Vec<(usize, Vec<usize>)>,
    movers: &mut Vec<(usize, usize)>,
    spare: &mut Vec<usize>,
) {
    let Some(&(_, p0)) = movers.first() else {
        return;
    };
    if movers.iter().all(|&(_, p)| p == p0) {
        spare.clear();
        spare.extend(movers.iter().map(|&(l, _)| l));
        queue.push((p0, mem::take(spare)));
        movers.clear();
        return;
    }
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &(l, p) in movers.iter() {
        match groups.iter_mut().find(|(gp, _)| *gp == p) {
            Some((_, v)) => v.push(l),
            None => groups.push((p, vec![l])),
        }
    }
    movers.clear();
    queue.extend(groups);
}

/// Run a decoded program under `kind` with `inputs` — the hot entry point
/// for cached (batched-suite) execution.
///
/// # Errors
/// Propagates [`ExecError`].
pub fn run_decoded(
    prog: &DecodedProgram,
    kind: VmKind,
    inputs: &[i32],
) -> Result<ExecutionReport, ExecError> {
    let profile = VmProfile::for_kind(kind);
    let config = ExecConfig {
        inputs: inputs.to_vec(),
        ..ExecConfig::default()
    };
    Engine::new(prog, profile, config).run()
}

/// Decode-and-run convenience for one-shot executions of a [`Program`].
///
/// # Errors
/// Propagates [`ExecError`].
pub fn run_program(
    program: &Program,
    kind: VmKind,
    inputs: &[i32],
) -> Result<ExecutionReport, ExecError> {
    run_decoded(&DecodedProgram::decode(program), kind, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use zkvmopt_passes::{OptLevel, PassConfig, PassManager};
    use zkvmopt_riscv::TargetCostModel;

    fn build(src: &str, level: Option<OptLevel>) -> Program {
        let mut m = zkvmopt_lang::compile_guest(src).expect("compiles");
        if let Some(l) = level {
            PassManager::for_level(l).run(&mut m, &PassConfig::default());
        }
        zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).expect("codegen")
    }

    /// Every observable and every cost metric must match the reference step
    /// interpreter exactly (wall time and advisory engine stats excluded).
    fn assert_identical(src: &str, inputs: &[i32], level: Option<OptLevel>) {
        let p = build(src, level);
        for kind in VmKind::BOTH {
            let config = ExecConfig {
                inputs: inputs.to_vec(),
                ..ExecConfig::default()
            };
            let old = Machine::new(&p, VmProfile::for_kind(kind), config.clone())
                .run()
                .expect("reference runs");
            let d = DecodedProgram::decode(&p);
            let new = Engine::new(&d, VmProfile::for_kind(kind), config.clone())
                .run()
                .expect("engine runs");
            assert_eq!(new.instret, old.instret, "instret ({kind})");
            assert_eq!(new.user_cycles, old.user_cycles, "user_cycles ({kind})");
            assert_eq!(new.paging_cycles, old.paging_cycles, "paging ({kind})");
            assert_eq!(new.total_cycles, old.total_cycles, "total ({kind})");
            assert_eq!(new.page_ins, old.page_ins, "page_ins ({kind})");
            assert_eq!(new.page_outs, old.page_outs, "page_outs ({kind})");
            assert_eq!(new.segments, old.segments, "segments ({kind})");
            assert_eq!(new.exit_code, old.exit_code, "exit ({kind})");
            assert_eq!(new.halted, old.halted, "halted ({kind})");
            assert_eq!(new.journal, old.journal, "journal ({kind})");
            assert_eq!(new.mix, old.mix, "mix ({kind})");

            // Lockstep must agree with the solo engine on every
            // architectural observable, lane by lane.
            let jobs = vec![(VmProfile::for_kind(kind), config.clone()); 3];
            for r in Engine::run_lockstep(&d, &jobs) {
                let lr = r.expect("lockstep lane runs");
                assert_eq!(lr.user_cycles, new.user_cycles, "lockstep cycles ({kind})");
                assert_eq!(lr.segments, new.segments, "lockstep segments ({kind})");
                assert_eq!(
                    lr.paging_cycles, new.paging_cycles,
                    "lockstep paging ({kind})"
                );
                assert_eq!(lr.journal, new.journal, "lockstep journal ({kind})");
                assert_eq!(lr.exit_code, new.exit_code, "lockstep exit ({kind})");
            }
        }
    }

    #[test]
    fn matches_reference_on_arithmetic_loops() {
        assert_identical(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 1; i <= 200; i += 1) { s += i * i - s / 7; }
               commit(s);
               return s;
             }",
            &[],
            None,
        );
    }

    #[test]
    fn matches_reference_on_memory_and_paging() {
        assert_identical(
            "static A: [i32; 16384];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 16384; i += 64) { A[i] = i * 3; }
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 16384; i += 64) { s += A[i]; }
               commit(s);
               return s;
             }",
            &[],
            Some(OptLevel::O2),
        );
    }

    #[test]
    fn matches_reference_on_calls_and_recursion() {
        assert_identical(
            "fn fib(n: i32) -> i32 {
               if (n < 2) { return n; }
               return fib(n - 1) + fib(n - 2);
             }
             fn main() -> i32 { commit(fib(15)); return fib(11); }",
            &[],
            Some(OptLevel::O3),
        );
    }

    #[test]
    fn matches_reference_on_segment_splits() {
        // A long loop over one page: segment flushes re-page the resident
        // set (and invalidate the residency pre-probe), the accounting the
        // batched paths replay arithmetically.
        assert_identical(
            "static A: [i32; 4];
             fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 400000; i += 1) { A[0] = i; s += A[0]; }
               return s;
             }",
            &[],
            Some(OptLevel::O1),
        );
    }

    #[test]
    fn matches_reference_on_precompiles_and_halt() {
        assert_identical(
            "static MSG: [i8; 3] = \"abc\";
             static OUT: [i8; 32];
             fn main() -> i32 {
               sha256(MSG, 3, OUT);
               commit(OUT[0] as i32);
               halt(OUT[1] as i32);
               return -1;
             }",
            &[],
            None,
        );
    }

    #[test]
    fn matches_reference_on_inputs_and_division_edges() {
        assert_identical(
            "fn main() -> i32 {
               let a: i32 = read_input(0);
               let b: i32 = read_input(1);
               commit(a / b); commit(a % b);
               commit((-2147483647 - 1) / -1); commit((-2147483647 - 1) % -1);
               return a / 8;
             }",
            &[-7, 0],
            None,
        );
    }

    #[test]
    fn cycle_limit_matches_reference() {
        let p = build(
            "fn main() -> i32 { let mut i: i32 = 0; while (true) { i += 1; } return i; }",
            None,
        );
        let cfg = ExecConfig {
            max_cycles: 10_000,
            ..ExecConfig::default()
        };
        let d = DecodedProgram::decode(&p);
        let r = Engine::new(&d, VmProfile::risc_zero(), cfg).run();
        assert_eq!(r.unwrap_err(), ExecError::CycleLimit);
    }

    #[test]
    fn run_decoded_reuses_one_decode_across_vm_kinds() {
        let p = build("fn main() -> i32 { return 6 * 7; }", None);
        let d = DecodedProgram::decode(&p);
        let r0 = run_decoded(&d, VmKind::RiscZero, &[]).unwrap();
        let sp1 = run_decoded(&d, VmKind::Sp1, &[]).unwrap();
        assert_eq!(r0.exit_code, 42);
        assert_eq!(sp1.exit_code, 42);
        assert_eq!(r0.instret, sp1.instret);
    }

    #[test]
    fn hot_loops_form_traces_and_memory_probes_hit() {
        let p = build(
            "static A: [i32; 256];
             fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 256; i += 1) { A[i] = i; }
               for (let mut j: i32 = 0; j < 2000; j += 1) { s += A[j % 256]; }
               commit(s);
               return s;
             }",
            Some(OptLevel::O2),
        );
        let d = DecodedProgram::decode(&p);
        let r = run_decoded(&d, VmKind::RiscZero, &[]).expect("runs");
        assert!(r.stats.traces_formed >= 1, "hot loop should form a trace");
        assert!(
            r.stats.probe_hits > r.stats.probe_misses,
            "a loop over one array should mostly hit the residency probe \
             (hits {}, misses {})",
            r.stats.probe_hits,
            r.stats.probe_misses
        );
    }

    #[test]
    fn lockstep_mixes_vm_kinds_and_budgets() {
        let p = build(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 5000; i += 1) { s += i; }
               commit(s);
               return s;
             }",
            None,
        );
        let d = DecodedProgram::decode(&p);
        let jobs: Vec<(VmProfile, ExecConfig)> = vec![
            (VmProfile::risc_zero(), ExecConfig::default()),
            (VmProfile::sp1(), ExecConfig::default()),
            (
                VmProfile::risc_zero(),
                ExecConfig {
                    max_cycles: 100,
                    ..ExecConfig::default()
                },
            ),
        ];
        let results = Engine::run_lockstep(&d, &jobs);
        assert_eq!(results.len(), 3);
        for (job, r) in jobs.iter().zip(&results) {
            let solo = Engine::new(&d, job.0.clone(), job.1.clone()).run();
            match (r, &solo) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.user_cycles, b.user_cycles);
                    assert_eq!(a.total_cycles, b.total_cycles);
                    assert_eq!(a.journal, b.journal);
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("lockstep/solo outcome class diverged"),
            }
        }
        assert!(matches!(results[2], Err(ExecError::CycleLimit)));
    }
}
