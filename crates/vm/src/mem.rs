//! Paged guest memory with RISC Zero–style page-in/page-out accounting.

use std::collections::HashMap;

/// Total guest memory size (shared with the IR interpreter's map).
pub const MEM_SIZE: u32 = zkvmopt_ir::interp::MEM_SIZE;
/// Initial stack pointer.
pub const STACK_TOP: u32 = zkvmopt_ir::interp::STACK_TOP;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u32,
}

/// Byte-addressed paged memory.
///
/// Data lives in fixed-size pages allocated on first touch. Within a
/// *segment*, the first access to a page counts one page-in and the first
/// write counts one (deferred) page-out; a segment flush resets the resident
/// set, so the next segment pays again — exactly the continuations cost model
/// the paper attributes licm's regressions to.
#[derive(Debug)]
pub struct PagedMemory {
    page_size: u32,
    pages: HashMap<u32, Vec<u8>>,
    resident: HashMap<u32, bool>, // page -> dirty?
    page_ins: u64,
    page_outs: u64,
}

impl PagedMemory {
    /// Fresh zeroed memory.
    pub fn new(page_size: u32) -> PagedMemory {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PagedMemory {
            page_size,
            pages: HashMap::new(),
            resident: HashMap::new(),
            page_ins: 0,
            page_outs: 0,
        }
    }

    fn page_of(&self, addr: u32) -> u32 {
        addr / self.page_size
    }

    /// Touch `page` for reading/writing; returns (new page-ins, new
    /// page-outs) charged by this touch.
    fn touch(&mut self, page: u32, write: bool) -> (u64, u64) {
        let mut ins = 0;
        let mut outs = 0;
        match self.resident.get_mut(&page) {
            None => {
                ins = 1;
                if write {
                    outs = 1;
                }
                self.resident.insert(page, write);
            }
            Some(dirty) => {
                if write && !*dirty {
                    *dirty = true;
                    outs = 1;
                }
            }
        }
        self.page_ins += ins;
        self.page_outs += outs;
        (ins, outs)
    }

    fn page_data(&mut self, page: u32) -> &mut Vec<u8> {
        let size = self.page_size as usize;
        self.pages.entry(page).or_insert_with(|| vec![0; size])
    }

    /// End the current segment: the resident set is dropped, so the next
    /// segment re-pages everything it touches.
    pub fn flush_segment(&mut self) {
        self.resident.clear();
    }

    /// Cumulative page-ins.
    pub fn page_ins(&self) -> u64 {
        self.page_ins
    }

    /// Cumulative page-outs.
    pub fn page_outs(&self) -> u64 {
        self.page_outs
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    fn check(&self, addr: u32, size: u32) -> Result<(), MemFault> {
        if addr < 0x100 || addr.checked_add(size).is_none_or(|e| e > MEM_SIZE) {
            return Err(MemFault { addr });
        }
        Ok(())
    }

    /// Read `size` (1, 2, or 4) bytes, little-endian, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn read(&mut self, addr: u32, size: u32) -> Result<u32, MemFault> {
        self.check(addr, size)?;
        let mut out: u32 = 0;
        for i in 0..size {
            let a = addr + i;
            let page = self.page_of(a);
            self.touch(page, false);
            let off = (a % self.page_size) as usize;
            let b = self.page_data(page)[off];
            out |= (b as u32) << (8 * i);
        }
        Ok(out)
    }

    /// Write `size` (1, 2, or 4) low bytes of `value`, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn write(&mut self, addr: u32, value: u32, size: u32) -> Result<(), MemFault> {
        self.check(addr, size)?;
        for i in 0..size {
            let a = addr + i;
            let page = self.page_of(a);
            self.touch(page, true);
            let off = (a % self.page_size) as usize;
            self.page_data(page)[off] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Bulk read without affecting paging counters (host/precompile access
    /// is charged separately as precompile cycles).
    pub fn read_bytes_host(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        self.check(addr, len.max(1))?;
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr + i;
            let page = self.page_of(a);
            let off = (a % self.page_size) as usize;
            out.push(self.page_data(page)[off]);
        }
        Ok(out)
    }

    /// Bulk write without affecting paging counters.
    pub fn write_bytes_host(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u32)?;
        for (i, b) in data.iter().enumerate() {
            let a = addr + i as u32;
            let page = self.page_of(a);
            let off = (a % self.page_size) as usize;
            self.page_data(page)[off] = *b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PagedMemory::new(1024);
        m.write(0x20000, 0xdead_beef, 4).unwrap();
        assert_eq!(m.read(0x20000, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read(0x20001, 1).unwrap(), 0xbe);
    }

    #[test]
    fn paging_counts_first_touch_per_segment() {
        let mut m = PagedMemory::new(1024);
        m.read(0x20000, 4).unwrap();
        assert_eq!(m.page_ins(), 1);
        assert_eq!(m.page_outs(), 0);
        m.read(0x20004, 4).unwrap(); // same page: no new page-in
        assert_eq!(m.page_ins(), 1);
        m.write(0x20008, 1, 4).unwrap(); // first write: page-out recorded
        assert_eq!(m.page_outs(), 1);
        m.write(0x2000c, 2, 4).unwrap();
        assert_eq!(m.page_outs(), 1);
        // New segment repeats the charges.
        m.flush_segment();
        m.read(0x20000, 4).unwrap();
        assert_eq!(m.page_ins(), 2);
    }

    #[test]
    fn cross_page_access_touches_both() {
        let mut m = PagedMemory::new(1024);
        m.read(1024 * 33 - 2, 4).unwrap();
        assert_eq!(m.page_ins(), 2);
    }

    #[test]
    fn faults_on_null_and_oob() {
        let mut m = PagedMemory::new(1024);
        assert!(m.read(0x10, 4).is_err());
        assert!(m.write(MEM_SIZE - 2, 0, 4).is_err());
        assert!(m.read(u32::MAX - 1, 4).is_err());
    }

    #[test]
    fn memory_is_zero_initialized() {
        let mut m = PagedMemory::new(1024);
        assert_eq!(m.read(0x50000, 4).unwrap(), 0);
    }
}
