//! Paged guest memory with RISC Zero–style page-in/page-out accounting.
//!
//! Two implementations share the same observable counting semantics:
//!
//! - [`PagedMemory`] — the original hash-map-of-pages store, kept as the
//!   independent oracle behind the reference step interpreter. Its byte-wise
//!   touch loop is deliberately untouched so the differential tests compare
//!   two genuinely distinct implementations.
//! - [`FastMemory`] — the block-dispatch engine's store: one flat
//!   zero-initialized buffer plus a direct-indexed residency table, with a
//!   single page touch per access side (first and last byte) instead of one
//!   per byte. Page-in/page-out counts are bit-identical to [`PagedMemory`]
//!   because a multi-byte access can only ever touch the pages of its first
//!   and last byte.

use std::collections::HashMap;

/// Total guest memory size (shared with the IR interpreter's map).
pub const MEM_SIZE: u32 = zkvmopt_ir::interp::MEM_SIZE;
/// Initial stack pointer.
pub const STACK_TOP: u32 = zkvmopt_ir::interp::STACK_TOP;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: u32,
}

/// Byte-addressed paged memory.
///
/// Data lives in fixed-size pages allocated on first touch. Within a
/// *segment*, the first access to a page counts one page-in and the first
/// write counts one (deferred) page-out; a segment flush resets the resident
/// set, so the next segment pays again — exactly the continuations cost model
/// the paper attributes licm's regressions to.
#[derive(Debug)]
pub struct PagedMemory {
    page_size: u32,
    pages: HashMap<u32, Vec<u8>>,
    resident: HashMap<u32, bool>, // page -> dirty?
    page_ins: u64,
    page_outs: u64,
}

impl PagedMemory {
    /// Fresh zeroed memory.
    pub fn new(page_size: u32) -> PagedMemory {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PagedMemory {
            page_size,
            pages: HashMap::new(),
            resident: HashMap::new(),
            page_ins: 0,
            page_outs: 0,
        }
    }

    fn page_of(&self, addr: u32) -> u32 {
        addr / self.page_size
    }

    /// Touch `page` for reading/writing; returns (new page-ins, new
    /// page-outs) charged by this touch.
    fn touch(&mut self, page: u32, write: bool) -> (u64, u64) {
        let mut ins = 0;
        let mut outs = 0;
        match self.resident.get_mut(&page) {
            None => {
                ins = 1;
                if write {
                    outs = 1;
                }
                self.resident.insert(page, write);
            }
            Some(dirty) => {
                if write && !*dirty {
                    *dirty = true;
                    outs = 1;
                }
            }
        }
        self.page_ins += ins;
        self.page_outs += outs;
        (ins, outs)
    }

    fn page_data(&mut self, page: u32) -> &mut Vec<u8> {
        let size = self.page_size as usize;
        self.pages.entry(page).or_insert_with(|| vec![0; size])
    }

    /// End the current segment: the resident set is dropped, so the next
    /// segment re-pages everything it touches.
    pub fn flush_segment(&mut self) {
        self.resident.clear();
    }

    /// Cumulative page-ins.
    pub fn page_ins(&self) -> u64 {
        self.page_ins
    }

    /// Cumulative page-outs.
    pub fn page_outs(&self) -> u64 {
        self.page_outs
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    fn check(&self, addr: u32, size: u32) -> Result<(), MemFault> {
        if addr < 0x100 || addr.checked_add(size).is_none_or(|e| e > MEM_SIZE) {
            return Err(MemFault { addr });
        }
        Ok(())
    }

    /// Read `size` (1, 2, or 4) bytes, little-endian, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn read(&mut self, addr: u32, size: u32) -> Result<u32, MemFault> {
        self.check(addr, size)?;
        let mut out: u32 = 0;
        for i in 0..size {
            let a = addr + i;
            let page = self.page_of(a);
            self.touch(page, false);
            let off = (a % self.page_size) as usize;
            let b = self.page_data(page)[off];
            out |= (b as u32) << (8 * i);
        }
        Ok(out)
    }

    /// Write `size` (1, 2, or 4) low bytes of `value`, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn write(&mut self, addr: u32, value: u32, size: u32) -> Result<(), MemFault> {
        self.check(addr, size)?;
        for i in 0..size {
            let a = addr + i;
            let page = self.page_of(a);
            self.touch(page, true);
            let off = (a % self.page_size) as usize;
            self.page_data(page)[off] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Bulk read without affecting paging counters (host/precompile access
    /// is charged separately as precompile cycles).
    pub fn read_bytes_host(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        self.check(addr, len.max(1))?;
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let a = addr + i;
            let page = self.page_of(a);
            let off = (a % self.page_size) as usize;
            out.push(self.page_data(page)[off]);
        }
        Ok(out)
    }

    /// Bulk write without affecting paging counters.
    pub fn write_bytes_host(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u32)?;
        for (i, b) in data.iter().enumerate() {
            let a = addr + i as u32;
            let page = self.page_of(a);
            let off = (a % self.page_size) as usize;
            self.page_data(page)[off] = *b;
        }
        Ok(())
    }
}

/// Residency states for [`FastMemory`]'s per-page table.
const ABSENT: u8 = 0;
const CLEAN: u8 = 1;
const DIRTY: u8 = 2;

/// Direct-indexed guest memory with the same page-in/page-out accounting as
/// [`PagedMemory`], engineered for the block-dispatch engine's hot path:
/// loads and stores are a bounds check, at most two direct-indexed residency
/// touches, and a little-endian slice access within one lazily-allocated
/// page — no hashing, no per-byte touch loop, and (crucially for the
/// batched suite runner, which spins up one memory per execution) no O(guest
/// address space) zeroing at construction.
#[derive(Debug)]
pub struct FastMemory {
    page_size: u32,
    page_shift: u32,
    /// Data pages, allocated zeroed on first write (reads of untouched
    /// pages return zero without allocating).
    pages: Vec<Option<Box<[u8]>>>,
    resident: Vec<u8>,
    page_ins: u64,
    page_outs: u64,
}

impl FastMemory {
    /// Fresh zeroed memory covering the full guest address space.
    pub fn new(page_size: u32) -> FastMemory {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        // The first-byte/last-byte touch scheme matches PagedMemory's
        // per-byte loop only while no access (≤ 4 bytes) can span 3 pages.
        assert!(page_size >= 4, "page size must cover one word");
        let npages = (MEM_SIZE / page_size) as usize;
        FastMemory {
            page_size,
            page_shift: page_size.trailing_zeros(),
            pages: (0..npages).map(|_| None).collect(),
            resident: vec![ABSENT; npages],
            page_ins: 0,
            page_outs: 0,
        }
    }

    #[inline]
    fn page_mut(&mut self, page: usize) -> &mut [u8] {
        let size = self.page_size as usize;
        self.pages[page].get_or_insert_with(|| vec![0; size].into_boxed_slice())
    }

    #[inline]
    fn touch(&mut self, page: usize, write: bool) {
        let state = self.resident[page];
        if state == ABSENT {
            self.page_ins += 1;
            if write {
                self.page_outs += 1;
                self.resident[page] = DIRTY;
            } else {
                self.resident[page] = CLEAN;
            }
        } else if write && state == CLEAN {
            self.page_outs += 1;
            self.resident[page] = DIRTY;
        }
    }

    #[inline]
    fn check(&self, addr: u32, size: u32) -> Result<(), MemFault> {
        if addr < 0x100 || addr.checked_add(size).is_none_or(|e| e > MEM_SIZE) {
            return Err(MemFault { addr });
        }
        Ok(())
    }

    /// End the current segment: the resident set is dropped, so the next
    /// segment re-pages everything it touches.
    pub fn flush_segment(&mut self) {
        self.resident.fill(ABSENT);
    }

    /// Cumulative page-ins.
    #[inline]
    pub fn page_ins(&self) -> u64 {
        self.page_ins
    }

    /// Cumulative page-outs.
    #[inline]
    pub fn page_outs(&self) -> u64 {
        self.page_outs
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.iter().filter(|&&s| s != ABSENT).count()
    }

    /// Read `size` (1, 2, or 4) bytes, little-endian, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    #[inline]
    pub fn read(&mut self, addr: u32, size: u32) -> Result<u32, MemFault> {
        self.check(addr, size)?;
        let first = (addr >> self.page_shift) as usize;
        let last = ((addr + size - 1) >> self.page_shift) as usize;
        self.touch(first, false);
        if last == first {
            let off = (addr & (self.page_size - 1)) as usize;
            let Some(page) = &self.pages[first] else {
                return Ok(0); // untouched page reads as zero, no allocation
            };
            Ok(match size {
                4 => u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]]),
                2 => u16::from_le_bytes([page[off], page[off + 1]]) as u32,
                _ => page[off] as u32,
            })
        } else {
            self.touch(last, false);
            let mut out: u32 = 0;
            for i in 0..size {
                let a = addr + i;
                let p = (a >> self.page_shift) as usize;
                let off = (a & (self.page_size - 1)) as usize;
                let b = self.pages[p].as_ref().map_or(0, |pg| pg[off]);
                out |= (b as u32) << (8 * i);
            }
            Ok(out)
        }
    }

    /// Write `size` (1, 2, or 4) low bytes of `value`, charging paging.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    #[inline]
    pub fn write(&mut self, addr: u32, value: u32, size: u32) -> Result<(), MemFault> {
        self.check(addr, size)?;
        let first = (addr >> self.page_shift) as usize;
        let last = ((addr + size - 1) >> self.page_shift) as usize;
        self.touch(first, true);
        if last == first {
            let off = (addr & (self.page_size - 1)) as usize;
            let page = self.page_mut(first);
            match size {
                4 => page[off..off + 4].copy_from_slice(&value.to_le_bytes()),
                2 => page[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
                _ => page[off] = value as u8,
            }
        } else {
            self.touch(last, true);
            for i in 0..size {
                let a = addr + i;
                let p = (a >> self.page_shift) as usize;
                let off = (a & (self.page_size - 1)) as usize;
                self.page_mut(p)[off] = (value >> (8 * i)) as u8;
            }
        }
        Ok(())
    }

    /// [`FastMemory::read`] variant returning the paging charge alongside
    /// the value: `(value, page-ins charged, page-outs charged)`. The
    /// engine's batched memory path uses this to charge segment cycles
    /// per-access without re-reading the cumulative counters.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    #[inline]
    pub fn read_charged(&mut self, addr: u32, size: u32) -> Result<(u32, u64, u64), MemFault> {
        let (ins0, outs0) = (self.page_ins, self.page_outs);
        let v = self.read(addr, size)?;
        Ok((v, self.page_ins - ins0, self.page_outs - outs0))
    }

    /// [`FastMemory::write`] variant returning the paging charge:
    /// `(page-ins charged, page-outs charged)`.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    #[inline]
    pub fn write_charged(
        &mut self,
        addr: u32,
        value: u32,
        size: u32,
    ) -> Result<(u64, u64), MemFault> {
        let (ins0, outs0) = (self.page_ins, self.page_outs);
        self.write(addr, value, size)?;
        Ok((self.page_ins - ins0, self.page_outs - outs0))
    }

    /// Whether `page` is resident-dirty in the current segment (its
    /// page-out is already charged, so further writes to it are free).
    #[inline]
    pub fn page_dirty(&self, page: u32) -> bool {
        self.resident[page as usize] == DIRTY
    }

    /// Read within one page without touching residency or paging counters.
    ///
    /// Callers must guarantee `page` is a valid in-range page the current
    /// segment already counted resident, and that `off + size` stays inside
    /// it — the engine's residency pre-probe establishes both before taking
    /// this path. Reads of never-allocated pages return zero.
    #[inline]
    pub fn peek_in_page(&self, page: u32, off: u32, size: u32) -> u32 {
        let off = off as usize;
        match &self.pages[page as usize] {
            None => 0,
            Some(pg) => match size {
                4 => u32::from_le_bytes([pg[off], pg[off + 1], pg[off + 2], pg[off + 3]]),
                2 => u16::from_le_bytes([pg[off], pg[off + 1]]) as u32,
                _ => pg[off] as u32,
            },
        }
    }

    /// Write within one page without touching residency or paging counters.
    ///
    /// Same contract as [`FastMemory::peek_in_page`], plus the page must
    /// already be resident-dirty (the probe only serves writes from dirty
    /// pages, whose page-out is already charged).
    #[inline]
    pub fn poke_in_page(&mut self, page: u32, off: u32, value: u32, size: u32) {
        let off = off as usize;
        let pg = self.page_mut(page as usize);
        match size {
            4 => pg[off..off + 4].copy_from_slice(&value.to_le_bytes()),
            2 => pg[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            _ => pg[off] = value as u8,
        }
    }

    /// Bulk read without affecting paging counters (host/precompile access
    /// is charged separately as precompile cycles).
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn read_bytes_host(&mut self, addr: u32, len: u32) -> Result<Vec<u8>, MemFault> {
        self.check(addr, len.max(1))?;
        let mut out = Vec::with_capacity(len as usize);
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let p = (a >> self.page_shift) as usize;
            let off = (a & (self.page_size - 1)) as usize;
            let n = ((self.page_size as usize - off) as u32).min(end - a) as usize;
            match &self.pages[p] {
                Some(pg) => out.extend_from_slice(&pg[off..off + n]),
                None => out.resize(out.len() + n, 0),
            }
            a += n as u32;
        }
        Ok(out)
    }

    /// Bulk write without affecting paging counters.
    ///
    /// # Errors
    /// Faults on null-guard or out-of-range accesses.
    pub fn write_bytes_host(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u32)?;
        let mut a = addr;
        let mut rest = data;
        while !rest.is_empty() {
            let p = (a >> self.page_shift) as usize;
            let off = (a & (self.page_size - 1)) as usize;
            let n = (self.page_size as usize - off).min(rest.len());
            self.page_mut(p)[off..off + n].copy_from_slice(&rest[..n]);
            a += n as u32;
            rest = &rest[n..];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PagedMemory::new(1024);
        m.write(0x20000, 0xdead_beef, 4).unwrap();
        assert_eq!(m.read(0x20000, 4).unwrap(), 0xdead_beef);
        assert_eq!(m.read(0x20001, 1).unwrap(), 0xbe);
    }

    #[test]
    fn paging_counts_first_touch_per_segment() {
        let mut m = PagedMemory::new(1024);
        m.read(0x20000, 4).unwrap();
        assert_eq!(m.page_ins(), 1);
        assert_eq!(m.page_outs(), 0);
        m.read(0x20004, 4).unwrap(); // same page: no new page-in
        assert_eq!(m.page_ins(), 1);
        m.write(0x20008, 1, 4).unwrap(); // first write: page-out recorded
        assert_eq!(m.page_outs(), 1);
        m.write(0x2000c, 2, 4).unwrap();
        assert_eq!(m.page_outs(), 1);
        // New segment repeats the charges.
        m.flush_segment();
        m.read(0x20000, 4).unwrap();
        assert_eq!(m.page_ins(), 2);
    }

    #[test]
    fn cross_page_access_touches_both() {
        let mut m = PagedMemory::new(1024);
        m.read(1024 * 33 - 2, 4).unwrap();
        assert_eq!(m.page_ins(), 2);
    }

    #[test]
    fn faults_on_null_and_oob() {
        let mut m = PagedMemory::new(1024);
        assert!(m.read(0x10, 4).is_err());
        assert!(m.write(MEM_SIZE - 2, 0, 4).is_err());
        assert!(m.read(u32::MAX - 1, 4).is_err());
    }

    #[test]
    fn memory_is_zero_initialized() {
        let mut m = PagedMemory::new(1024);
        assert_eq!(m.read(0x50000, 4).unwrap(), 0);
    }

    /// Replay the same access trace on both implementations and demand
    /// identical values, faults, and paging counters.
    #[test]
    fn fast_memory_matches_paged_memory_on_a_mixed_trace() {
        let mut slow = PagedMemory::new(1024);
        let mut fast = FastMemory::new(1024);
        // Deterministic pseudo-random trace: reads, writes, sub-word
        // accesses, cross-page accesses, OOB probes, and segment flushes.
        let mut x: u32 = 0x1234_5678;
        for step in 0..20_000u32 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let addr = x % (MEM_SIZE + 512); // occasionally out of range
            let size = [1, 2, 4][(x >> 8) as usize % 3];
            if step % 997 == 0 {
                slow.flush_segment();
                fast.flush_segment();
            }
            if x & 1 == 0 {
                let v = x.rotate_left(7);
                assert_eq!(slow.write(addr, v, size), fast.write(addr, v, size));
            } else {
                assert_eq!(slow.read(addr, size), fast.read(addr, size));
            }
            assert_eq!(slow.page_ins(), fast.page_ins(), "step {step}");
            assert_eq!(slow.page_outs(), fast.page_outs(), "step {step}");
        }
        assert_eq!(slow.resident_pages(), fast.resident_pages());
    }

    #[test]
    fn fast_memory_cross_page_and_host_access() {
        let mut m = FastMemory::new(1024);
        m.read(1024 * 33 - 2, 4).unwrap();
        assert_eq!(m.page_ins(), 2);
        // Host access moves bytes but charges nothing.
        m.write_bytes_host(0x40000, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read_bytes_host(0x40000, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.page_ins(), 2);
        assert_eq!(m.page_outs(), 0);
        assert!(m.read(0x10, 4).is_err());
        assert!(m.write(MEM_SIZE - 2, 0, 4).is_err());
    }
}
