//! # zkvmopt-vm
//!
//! zkVM guest executors with the two studied cost models:
//!
//! - [`VmKind::RiscZero`]: near-uniform instruction cost, 1 KiB pages with
//!   ~1130-cycle page-ins/page-outs, segment continuations whose flushes
//!   re-charge the resident set — the machinery behind the paper's paging
//!   findings (P1).
//! - [`VmKind::Sp1`]: shard-based accounting with small memory surcharges and
//!   no public paging metric (Table 2's "N/A").
//!
//! Execution is a **pre-decoded block-dispatch engine** ([`engine::Engine`]):
//! every RV32IM instruction is decoded once into a dense internal [`op::Op`],
//! ops are grouped into fall-through basic blocks keyed by branch targets,
//! and dispatch runs block-at-a-time through a direct-indexed block cache.
//! Blocks without ecall instructions execute with batched cycle/segment
//! accounting (memory blocks resolve loads/stores through a per-segment
//! residency pre-probe), hot block heads chain into superblock traces keyed
//! by observed branch direction with safe deopt back to dispatch, and
//! [`Engine::run_lockstep`] advances N machine states through one shared
//! decoded program in a structure-of-arrays register layout (the tuner's
//! candidate fan-out). Everything stays bit-identical to the original
//! decode-per-step interpreter (`machine::Machine`), which is kept behind
//! the `reference` cargo feature (and `cfg(test)`) as the differential
//! oracle. The engine reports the paper's cost components: **dynamic
//! instruction count**, **paging cycles**, and **total cycles**, plus the
//! journal used by the workspace's differential tests and advisory
//! [`EngineStats`] counters explaining how each run was executed.
//!
//! ## Example
//!
//! ```
//! use zkvmopt_vm::{run_program, VmKind};
//!
//! let m = zkvmopt_lang::compile(
//!     "fn main() -> i32 { let mut s: i32 = 0;
//!      for (let mut i: i32 = 0; i < 10; i += 1) { s += i; } return s; }").unwrap();
//! let prog = zkvmopt_riscv::compile_module(&m, &zkvmopt_riscv::TargetCostModel::zk()).unwrap();
//! let report = run_program(&prog, VmKind::RiscZero, &[]).unwrap();
//! assert_eq!(report.exit_code, 45);
//! assert!(report.total_cycles >= report.instret);
//! ```

pub mod ecalls;
pub mod engine;
pub mod machine;
pub mod mem;
pub mod op;
pub mod profile;
pub mod segment;

pub use ecalls::CryptoEcalls;
pub use engine::{run_decoded, run_program, Engine};
pub use machine::{alu, alu_imm, ExecConfig, ExecError, ExecutionReport, InstMix};
#[cfg(any(test, feature = "reference"))]
pub use machine::{run_program_reference, Machine};
pub use mem::{FastMemory, PagedMemory};
pub use op::{Block, BlockKind, DecodedProgram, Op};
pub use profile::{EngineStats, VmKind, VmProfile};
pub use segment::SegmentRecord;

#[cfg(test)]
mod tests {
    use super::*;
    use zkvmopt_ir::interp::{Interp, InterpConfig};
    use zkvmopt_passes::{run_pass, OptLevel, PassConfig, PassManager};
    use zkvmopt_riscv::TargetCostModel;

    fn build(src: &str, passes: &[&str]) -> zkvmopt_riscv::Program {
        let mut m = zkvmopt_lang::compile_guest(src).expect("compiles");
        let cfg = PassConfig::default();
        for p in passes {
            run_pass(p, &mut m, &cfg);
        }
        zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).expect("codegen")
    }

    /// Run source through the interpreter (with real precompiles) and the VM
    /// and demand identical guest-visible behaviour.
    fn differential(src: &str, inputs: &[i32], passes: &[&str]) -> ExecutionReport {
        let m = zkvmopt_lang::compile_guest(src).expect("compiles");
        let config = InterpConfig {
            inputs: inputs.to_vec(),
            ..InterpConfig::default()
        };
        let oracle = Interp::new(&m, config, CryptoEcalls)
            .run_main()
            .expect("oracle runs");
        let prog = build(src, passes);
        let report = run_program(&prog, VmKind::RiscZero, inputs).expect("vm runs");
        assert_eq!(report.exit_code as i64, oracle.exit_value, "exit mismatch");
        assert_eq!(report.journal, oracle.journal, "journal mismatch");
        report
    }

    #[test]
    fn arithmetic_and_loops_match_oracle() {
        differential(
            "fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 1; i <= 10; i += 1) { s += i * i; }
               return s;
             }",
            &[],
            &[],
        );
    }

    #[test]
    fn division_semantics_match() {
        differential(
            "fn main() -> i32 {
               let a: i32 = read_input(0);
               let b: i32 = read_input(1);
               commit(a / b); commit(a % b);
               let ua: u32 = a as u32;
               commit((ua / 3) as i32);
               return a / 8;
             }",
            &[-7, 0],
            &[],
        );
    }

    #[test]
    fn calls_recursion_and_journal() {
        differential(
            "fn fib(n: i32) -> i32 {
               if (n < 2) { return n; }
               return fib(n - 1) + fib(n - 2);
             }
             fn main() -> i32 {
               commit(fib(12));
               return fib(10);
             }",
            &[],
            &[],
        );
    }

    #[test]
    fn arrays_and_globals_match() {
        differential(
            "static A: [i32; 32];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 32; i += 1) { A[i] = i * 3; }
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 32; i += 1) { s += A[i]; }
               return s;
             }",
            &[],
            &[],
        );
    }

    #[test]
    fn optimized_pipelines_preserve_behaviour() {
        let src = "
            fn work(x: i32) -> i32 {
              let mut acc: i32 = x;
              for (let mut j: i32 = 0; j < 16; j += 1) { acc = acc * 3 + j; }
              return acc;
            }
            fn main() -> i32 {
              let mut s: i32 = 0;
              for (let mut i: i32 = 0; i < 8; i += 1) { s += work(i); }
              commit(s);
              return s % 1000;
            }";
        let m0 = zkvmopt_lang::compile_guest(src).unwrap();
        let base_prog = zkvmopt_riscv::compile_module(&m0, &TargetCostModel::zk()).unwrap();
        let base = run_program(&base_prog, VmKind::RiscZero, &[]).unwrap();
        for level in OptLevel::ALL {
            let mut m = zkvmopt_lang::compile_guest(src).unwrap();
            PassManager::for_level(level).run(&mut m, &PassConfig::default());
            let prog = zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).unwrap();
            let r = run_program(&prog, VmKind::RiscZero, &[]).unwrap();
            assert_eq!(r.exit_code, base.exit_code, "{level:?} changed exit");
            assert_eq!(r.journal, base.journal, "{level:?} changed journal");
        }
        // -O3 must beat the unoptimized baseline on cycles.
        let mut m3 = zkvmopt_lang::compile_guest(src).unwrap();
        PassManager::o3().run(&mut m3, &PassConfig::default());
        let p3 = zkvmopt_riscv::compile_module(&m3, &TargetCostModel::zk()).unwrap();
        let r3 = run_program(&p3, VmKind::RiscZero, &[]).unwrap();
        assert!(
            r3.total_cycles < base.total_cycles,
            "-O3 {} !< baseline {}",
            r3.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn sha256_precompile_matches_host() {
        let src = "
            static MSG: [i8; 3] = \"abc\";
            static OUT: [i8; 32];
            fn main() -> i32 {
              sha256(MSG, 3, OUT);
              return OUT[0] as i32;
            }";
        let r = differential(src, &[], &[]);
        // First byte of sha256(\"abc\") is 0xba.
        assert_eq!(r.exit_code, 0xba);
    }

    #[test]
    fn signature_precompile_in_guest() {
        let kp = zkvmopt_crypto::sig::keypair_from_seed(5);
        let msg = zkvmopt_crypto::sha256(b"block");
        let s = zkvmopt_crypto::sig::sign(zkvmopt_crypto::sig::Scheme::Ecdsa, &kp, &msg);
        // Bake the vectors into globals.
        let fmt_bytes = |b: &[u8]| -> String {
            b.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let src = format!(
            "static MSG: [i8; 32] = [{}];
             static PK: [i8; 8] = [{}];
             static SIG: [i8; 16] = [{}];
             fn main() -> i32 {{
               return ecdsa_verify(MSG, PK, SIG);
             }}",
            fmt_bytes(&msg),
            fmt_bytes(&kp.public.to_le_bytes()),
            fmt_bytes(
                &s.r.to_le_bytes()
                    .iter()
                    .chain(s.s.to_le_bytes().iter())
                    .copied()
                    .collect::<Vec<u8>>()
            ),
        );
        let r = differential(&src, &[], &[]);
        assert_eq!(r.exit_code, 1, "signature must verify in-guest");
    }

    #[test]
    fn paging_cycles_scale_with_touched_pages() {
        // Touch 64 KiB (64 pages) vs 1 KiB (1 page).
        let big = build(
            "static A: [i32; 16384];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 16384; i += 256) { A[i] = i; }
               return 0;
             }",
            &["mem2reg"],
        );
        let small = build(
            "static A: [i32; 16384];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 64; i += 1) { A[i] = i; }
               return 0;
             }",
            &["mem2reg"],
        );
        let rb = run_program(&big, VmKind::RiscZero, &[]).unwrap();
        let rs = run_program(&small, VmKind::RiscZero, &[]).unwrap();
        assert!(
            rb.page_outs > rs.page_outs,
            "{} !> {}",
            rb.page_outs,
            rs.page_outs
        );
        assert!(rb.paging_cycles > rs.paging_cycles);
    }

    #[test]
    fn segments_flush_resident_set() {
        // A long loop over one page: one page-in normally, more once the
        // cycle count crosses segment boundaries.
        let prog = build(
            "static A: [i32; 4];
             fn main() -> i32 {
               let mut s: i32 = 0;
               for (let mut i: i32 = 0; i < 400000; i += 1) { A[0] = i; s += A[0]; }
               return s;
             }",
            &["mem2reg"],
        );
        let r = run_program(&prog, VmKind::RiscZero, &[]).unwrap();
        assert!(
            r.segments > 1,
            "expected multiple segments, got {}",
            r.segments
        );
        assert!(r.page_ins >= r.segments - 1, "each segment re-pages");
    }

    #[test]
    fn sp1_and_risczero_report_different_cost_shapes() {
        let prog = build(
            "static A: [i32; 8192];
             fn main() -> i32 {
               for (let mut i: i32 = 0; i < 8192; i += 1) { A[i] = i; }
               return A[17];
             }",
            &["mem2reg"],
        );
        let r0 = run_program(&prog, VmKind::RiscZero, &[]).unwrap();
        let sp1 = run_program(&prog, VmKind::Sp1, &[]).unwrap();
        assert_eq!(r0.exit_code, sp1.exit_code);
        assert_eq!(r0.instret, sp1.instret, "instret is VM-independent");
        assert!(
            r0.paging_cycles > sp1.paging_cycles,
            "paging dominates on RISC Zero: {} vs {}",
            r0.paging_cycles,
            sp1.paging_cycles
        );
    }

    #[test]
    fn halt_mid_program() {
        let r = differential(
            "fn main() -> i32 {
               commit(1);
               halt(77);
               commit(2);
               return 0;
             }",
            &[],
            &[],
        );
        assert!(r.halted);
        assert_eq!(r.exit_code, 77);
        assert_eq!(r.journal, vec![1]);
    }

    #[test]
    fn cycle_limit_enforced() {
        let m = zkvmopt_lang::compile_guest(
            "fn main() -> i32 { let mut i: i32 = 0; while (true) { i += 1; } return i; }",
        )
        .unwrap();
        let prog = zkvmopt_riscv::compile_module(&m, &TargetCostModel::zk()).unwrap();
        let cfg = ExecConfig {
            max_cycles: 10_000,
            ..Default::default()
        };
        let r = Machine::new(&prog, VmProfile::risc_zero(), cfg).run();
        assert_eq!(r.unwrap_err(), ExecError::CycleLimit);
    }

    #[test]
    fn instruction_mix_is_recorded() {
        let prog = build(
            "fn main() -> i32 {
               let a: i32 = read_input(0);
               let mut s: i32 = 0;
               for (let mut i: i32 = 1; i < 50; i += 1) { s += a * i / 3; }
               return s;
             }",
            &["mem2reg"],
        );
        let r = run_program(&prog, VmKind::RiscZero, &[9]).unwrap();
        assert!(r.mix.mul >= 49, "muls: {:?}", r.mix);
        assert!(r.mix.div >= 49);
        assert!(r.mix.branch >= 50);
        let sum = r.mix.alu
            + r.mix.mul
            + r.mix.div
            + r.mix.load
            + r.mix.store
            + r.mix.branch
            + r.mix.jump
            + r.mix.ecall;
        assert_eq!(sum, r.instret, "mix must partition instret");
    }
}
