//! Per-segment accounting records.
//!
//! A zkVM proves long executions as a chain of *segments* (RISC Zero
//! continuations, SP1 shards): the execution is cut every
//! [`VmProfile::segment_cycles`](crate::VmProfile) cycles, each cut is
//! proved independently (in parallel, in practice), and the per-segment
//! proofs are joined by a recursion/aggregation layer. The engine's
//! [`ExecutionReport`](crate::ExecutionReport) carries run-wide totals;
//! [`Engine::run_segmented`](crate::Engine::run_segmented) additionally
//! yields one [`SegmentRecord`] per segment, whose fields sum bit-identically
//! to those totals. The prover crate turns these records into per-segment
//! proof costs and commitments.

use crate::machine::InstMix;
use crate::profile::VmProfile;

/// Accounting for one proof segment of an execution: exactly the slice of
/// the run-wide totals that fell between two segment boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentRecord {
    /// Dynamic instructions retired in this segment.
    pub instret: u64,
    /// User (instruction + precompile) cycles in this segment.
    pub user_cycles: u64,
    /// Paging cycles charged in this segment.
    pub paging_cycles: u64,
    /// Pages paged in during this segment.
    pub page_ins: u64,
    /// Pages paged out during this segment.
    pub page_outs: u64,
    /// Instruction-class mix of this segment.
    pub mix: InstMix,
}

impl SegmentRecord {
    /// User plus paging cycles — the segment's share of
    /// [`ExecutionReport::total_cycles`](crate::ExecutionReport).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.user_cycles + self.paging_cycles
    }
}

/// Converts the lane's cumulative counters into per-segment deltas: one
/// [`close`](SegmentRecorder::close) call per segment boundary (the engine
/// hooks its per-boundary segment flush) plus one for the final partial
/// segment.
#[derive(Default)]
pub(crate) struct SegmentRecorder {
    pub(crate) records: Vec<SegmentRecord>,
    // Cumulative-counter snapshots at the last closed boundary.
    instret: u64,
    user_cycles: u64,
    page_ins: u64,
    page_outs: u64,
    mix: InstMix,
}

impl SegmentRecorder {
    /// Close the current segment at the given cumulative counter values,
    /// recording the deltas since the previous boundary.
    pub(crate) fn close(
        &mut self,
        profile: &VmProfile,
        instret: u64,
        user_cycles: u64,
        page_ins: u64,
        page_outs: u64,
        mix: &InstMix,
    ) {
        let d_ins = page_ins - self.page_ins;
        let d_outs = page_outs - self.page_outs;
        self.records.push(SegmentRecord {
            instret: instret - self.instret,
            user_cycles: user_cycles - self.user_cycles,
            paging_cycles: profile.paging_cycles(d_ins, d_outs),
            page_ins: d_ins,
            page_outs: d_outs,
            mix: mix.delta_since(&self.mix),
        });
        self.instret = instret;
        self.user_cycles = user_cycles;
        self.page_ins = page_ins;
        self.page_outs = page_outs;
        self.mix = *mix;
    }
}
