//! Page-0 footprint regressions for the *batched* execution tiers: the
//! hoisted memory-block pre-probe (`exec_mem`), superblock traces, and
//! lockstep convoys all funnel loads/stores through the same per-lane
//! residency probe that once used page 0 as its empty sentinel. Each test
//! here drives a block whose memory footprint starts at page 0 through one
//! of those tiers and checks the null guard still fires (exact address and
//! pc) and paging is still charged — bit-identical to the stepped path.

use zkvmopt_riscv::inst::{AluImmOp, BranchCond, MemWidth};
use zkvmopt_riscv::{Inst, Program, Reg};
use zkvmopt_vm::{
    DecodedProgram, Engine, ExecConfig, ExecError, ExecutionReport, VmKind, VmProfile,
};

fn program(code: Vec<Inst<Reg>>) -> Program {
    Program {
        code,
        entry: 0,
        func_entries: vec![],
        func_names: vec![],
        globals: vec![],
        spilled_vregs: 0,
    }
}

fn addi(rd: Reg, rs1: Reg, imm: i32) -> Inst<Reg> {
    Inst::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn lw(rd: Reg, base: Reg, offset: i32) -> Inst<Reg> {
    Inst::Load {
        width: MemWidth::Word,
        rd,
        base,
        offset,
    }
}

fn sw(src: Reg, base: Reg, offset: i32) -> Inst<Reg> {
    Inst::Store {
        width: MemWidth::Word,
        src,
        base,
        offset,
    }
}

/// A two-block hot loop whose memory footprint is entirely page 0: the
/// `jal` splits the body so trace formation can chain blocks (a one-block
/// loop closes on itself and is rejected).
fn page0_loop() -> Program {
    program(vec![
        addi(Reg::T1, Reg::ZERO, 0x200), // page-0 pointer (legal: >= 0x100)
        addi(Reg::T2, Reg::ZERO, 0),     // i = 0
        addi(Reg::T3, Reg::ZERO, 200),   // limit
        lw(Reg::A0, Reg::T1, 0),         // 3: loop head (Mem block A)
        Inst::Jal {
            rd: Reg::ZERO,
            target: 5,
        },
        sw(Reg::A0, Reg::T1, 4), // 5: Mem block B
        addi(Reg::T2, Reg::T2, 1),
        Inst::Branch {
            cond: BranchCond::Lt,
            rs1: Reg::T2,
            rs2: Reg::T3,
            target: 3,
        },
        Inst::Ecall, // halt(a0)
    ])
}

fn run(p: &Program, profile: VmProfile) -> Result<ExecutionReport, ExecError> {
    let d = DecodedProgram::decode(p);
    Engine::new(&d, profile, ExecConfig::default()).run()
}

/// Batched memory block (entered at its head, in budget → `exec_mem`): a
/// null-guard violation mid-block must fault at the exact address and pc
/// the stepped path reports, even though a legal page-0 access precedes it.
#[test]
fn mem_block_null_guard_faults_at_exact_pc() {
    let p = program(vec![
        addi(Reg::T1, Reg::ZERO, 0x200),
        lw(Reg::A0, Reg::T1, 0), // legal page-0 load
        addi(Reg::T2, Reg::ZERO, 0x10),
        lw(Reg::A1, Reg::T2, 0), // 3: addr 0x10 < 0x100 -> fault
        Inst::Jal {
            rd: Reg::ZERO,
            target: 5,
        },
        Inst::Ecall,
    ]);
    let r = run(&p, VmProfile::risc_zero());
    assert_eq!(
        r,
        Err(ExecError::MemFault { addr: 0x10, pc: 3 }),
        "batched mem block must preserve the null guard"
    );
}

/// A probe already caching a *legal* page must not let a later sub-0x100
/// store through: the hit test is per-page, and page 0 is never cached.
#[test]
fn probe_hit_on_other_page_never_bypasses_null_guard() {
    let p = program(vec![
        addi(Reg::T1, Reg::ZERO, 0x400),
        lw(Reg::A0, Reg::T1, 0), // caches probe on page 1
        addi(Reg::T2, Reg::ZERO, 0x10),
        sw(Reg::A0, Reg::T2, 0), // 3: store to 0x10 -> fault
        Inst::Jal {
            rd: Reg::ZERO,
            target: 5,
        },
        Inst::Ecall,
    ]);
    let r = run(&p, VmProfile::risc_zero());
    assert_eq!(r, Err(ExecError::MemFault { addr: 0x10, pc: 3 }));
}

/// A batched block whose whole footprint is page 0 charges exactly one
/// page-in: the first access pays, later same-page accesses are resident
/// (but must go through the checked path, not the probe cache).
#[test]
fn mem_block_page0_footprint_charges_one_page_in() {
    let p = program(vec![
        addi(Reg::T1, Reg::ZERO, 0x200),
        lw(Reg::A0, Reg::T1, 0),
        sw(Reg::A0, Reg::T1, 4),
        lw(Reg::A1, Reg::T1, 8),
        Inst::Jal {
            rd: Reg::ZERO,
            target: 5,
        },
        Inst::Ecall,
    ]);
    let r = run(&p, VmProfile::risc_zero()).expect("legal page-0 block runs");
    assert_eq!(r.page_ins, 1, "page 0 pages in exactly once");
}

/// The hot page-0 loop must actually form a superblock trace, and the
/// trace-following execution must be bit-identical to the stepped-only
/// `run_segmented` dispatch on every architectural observable.
#[test]
fn page0_trace_matches_stepped_dispatch() {
    let p = page0_loop();
    let d = DecodedProgram::decode(&p);
    for kind in VmKind::BOTH {
        let profile = VmProfile::for_kind(kind);
        let fast = Engine::new(&d, profile.clone(), ExecConfig::default())
            .run()
            .expect("traced run");
        assert!(
            fast.stats.traces_formed >= 1,
            "hot page-0 loop should form a trace ({kind})"
        );
        let (stepped, _records) = Engine::new(&d, profile, ExecConfig::default())
            .run_segmented()
            .expect("stepped run");
        assert_eq!(fast.instret, stepped.instret, "instret ({kind})");
        assert_eq!(fast.user_cycles, stepped.user_cycles, "cycles ({kind})");
        assert_eq!(fast.paging_cycles, stepped.paging_cycles, "paging ({kind})");
        assert_eq!(fast.page_ins, stepped.page_ins, "page_ins ({kind})");
        assert_eq!(fast.page_outs, stepped.page_outs, "page_outs ({kind})");
        assert_eq!(fast.segments, stepped.segments, "segments ({kind})");
        assert_eq!(fast.mix, stepped.mix, "mix ({kind})");
        assert_eq!(fast.exit_code, stepped.exit_code, "exit ({kind})");
        assert_eq!(fast.journal, stepped.journal, "journal ({kind})");
        assert_eq!(fast.page_ins, 1, "loop footprint is one page ({kind})");
    }
}

/// Lockstep convoys (tight `exec_mem` path: >= 2 lanes at one pc) over the
/// page-0 loop must match each lane's solo run bit for bit.
#[test]
fn lockstep_page0_loop_matches_solo() {
    let p = page0_loop();
    let d = DecodedProgram::decode(&p);
    let jobs = vec![
        (VmProfile::risc_zero(), ExecConfig::default()),
        (VmProfile::risc_zero(), ExecConfig::default()),
        (VmProfile::sp1(), ExecConfig::default()),
    ];
    for (job, r) in jobs.iter().zip(Engine::run_lockstep(&d, &jobs)) {
        let lane = r.expect("lockstep lane runs");
        let solo = Engine::new(&d, job.0.clone(), job.1.clone())
            .run()
            .expect("solo runs");
        assert_eq!(lane.user_cycles, solo.user_cycles);
        assert_eq!(lane.paging_cycles, solo.paging_cycles);
        assert_eq!(lane.page_ins, solo.page_ins);
        assert_eq!(lane.page_outs, solo.page_outs);
        assert_eq!(lane.segments, solo.segments);
        assert_eq!(lane.mix, solo.mix);
        assert_eq!(lane.journal, solo.journal);
        assert_eq!(lane.exit_code, solo.exit_code);
    }
}

/// Every lockstep lane must see the null-guard fault a tight convoy's
/// memory block raises, at the same address and pc as the solo engine.
#[test]
fn lockstep_null_guard_faults_every_lane() {
    let p = program(vec![
        addi(Reg::T1, Reg::ZERO, 0x200),
        lw(Reg::A0, Reg::T1, 0),
        addi(Reg::T2, Reg::ZERO, 0x10),
        lw(Reg::A1, Reg::T2, 0), // 3: faults in every lane
        Inst::Jal {
            rd: Reg::ZERO,
            target: 5,
        },
        Inst::Ecall,
    ]);
    let d = DecodedProgram::decode(&p);
    let jobs = vec![
        (VmProfile::risc_zero(), ExecConfig::default()),
        (VmProfile::risc_zero(), ExecConfig::default()),
        (VmProfile::sp1(), ExecConfig::default()),
    ];
    for r in Engine::run_lockstep(&d, &jobs) {
        assert_eq!(r, Err(ExecError::MemFault { addr: 0x10, pc: 3 }));
    }
}
