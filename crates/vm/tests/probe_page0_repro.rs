//! Permanent regression suite for the page-0 probe sentinel bug: the
//! residency pre-probe once used `probe_page: 0` as its empty sentinel, so
//! the first access to any page-0 address vacuously "hit" — swallowing the
//! null-guard `MemFault` for `addr < 0x100` and eliding the page-in charge
//! for legal page-0 addresses. These tests pin the fixed semantics on the
//! stepped path; `page0_blocks.rs` covers the batched-block, superblock
//! -trace, and lockstep paths.

use zkvmopt_riscv::inst::{AluImmOp, MemWidth};
use zkvmopt_riscv::{Inst, Program, Reg};
use zkvmopt_vm::{DecodedProgram, Engine, ExecConfig, ExecError, VmProfile};

fn run(code: Vec<Inst<Reg>>) -> Result<zkvmopt_vm::ExecutionReport, ExecError> {
    let p = Program {
        code,
        entry: 0,
        func_entries: vec![],
        func_names: vec![],
        globals: vec![],
        spilled_vregs: 0,
    };
    let d = DecodedProgram::decode(&p);
    Engine::new(&d, VmProfile::risc_zero(), ExecConfig::default()).run()
}

#[test]
fn null_guard_load_faults() {
    // t1 = 0x10; lw a0, 0(t1)  -> reference faults (addr < 0x100)
    let r = run(vec![
        Inst::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::T1,
            rs1: Reg::ZERO,
            imm: 0x10,
        },
        Inst::Load {
            width: MemWidth::Word,
            rd: Reg::A0,
            base: Reg::T1,
            offset: 0,
        },
        // halt(a0): t0 = HALT (0) already
        Inst::Ecall,
    ]);
    assert!(
        matches!(r, Err(ExecError::MemFault { addr: 0x10, .. })),
        "expected MemFault at 0x10, got {r:?}"
    );
}

#[test]
fn legal_page0_load_charges_page_in() {
    // t1 = 0x200 (legal, inside page 0 for 1 KiB pages); lw a0, 0(t1)
    let r = run(vec![
        Inst::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::T1,
            rs1: Reg::ZERO,
            imm: 0x200,
        },
        Inst::Load {
            width: MemWidth::Word,
            rd: Reg::A0,
            base: Reg::T1,
            offset: 0,
        },
        Inst::Ecall,
    ])
    .expect("legal load runs");
    assert_eq!(r.page_ins, 1, "reference charges one page-in for page 0");
}
