//! # zkvmopt-x86sim
//!
//! A trace-driven x86-like timing model for the paper's RQ3 comparison.
//!
//! **Substitution note (DESIGN.md):** the paper ran native x86 binaries on an
//! EPYC 7742. What RQ3 actually uses is the *direction and rough magnitude*
//! of four micro-architectural mechanisms zkVMs lack:
//!
//! 1. long-latency division (so strength reduction pays, Fig. 2a),
//! 2. branch misprediction penalties (so if-conversion pays, Fig. 13),
//! 3. a cache hierarchy (so loop fission/locality pays, Fig. 2b),
//! 4. wide issue/ILP (so more-but-independent instructions are cheap).
//!
//! This simulator executes the same RV32IM programs as the zkVM and charges
//! an x86-like cost: a gshare branch predictor with a misprediction penalty,
//! an L1/L2/DRAM hierarchy, per-class latencies, and a superscalar discount
//! on simple ALU work.

use zkvmopt_ir::ecall;
use zkvmopt_riscv::inst::{AluOp, Inst, MemWidth};
use zkvmopt_riscv::{Program, Reg};
use zkvmopt_vm::ecalls::{run_precompile, FlatMem};
use zkvmopt_vm::{alu, alu_imm};

/// Timing parameters of the modelled CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct X86Model {
    /// Cost of a simple ALU op after the superscalar discount (cycles).
    pub alu_cost: f64,
    /// Multiply latency contribution.
    pub mul_cost: f64,
    /// Divide latency contribution (the Fig. 2a driver).
    pub div_cost: f64,
    /// L1-hit load cost.
    pub load_l1: f64,
    /// Additional cost on L1 miss (L2 hit).
    pub l2_penalty: f64,
    /// Additional cost on L2 miss (DRAM).
    pub mem_penalty: f64,
    /// Store cost (write-buffer absorbed).
    pub store_cost: f64,
    /// Correctly-predicted branch cost.
    pub branch_cost: f64,
    /// Misprediction penalty (the Fig. 13 driver).
    pub mispredict_penalty: f64,
    /// Core frequency in Hz (for wall-time conversion).
    pub freq_hz: f64,
}

impl Default for X86Model {
    fn default() -> X86Model {
        X86Model {
            alu_cost: 0.4,
            mul_cost: 1.2,
            div_cost: 21.0,
            // Zen-class L1d latency is ~4 cycles; unoptimized stack traffic
            // pays it on every access, which is precisely why -O levels buy
            // CPUs so much more than zkVMs (paper Fig. 7).
            load_l1: 4.0,
            l2_penalty: 10.0,
            mem_penalty: 120.0,
            store_cost: 1.0,
            branch_cost: 0.6,
            mispredict_penalty: 14.0,
            freq_hz: 3.3e9,
        }
    }
}

/// What the x86 model reports for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct X86Report {
    /// Dynamic instructions executed.
    pub instret: u64,
    /// Modelled core cycles.
    pub cycles: f64,
    /// Modelled native execution time, milliseconds.
    pub time_ms: f64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Exit code (must match the zkVM's).
    pub exit_code: i32,
    /// Journal (must match the zkVM's).
    pub journal: Vec<i32>,
}

/// gshare branch predictor: global history XOR pc indexing 2-bit counters.
struct Gshare {
    history: u32,
    table: Vec<u8>,
    bits: u32,
}

impl Gshare {
    fn new(bits: u32) -> Gshare {
        Gshare {
            history: 0,
            table: vec![1; 1 << bits],
            bits,
        }
    }

    fn predict_and_update(&mut self, pc: usize, taken: bool) -> bool {
        let mask = (1u32 << self.bits) - 1;
        let idx = ((pc as u32) ^ self.history) & mask;
        let ctr = &mut self.table[idx as usize];
        let predicted = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & mask;
        predicted == taken
    }
}

/// A set-associative LRU cache level.
struct Cache {
    sets: Vec<Vec<u32>>, // tags, most-recent last
    ways: usize,
    line_bits: u32,
    set_bits: u32,
}

impl Cache {
    fn new(size_bytes: u32, ways: usize, line_bytes: u32) -> Cache {
        let lines = size_bytes / line_bytes;
        let sets = (lines as usize) / ways;
        Cache {
            sets: vec![Vec::new(); sets],
            ways,
            line_bits: line_bytes.trailing_zeros(),
            set_bits: (sets as u32).trailing_zeros(),
        }
    }

    /// Access `addr`; returns true on hit.
    fn access(&mut self, addr: u32) -> bool {
        let line = addr >> self.line_bits;
        let set = (line & ((1 << self.set_bits) - 1)) as usize;
        let tag = line >> self.set_bits;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|t| *t == tag) {
            let t = entries.remove(pos);
            entries.push(t);
            true
        } else {
            entries.push(tag);
            if entries.len() > self.ways {
                entries.remove(0);
            }
            false
        }
    }
}

/// Execution failure (mirrors the zkVM's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum X86Error {
    /// Memory fault.
    MemFault { addr: u32 },
    /// Jump outside code.
    BadPc { pc: usize },
    /// Instruction budget exhausted.
    StepLimit,
}

impl std::fmt::Display for X86Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            X86Error::MemFault { addr } => write!(f, "memory fault at {addr:#x}"),
            X86Error::BadPc { pc } => write!(f, "bad pc {pc}"),
            X86Error::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

impl std::error::Error for X86Error {}

/// Run `program` under the x86 timing model.
///
/// # Errors
/// Returns [`X86Error`] on faults or after 2 G instructions.
pub fn run_x86(program: &Program, model: &X86Model, inputs: &[i32]) -> Result<X86Report, X86Error> {
    let mem_size = zkvmopt_ir::interp::MEM_SIZE as usize;
    let mut mem = vec![0u8; mem_size];
    for (addr, data) in &program.globals {
        let a = *addr as usize;
        mem[a..a + data.len()].copy_from_slice(data);
    }
    let mut regs = [0u32; 32];
    regs[Reg::SP.0 as usize] = zkvmopt_ir::interp::STACK_TOP;
    let mut pc = program.entry;
    let mut cycles: f64 = 0.0;
    let mut instret: u64 = 0;
    let mut mispredicts: u64 = 0;
    let mut l1_misses: u64 = 0;
    let mut l2_misses: u64 = 0;
    let mut journal = Vec::new();
    let mut predictor = Gshare::new(12);
    let mut l1 = Cache::new(32 * 1024, 8, 64);
    let mut l2 = Cache::new(1024 * 1024, 16, 64);
    let max_steps: u64 = 2_000_000_000;

    let reg = |regs: &[u32; 32], r: Reg| regs[r.0 as usize];
    macro_rules! set_reg {
        ($r:expr, $v:expr) => {
            if $r != Reg::ZERO {
                regs[$r.0 as usize] = $v;
            }
        };
    }
    let exit_code;
    loop {
        let Some(inst) = program.code.get(pc) else {
            return Err(X86Error::BadPc { pc });
        };
        let mut next_pc = pc + 1;
        match *inst {
            Inst::Lui { rd, imm } => {
                cycles += model.alu_cost;
                set_reg!(rd, imm as u32);
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                cycles += match op {
                    AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu => model.mul_cost,
                    AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => model.div_cost,
                    _ => model.alu_cost,
                };
                set_reg!(rd, alu(op, reg(&regs, rs1), reg(&regs, rs2)));
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                cycles += model.alu_cost;
                set_reg!(rd, alu_imm(op, reg(&regs, rs1), imm));
            }
            Inst::Load {
                width,
                rd,
                base,
                offset,
            } => {
                let addr = reg(&regs, base).wrapping_add(offset as u32);
                if addr < 0x100 || addr as usize + width.bytes() as usize > mem_size {
                    return Err(X86Error::MemFault { addr });
                }
                cycles += model.load_l1;
                if !l1.access(addr) {
                    l1_misses += 1;
                    cycles += model.l2_penalty;
                    if !l2.access(addr) {
                        l2_misses += 1;
                        cycles += model.mem_penalty;
                    }
                }
                let a = addr as usize;
                let raw = match width.bytes() {
                    1 => mem[a] as u32,
                    2 => u16::from_le_bytes([mem[a], mem[a + 1]]) as u32,
                    _ => u32::from_le_bytes([mem[a], mem[a + 1], mem[a + 2], mem[a + 3]]),
                };
                let v = match width {
                    MemWidth::Byte => (raw as u8 as i8) as i32 as u32,
                    MemWidth::ByteU => raw & 0xff,
                    MemWidth::Half => (raw as u16 as i16) as i32 as u32,
                    MemWidth::HalfU => raw & 0xffff,
                    MemWidth::Word => raw,
                };
                set_reg!(rd, v);
            }
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = reg(&regs, base).wrapping_add(offset as u32);
                if addr < 0x100 || addr as usize + width.bytes() as usize > mem_size {
                    return Err(X86Error::MemFault { addr });
                }
                cycles += model.store_cost;
                if !l1.access(addr) {
                    l1_misses += 1;
                    cycles += model.l2_penalty;
                    if !l2.access(addr) {
                        l2_misses += 1;
                        cycles += model.mem_penalty;
                    }
                }
                let a = addr as usize;
                let v = reg(&regs, src);
                match width.bytes() {
                    1 => mem[a] = v as u8,
                    2 => mem[a..a + 2].copy_from_slice(&(v as u16).to_le_bytes()),
                    _ => mem[a..a + 4].copy_from_slice(&v.to_le_bytes()),
                }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(reg(&regs, rs1), reg(&regs, rs2));
                cycles += model.branch_cost;
                if !predictor.predict_and_update(pc, taken) {
                    mispredicts += 1;
                    cycles += model.mispredict_penalty;
                }
                if taken {
                    next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                cycles += model.branch_cost;
                set_reg!(rd, (pc as u32 + 1) * 4);
                next_pc = target;
            }
            Inst::Jalr { rd, rs1, offset } => {
                cycles += model.branch_cost + 0.5; // indirect target resolution
                let t = reg(&regs, rs1).wrapping_add(offset as u32) / 4;
                set_reg!(rd, (pc as u32 + 1) * 4);
                next_pc = t as usize;
            }
            Inst::Ecall => {
                let code = reg(&regs, Reg::T0);
                let args = [
                    reg(&regs, Reg::A0) as i64,
                    reg(&regs, Reg::A1) as i64,
                    reg(&regs, Reg::A2) as i64,
                ];
                match code {
                    ecall::HALT => {
                        exit_code = reg(&regs, Reg::A0) as i32;
                        instret += 1;
                        break;
                    }
                    ecall::COMMIT => {
                        journal.push(reg(&regs, Reg::A0) as i32);
                        set_reg!(Reg::A0, 0);
                        cycles += 5.0;
                    }
                    ecall::READ_INPUT => {
                        let idx = reg(&regs, Reg::A0) as usize;
                        set_reg!(Reg::A0, inputs.get(idx).copied().unwrap_or(0) as u32);
                        cycles += 5.0;
                    }
                    other => {
                        // Native crypto is fast: a small per-byte charge.
                        let len = args[1].max(32) as f64;
                        cycles += 60.0 + len * 1.5;
                        let r = run_precompile(other, &args, &mut FlatMem(&mut mem[..]));
                        set_reg!(Reg::A0, r as u32);
                    }
                }
            }
        }
        instret += 1;
        if instret > max_steps {
            return Err(X86Error::StepLimit);
        }
        pc = next_pc;
    }

    Ok(X86Report {
        instret,
        cycles,
        time_ms: cycles / model.freq_hz * 1e3,
        mispredicts,
        l1_misses,
        l2_misses,
        exit_code,
        journal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvmopt_riscv::TargetCostModel;

    fn build(src: &str, cm: &TargetCostModel, passes: &[&str]) -> Program {
        let mut m = zkvmopt_lang::compile_guest(src).expect("compiles");
        for p in passes {
            zkvmopt_passes::run_pass(p, &mut m, &zkvmopt_passes::PassConfig::default());
        }
        zkvmopt_riscv::compile_module(&m, cm).expect("codegen")
    }

    #[test]
    fn matches_zkvm_behaviour() {
        let src = "fn main() -> i32 {
                     let mut s: i32 = 0;
                     for (let mut i: i32 = 0; i < 20; i += 1) { s += i * i; commit(s % 7); }
                     return s;
                   }";
        let p = build(src, &TargetCostModel::cpu(), &["mem2reg"]);
        let x = run_x86(&p, &X86Model::default(), &[]).unwrap();
        let z = zkvmopt_vm::run_program(&p, zkvmopt_vm::VmKind::RiscZero, &[]).unwrap();
        assert_eq!(x.exit_code, z.exit_code);
        assert_eq!(x.journal, z.journal);
        assert_eq!(x.instret, z.instret);
    }

    #[test]
    fn division_expansion_helps_x86_hurts_zkvm() {
        // The paper's Fig. 2a in miniature: div-by-8 in a hot loop.
        let src = "fn main() -> i32 {
                     let mut s: i32 = 0;
                     for (let mut i: i32 = 1; i < 2000; i += 1) { s += i / 8; }
                     return s;
                   }";
        let expanded = build(src, &TargetCostModel::cpu(), &["mem2reg"]);
        let keep_div = build(src, &TargetCostModel::zk(), &["mem2reg"]);
        let model = X86Model::default();
        let x_exp = run_x86(&expanded, &model, &[]).unwrap();
        let x_div = run_x86(&keep_div, &model, &[]).unwrap();
        assert_eq!(x_exp.exit_code, x_div.exit_code);
        assert!(
            x_exp.cycles < x_div.cycles,
            "shifts beat div on x86: {} !< {}",
            x_exp.cycles,
            x_div.cycles
        );
        let z_exp = zkvmopt_vm::run_program(&expanded, zkvmopt_vm::VmKind::RiscZero, &[]).unwrap();
        let z_div = zkvmopt_vm::run_program(&keep_div, zkvmopt_vm::VmKind::RiscZero, &[]).unwrap();
        assert!(
            z_div.total_cycles < z_exp.total_cycles,
            "single div beats shifts on zkVM: {} !< {}",
            z_div.total_cycles,
            z_exp.total_cycles
        );
    }

    #[test]
    fn mispredictable_branches_cost_on_x86() {
        // Data-dependent branch on a pseudo-random sequence.
        let branchy = "fn main() -> i32 {
                         let mut s: i32 = 0;
                         let mut x: u32 = 12345;
                         for (let mut i: i32 = 0; i < 3000; i += 1) {
                           x = x * 1103515245 + 12345;
                           if ((x >> 16 & 1) == 1) { s += 3; } else { s -= 1; }
                         }
                         return s;
                       }";
        let p = build(branchy, &TargetCostModel::cpu(), &["mem2reg"]);
        let x = run_x86(&p, &X86Model::default(), &[]).unwrap();
        // Roughly half of 3000 data-dependent branches mispredict.
        assert!(x.mispredicts > 800, "mispredicts: {}", x.mispredicts);
    }

    #[test]
    fn cache_misses_show_up_for_large_strides() {
        let src = "static A: [i32; 65536];
                   fn main() -> i32 {
                     let mut s: i32 = 0;
                     for (let mut i: i32 = 0; i < 65536; i += 16) { A[i] = i; s += A[i]; }
                     return s;
                   }";
        let p = build(src, &TargetCostModel::cpu(), &["mem2reg"]);
        let x = run_x86(&p, &X86Model::default(), &[]).unwrap();
        assert!(x.l1_misses > 3000, "l1 misses: {}", x.l1_misses);
    }

    #[test]
    fn predictable_loop_branches_are_cheap() {
        let src = "fn main() -> i32 {
                     let mut s: i32 = 0;
                     for (let mut i: i32 = 0; i < 5000; i += 1) { s += 1; }
                     return s;
                   }";
        let p = build(src, &TargetCostModel::cpu(), &["mem2reg"]);
        let x = run_x86(&p, &X86Model::default(), &[]).unwrap();
        // ~5000 loop-back branches, almost all predicted.
        assert!(x.mispredicts < 100, "mispredicts: {}", x.mispredicts);
    }
}
