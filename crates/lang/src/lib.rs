//! # zkvmopt-lang
//!
//! The *zklang* frontend: a small C-like language in which the workspace's 58
//! benchmark programs are written, standing in for the paper's Rust/C sources.
//!
//! zklang compiles to `-O0`-style IR — every local in an `alloca`, every read a
//! `load`, every write a `store` — matching what clang hands LLVM's pass
//! pipeline. That parity is what makes the pass study meaningful: `mem2reg`,
//! `licm`, `inline`, and friends all see the same shapes they would in LLVM.
//!
//! ## Language summary
//!
//! - Types: `i32`, `u32`, `i8`, `bool`, pointers `*i32`/`*i8`, 1-D arrays.
//! - Items: `const N: i32 = ...;`, `static A: [i32; N] = [..];`, `fn`.
//! - Statements: `let`, assignment (`=`, `+=`, …), `if`/`else`, `while`,
//!   `for`, `return`, `break`, `continue`.
//! - Builtins (zkVM ecalls): `commit(x)`, `halt(x)`, `read_input(i)`,
//!   `sha256(in, len, out)`, `keccak256(in, len, out)`,
//!   `ecdsa_verify(msg, pk, sig)`, `eddsa_verify(msg, pk, sig)`.
//! - `#[inline(always)]` / `#[inline(never)]` function attributes.
//!
//! ## Example
//!
//! ```
//! let src = "
//!     fn main() -> i32 {
//!         let mut s: i32 = 0;
//!         for (let mut i: i32 = 0; i < 10; i += 1) { s += i; }
//!         return s;
//!     }";
//! let module = zkvmopt_lang::compile(src).expect("compiles");
//! let out = zkvmopt_ir::interp::run_module(&module, &[]).expect("runs");
//! assert_eq!(out.exit_value, 45);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use std::fmt;
use zkvmopt_ir::Module;

/// Any frontend failure: lexing, parsing, or lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<parser::ParseError> for CompileError {
    fn from(e: parser::ParseError) -> CompileError {
        CompileError {
            line: e.line,
            message: e.message,
        }
    }
}

impl From<lower::LowerError> for CompileError {
    fn from(e: lower::LowerError) -> CompileError {
        CompileError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Compile zklang source to a verified IR [`Module`].
///
/// # Errors
/// Returns a [`CompileError`] on any lexical, syntactic, type, or structural
/// problem (including IR verification failures, which indicate a frontend
/// bug and are reported as line 0).
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let prog = parser::parse(src)?;
    let module = lower::lower(&prog)?;
    if let Err(e) = zkvmopt_ir::verify::verify_module(&module) {
        return Err(CompileError {
            line: 0,
            message: format!("internal: {e}"),
        });
    }
    Ok(module)
}

/// Compile and additionally require a `fn main() -> i32` with no parameters
/// (the guest-program entry contract used by the study pipeline).
///
/// # Errors
/// Like [`compile`], plus an error when `main` is missing or malformed.
pub fn compile_guest(src: &str) -> Result<Module, CompileError> {
    let m = compile(src)?;
    match m.main_func() {
        Some(id) => {
            let f = &m.funcs[id.index()];
            if !f.params.is_empty() || f.ret != Some(zkvmopt_ir::Ty::I32) {
                return Err(CompileError {
                    line: 0,
                    message: "main must be `fn main() -> i32` with no parameters".into(),
                });
            }
        }
        None => {
            return Err(CompileError {
                line: 0,
                message: "guest program must define main".into(),
            })
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zkvmopt_ir::interp::run_module;

    fn run(src: &str) -> i64 {
        let m = compile_guest(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        run_module(&m, &[])
            .unwrap_or_else(|e| panic!("run failed: {e}"))
            .exit_value
    }

    fn run_with_inputs(src: &str, inputs: &[i32]) -> (i64, Vec<i32>) {
        let m = compile_guest(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
        let out = run_module(&m, inputs).unwrap();
        (out.exit_value, out.journal)
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn main() -> i32 { return 2 + 3 * 4 - 6 / 2; }"), 11);
        assert_eq!(run("fn main() -> i32 { return (2 + 3) * 4 % 7; }"), 6);
        assert_eq!(run("fn main() -> i32 { return 1 << 5 | 3; }"), 35);
    }

    #[test]
    fn signedness_of_division_and_shift() {
        assert_eq!(
            run("fn main() -> i32 { let a: i32 = -7; return a / 2; }"),
            -3
        );
        assert_eq!(
            run("fn main() -> i32 { let a: u32 = 0xfffffff8; return (a >> 1) as i32; }"),
            0x7ffffffc
        );
        assert_eq!(
            run("fn main() -> i32 { let a: i32 = -8; return a >> 1; }"),
            -4
        );
        assert_eq!(
            run("fn main() -> i32 { let a: u32 = 0xffffffff; if (a > 0) { return 1; } return 0; }"),
            1
        );
    }

    #[test]
    fn control_flow_loops() {
        assert_eq!(
            run("fn main() -> i32 { let mut s: i32 = 0; let mut i: i32 = 0;
                 while (i < 10) { s += i; i += 1; } return s; }"),
            45
        );
        assert_eq!(
            run("fn main() -> i32 { let mut s: i32 = 0;
                 for (let mut i: i32 = 0; i < 10; i += 1) {
                   if (i % 2 == 0) { continue; } s += i;
                 } return s; }"),
            25
        );
        assert_eq!(
            run("fn main() -> i32 { let mut s: i32 = 0;
                 for (let mut i: i32 = 0; ; i += 1) {
                   if (i >= 5) { break; } s += 10;
                 } return s; }"),
            50
        );
    }

    #[test]
    fn short_circuit_evaluation() {
        // Division by zero would change the result if RHS evaluated eagerly:
        // RISC-V x/0 == -1, so the guard must skip it.
        assert_eq!(
            run("fn main() -> i32 { let n: i32 = 0;
                 if (n != 0 && 10 / n > 1) { return 1; } return 2; }"),
            2
        );
        assert_eq!(
            run("fn main() -> i32 { let n: i32 = 5;
                 if (n == 5 || 10 / 0 > 1) { return 1; } return 2; }"),
            1
        );
    }

    #[test]
    fn functions_args_and_recursion() {
        assert_eq!(
            run("fn add(a: i32, b: i32) -> i32 { return a + b; }
                 fn main() -> i32 { return add(40, 2); }"),
            42
        );
        assert_eq!(
            run("fn fib(n: i32) -> i32 {
                   if (n < 2) { return n; }
                   return fib(n - 1) + fib(n - 2);
                 }
                 fn main() -> i32 { return fib(10); }"),
            55
        );
    }

    #[test]
    fn arrays_local_and_global() {
        assert_eq!(
            run("static A: [i32; 8];
                 fn main() -> i32 {
                   for (let mut i: i32 = 0; i < 8; i += 1) { A[i] = i * i; }
                   return A[7];
                 }"),
            49
        );
        assert_eq!(
            run("fn main() -> i32 {
                   let mut a: [i32; 4];
                   a[0] = 3; a[3] = 4;
                   return a[0] + a[1] + a[3];
                 }"),
            7
        );
    }

    #[test]
    fn global_initializers() {
        assert_eq!(
            run("static T: [i32; 4] = [10, 20, 30, 40];
                 fn main() -> i32 { return T[1] + T[3]; }"),
            60
        );
        assert_eq!(
            run("static S: [i8; 3] = \"AB\";
                 fn main() -> i32 { return S[0] as i32 + S[1] as i32 + S[2] as i32; }"),
            65 + 66
        );
        assert_eq!(
            run("static X: i32 = 17; fn main() -> i32 { X = X + 1; return X; }"),
            18
        );
    }

    #[test]
    fn consts_fold_in_sizes_and_exprs() {
        assert_eq!(
            run("const N: i32 = 4; const M: i32 = N * 2;
                 static A: [i32; M];
                 fn main() -> i32 { A[M - 1] = N; return A[7]; }"),
            4
        );
    }

    #[test]
    fn pointers_into_arrays() {
        assert_eq!(
            run("fn fill(p: *i32, n: i32) {
                   for (let mut i: i32 = 0; i < n; i += 1) { p[i] = i + 1; }
                 }
                 fn sum(p: *i32, n: i32) -> i32 {
                   let mut s: i32 = 0;
                   for (let mut i: i32 = 0; i < n; i += 1) { s += p[i] as i32; }
                   return s;
                 }
                 static A: [i32; 5];
                 fn main() -> i32 { fill(A, 5); return sum(A, 5); }"),
            15
        );
    }

    #[test]
    fn byte_arrays_and_chars() {
        assert_eq!(
            run("static BUF: [i8; 4];
                 fn main() -> i32 {
                   BUF[0] = 'h' as i8; BUF[1] = 0xff as i8;
                   return BUF[0] as i32 + BUF[1] as i32;
                 }"),
            104 + 255
        );
    }

    #[test]
    fn ecalls_commit_and_inputs() {
        let (exit, journal) = run_with_inputs(
            "fn main() -> i32 {
               let a: i32 = read_input(0);
               let b: i32 = read_input(1);
               commit(a + b);
               commit(a * b);
               return 0;
             }",
            &[6, 7],
        );
        assert_eq!(exit, 0);
        assert_eq!(journal, vec![13, 42]);
    }

    #[test]
    fn halt_builtin() {
        let m = compile_guest("fn main() -> i32 { halt(9); return 1; }").unwrap();
        let out = run_module(&m, &[]).unwrap();
        assert!(out.halted);
        assert_eq!(out.exit_value, 9);
    }

    #[test]
    fn inline_attributes_reach_ir() {
        let m = compile(
            "#[inline(always)] fn a() -> i32 { return 1; }
             #[inline(never)] fn b() -> i32 { return 2; }
             fn main() -> i32 { return a() + b(); }",
        )
        .unwrap();
        let fa = &m.funcs[m.func_by_name("a").unwrap().index()];
        let fb = &m.funcs[m.func_by_name("b").unwrap().index()];
        assert!(fa.always_inline && !fa.no_inline);
        assert!(fb.no_inline && !fb.always_inline);
    }

    #[test]
    fn locals_are_zero_initialized() {
        assert_eq!(run("fn main() -> i32 { let x: i32; return x; }"), 0);
        assert_eq!(
            run("fn main() -> i32 { let a: [i32; 16]; let mut s: i32 = 0;
                 for (let mut i: i32 = 0; i < 16; i += 1) { s += a[i]; } return s; }"),
            0
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(compile("fn main() -> i32 { return true; }").is_err());
        assert!(compile("fn main() -> i32 { let x: bool = 1; return 0; }").is_err());
        assert!(compile("fn main() -> i32 { if (1) { } return 0; }").is_err());
        assert!(compile("fn main() -> i32 { return nosuch(); }").is_err());
        assert!(compile("fn main() -> i32 { break; }").is_err());
        assert!(compile("fn f() {} fn f() {} fn main() -> i32 { return 0; }").is_err());
    }

    #[test]
    fn guest_contract_enforced() {
        assert!(compile_guest("fn notmain() -> i32 { return 0; }").is_err());
        assert!(compile_guest("fn main(x: i32) -> i32 { return x; }").is_err());
        assert!(compile_guest("fn main() { }").is_err());
    }

    #[test]
    fn nested_scopes_shadow() {
        assert_eq!(
            run("fn main() -> i32 {
                   let x: i32 = 1;
                   if (true) { let x: i32 = 2; commit(x); }
                   return x;
                 }"),
            1
        );
    }

    #[test]
    fn dead_code_after_return_is_tolerated() {
        assert_eq!(run("fn main() -> i32 { return 5; return 6; }"), 5);
        assert_eq!(
            run("fn main() -> i32 {
                   for (let mut i: i32 = 0; i < 3; i += 1) { return 7; }
                   return 8;
                 }"),
            7
        );
    }

    #[test]
    fn compound_assign_on_array_elements() {
        assert_eq!(
            run("static A: [i32; 2] = [5, 6];
                 fn main() -> i32 { A[0] += 10; A[1] *= 2; return A[0] + A[1]; }"),
            27
        );
    }

    #[test]
    fn while_with_logical_conditions() {
        assert_eq!(
            run("fn main() -> i32 {
                   let mut i: i32 = 0; let mut s: i32 = 0;
                   while (i < 20 && s < 50) { s += i; i += 1; }
                   return s;
                 }"),
            55
        );
    }
}
