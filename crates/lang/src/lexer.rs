//! Tokenizer for zklang.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and identifiers
    Int(i64),
    Str(String),
    Ident(String),
    // Keywords
    Fn,
    Let,
    Mut,
    Static,
    Const,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    As,
    True,
    False,
    // Types
    TyI32,
    TyU32,
    TyI8,
    TyBool,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Arrow,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Hash,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token paired with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
}

/// A lexer error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` into a vector ending with [`Tok::Eof`].
///
/// # Errors
/// Returns a [`LexError`] on unterminated strings or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |line: u32, m: &str| LexError {
        line,
        message: m.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                let mut value: i64;
                if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    i += 2;
                    let hs = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hs {
                        return Err(err(line, "empty hex literal"));
                    }
                    let text = &src[hs..i];
                    value = i64::from_str_radix(text, 16)
                        .map_err(|_| err(line, "hex literal out of range"))?;
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    value = src[start..i]
                        .parse()
                        .map_err(|_| err(line, "integer literal out of range"))?;
                }
                // Wrap into 32-bit range: literals above i32::MAX are u32 bit patterns.
                value &= 0xffff_ffff;
                out.push(Spanned {
                    tok: Tok::Int(value),
                    line,
                });
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err(line, "unterminated string"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= bytes.len() {
                                return Err(err(line, "unterminated escape"));
                            }
                            let e = bytes[i] as char;
                            s.push(match e {
                                'n' => '\n',
                                't' => '\t',
                                '0' => '\0',
                                '\\' => '\\',
                                '"' => '"',
                                _ => return Err(err(line, "unknown escape")),
                            });
                            i += 1;
                        }
                        b'\n' => return Err(err(line, "newline in string")),
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '\'' => {
                // Char literal: yields its byte value as an integer token.
                i += 1;
                if i >= bytes.len() {
                    return Err(err(line, "unterminated char"));
                }
                let v = if bytes[i] == b'\\' {
                    i += 1;
                    let e = bytes
                        .get(i)
                        .copied()
                        .ok_or_else(|| err(line, "bad escape"))?;
                    i += 1;
                    match e {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        _ => return Err(err(line, "unknown char escape")),
                    }
                } else {
                    let v = bytes[i];
                    i += 1;
                    v
                };
                if i >= bytes.len() || bytes[i] != b'\'' {
                    return Err(err(line, "unterminated char"));
                }
                i += 1;
                out.push(Spanned {
                    tok: Tok::Int(v as i64),
                    line,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "mut" => Tok::Mut,
                    "static" => Tok::Static,
                    "const" => Tok::Const,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "as" => Tok::As,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "i32" => Tok::TyI32,
                    "u32" => Tok::TyU32,
                    "i8" | "u8" => Tok::TyI8,
                    "bool" => Tok::TyBool,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
                let three = |a: u8, b: u8, c: u8| {
                    i + 2 < bytes.len() && bytes[i] == a && bytes[i + 1] == b && bytes[i + 2] == c
                };
                let (tok, len) = if three(b'<', b'<', b'=') {
                    (Tok::ShlAssign, 3)
                } else if three(b'>', b'>', b'=') {
                    (Tok::ShrAssign, 3)
                } else if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else if two(b'+', b'=') {
                    (Tok::PlusAssign, 2)
                } else if two(b'-', b'=') {
                    (Tok::MinusAssign, 2)
                } else if two(b'*', b'=') {
                    (Tok::StarAssign, 2)
                } else if two(b'/', b'=') {
                    (Tok::SlashAssign, 2)
                } else if two(b'%', b'=') {
                    (Tok::PercentAssign, 2)
                } else if two(b'&', b'=') {
                    (Tok::AmpAssign, 2)
                } else if two(b'|', b'=') {
                    (Tok::PipeAssign, 2)
                } else if two(b'^', b'=') {
                    (Tok::CaretAssign, 2)
                } else {
                    let t = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ',' => Tok::Comma,
                        ';' => Tok::Semi,
                        ':' => Tok::Colon,
                        '*' => Tok::Star,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        '~' => Tok::Tilde,
                        '!' => Tok::Bang,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '=' => Tok::Assign,
                        '#' => Tok::Hash,
                        other => return Err(err(line, &format!("unexpected character {other:?}"))),
                    };
                    (t, 1)
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo let x"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_decimal_and_hex() {
        assert_eq!(toks("42 0xff"), vec![Tok::Int(42), Tok::Int(255), Tok::Eof]);
        // Large u32 literals keep their bit pattern.
        assert_eq!(toks("4294967295"), vec![Tok::Int(0xffff_ffff), Tok::Eof]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a <<= b >> c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::ShlAssign,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let ts = lex("x // comment\ny /* multi\nline */ z").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(toks("\"ab\\n\""), vec![Tok::Str("ab\n".into()), Tok::Eof]);
        assert_eq!(
            toks("'A' '\\n'"),
            vec![Tok::Int(65), Tok::Int(10), Tok::Eof]
        );
    }

    #[test]
    fn error_on_unknown_char() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"open").is_err());
    }
}
