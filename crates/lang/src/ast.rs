//! Abstract syntax tree for zklang.

/// Source-level scalar and pointer types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcTy {
    /// Signed 32-bit integer.
    I32,
    /// Unsigned 32-bit integer (chooses unsigned division/shift/compare).
    U32,
    /// Byte (unsigned, zero-extended on load).
    I8,
    /// Boolean.
    Bool,
    /// Pointer to `i32`/`u32` cells.
    PtrI32,
    /// Pointer to bytes.
    PtrI8,
}

impl SrcTy {
    /// Whether the type compares/divides unsigned.
    pub fn is_unsigned(self) -> bool {
        matches!(self, SrcTy::U32 | SrcTy::I8)
    }

    /// Element stride for indexing through this pointer type.
    pub fn pointee_stride(self) -> Option<u32> {
        match self {
            SrcTy::PtrI32 => Some(4),
            SrcTy::PtrI8 => Some(1),
            _ => None,
        }
    }

    /// Whether this is a pointer type.
    pub fn is_ptr(self) -> bool {
        self.pointee_stride().is_some()
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Logical not (bool).
    LNot,
}

/// Binary operators (source level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LAnd,
    LOr,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal (32-bit bit pattern).
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference (scalar read, or array/pointer decay in address
    /// contexts).
    Var(String),
    /// `base[index]`.
    Index(String, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(Bin, Box<Expr>, Box<Expr>),
    /// `expr as ty`.
    Cast(Box<Expr>, SrcTy),
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array or pointer element.
    Index(String, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let [mut] name: ty [= init];` or `let [mut] name: [ty; n];`
    Let {
        name: String,
        ty: SrcTy,
        /// Array element count (`None` for scalars). Evaluated as a constant.
        count: Option<Expr>,
        init: Option<Expr>,
        line: u32,
    },
    /// `lhs op= rhs;` (`op` is `None` for plain `=`).
    Assign {
        target: LValue,
        op: Option<Bin>,
        value: Expr,
        line: u32,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: u32,
    },
    /// `while (cond) { .. }`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `for (init; cond; step) { .. }` — desugared while with a step that
    /// `continue` still executes.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `return [expr];`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// Bare expression statement (typically a call).
    Expr(Expr, u32),
}

/// Inlining hints recognised from `#[inline(...)]` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InlineHint {
    #[default]
    None,
    Always,
    Never,
}

/// Function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    pub name: String,
    pub params: Vec<(String, SrcTy)>,
    pub ret: Option<SrcTy>,
    pub body: Vec<Stmt>,
    pub inline: InlineHint,
    pub line: u32,
}

/// Global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// List of constant expressions.
    Ints(Vec<Expr>),
    /// String bytes (only for `i8` arrays).
    Str(String),
}

/// `static NAME: [ty; n] = ...;` or scalar static.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    pub elem: SrcTy,
    /// Element count expression (1 for scalars).
    pub count: Option<Expr>,
    pub init: GlobalInit,
    pub line: u32,
}

/// `const NAME: i32 = <const expr>;`
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    pub name: String,
    pub value: Expr,
    pub line: u32,
}

/// A parsed compilation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub consts: Vec<ConstDecl>,
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FnDecl>,
}
