//! Recursive-descent parser for zklang.

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Tok};
use std::fmt;

/// A parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Maximum statement/expression nesting depth. Recursive descent spends
/// real stack per nesting level, and the parser runs on **untrusted**
/// program text (the tuning service's submission path), where an input like
/// `((((((…` would otherwise overflow the stack — an abort no
/// `catch_unwind` can contain. Deeper-than-human nesting is rejected with a
/// spanned [`ParseError`] instead. 128 levels is far beyond any legitimate
/// zklang program and fits comfortably in a default 2 MiB *thread* stack
/// even with debug-sized frames (the service parses on worker threads).
const MAX_NESTING: usize = 128;

/// Parse a zklang source file into a [`Program`].
///
/// # Errors
/// Returns the first lexical or syntactic error. Never panics: malformed or
/// hostile input (including pathologically deep nesting) is reported as a
/// [`ParseError`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        depth: 0,
    }
    .program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Current recursion depth across `stmt`/`expr`/`unary`, bounded by
    /// [`MAX_NESTING`].
    depth: usize,
}

impl Parser {
    /// Enter one nesting level; fails with a spanned error past
    /// [`MAX_NESTING`]. Every `enter` pairs with a `leave` on the success
    /// *and* error paths of the wrappers below — an error aborts the whole
    /// parse, but `parse` may be called again on the same `Parser` only
    /// through a fresh construction, so balance matters only for deep
    /// sequential (non-nested) input, which must not accumulate depth.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            Err(self.err("nesting too deep"))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}, found `{}`", self.peek())))
        }
    }

    fn err(&self, m: &str) -> ParseError {
        ParseError {
            line: self.line(),
            message: m.to_string(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("expected {what}, found `{other}`"),
            }),
        }
    }

    fn scalar_ty(&mut self) -> Result<SrcTy, ParseError> {
        let t = match self.next() {
            Tok::TyI32 => SrcTy::I32,
            Tok::TyU32 => SrcTy::U32,
            Tok::TyI8 => SrcTy::I8,
            Tok::TyBool => SrcTy::Bool,
            Tok::Star => {
                // *i32 / *u32 / *i8 pointer types.
                match self.next() {
                    Tok::TyI32 | Tok::TyU32 => SrcTy::PtrI32,
                    Tok::TyI8 => SrcTy::PtrI8,
                    other => {
                        return Err(ParseError {
                            line: self.toks[self.pos.saturating_sub(1)].line,
                            message: format!("expected pointee type, found `{other}`"),
                        })
                    }
                }
            }
            other => {
                return Err(ParseError {
                    line: self.toks[self.pos.saturating_sub(1)].line,
                    message: format!("expected type, found `{other}`"),
                })
            }
        };
        Ok(t)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut p = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Const => {
                    self.next();
                    let line = self.line();
                    let name = self.ident("const name")?;
                    self.expect(&Tok::Colon, "`:`")?;
                    let _ty = self.scalar_ty()?;
                    self.expect(&Tok::Assign, "`=`")?;
                    let value = self.expr()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    p.consts.push(ConstDecl { name, value, line });
                }
                Tok::Static => {
                    self.next();
                    let line = self.line();
                    let name = self.ident("static name")?;
                    self.expect(&Tok::Colon, "`:`")?;
                    let (elem, count) = if self.eat(&Tok::LBracket) {
                        let elem = self.scalar_ty()?;
                        self.expect(&Tok::Semi, "`;` in array type")?;
                        let count = self.expr()?;
                        self.expect(&Tok::RBracket, "`]`")?;
                        (elem, Some(count))
                    } else {
                        (self.scalar_ty()?, None)
                    };
                    let init = if self.eat(&Tok::Assign) {
                        match self.peek().clone() {
                            Tok::Str(s) => {
                                self.next();
                                GlobalInit::Str(s)
                            }
                            Tok::LBracket => {
                                self.next();
                                let mut items = Vec::new();
                                if !self.eat(&Tok::RBracket) {
                                    loop {
                                        items.push(self.expr()?);
                                        if self.eat(&Tok::RBracket) {
                                            break;
                                        }
                                        self.expect(&Tok::Comma, "`,`")?;
                                    }
                                }
                                GlobalInit::Ints(items)
                            }
                            _ => GlobalInit::Ints(vec![self.expr()?]),
                        }
                    } else {
                        GlobalInit::Zero
                    };
                    self.expect(&Tok::Semi, "`;`")?;
                    p.globals.push(GlobalDecl {
                        name,
                        elem,
                        count,
                        init,
                        line,
                    });
                }
                Tok::Hash | Tok::Fn => {
                    p.funcs.push(self.func()?);
                }
                other => return Err(self.err(&format!("expected item, found `{other}`"))),
            }
        }
        Ok(p)
    }

    fn func(&mut self) -> Result<FnDecl, ParseError> {
        let mut inline = InlineHint::None;
        while self.eat(&Tok::Hash) {
            // #[inline(always)] / #[inline(never)]
            self.expect(&Tok::LBracket, "`[`")?;
            let attr = self.ident("attribute")?;
            if attr != "inline" {
                return Err(self.err(&format!("unknown attribute `{attr}`")));
            }
            self.expect(&Tok::LParen, "`(`")?;
            let kind = self.ident("inline kind")?;
            inline = match kind.as_str() {
                "always" => InlineHint::Always,
                "never" => InlineHint::Never,
                other => return Err(self.err(&format!("unknown inline kind `{other}`"))),
            };
            self.expect(&Tok::RParen, "`)`")?;
            self.expect(&Tok::RBracket, "`]`")?;
        }
        let line = self.line();
        self.expect(&Tok::Fn, "`fn`")?;
        let name = self.ident("function name")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let ty = self.scalar_ty()?;
                params.push((pname, ty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        let ret = if self.eat(&Tok::Arrow) {
            Some(self.scalar_ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
            inline,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unexpected end of file in block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.leave();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Let => {
                self.next();
                let _ = self.eat(&Tok::Mut);
                let name = self.ident("variable name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let (ty, count) = if self.eat(&Tok::LBracket) {
                    let t = self.scalar_ty()?;
                    self.expect(&Tok::Semi, "`;` in array type")?;
                    let c = self.expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    (t, Some(c))
                } else {
                    (self.scalar_ty()?, None)
                };
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    count,
                    init,
                    line,
                })
            }
            Tok::If => {
                self.next();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    if matches!(self.peek(), Tok::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            Tok::While => {
                self.next();
                self.expect(&Tok::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::For => {
                self.next();
                self.expect(&Tok::LParen, "`(`")?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(&Tok::Semi, "`;`")?;
                    Some(Box::new(s))
                };
                let cond = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                let step = if matches!(self.peek(), Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Tok::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    line,
                })
            }
            Tok::Return => {
                self.next();
                let e = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Return(e, line))
            }
            Tok::Break => {
                self.next();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Break(line))
            }
            Tok::Continue => {
                self.next();
                self.expect(&Tok::Semi, "`;`")?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi, "`;`")?;
                Ok(s)
            }
        }
    }

    /// Assignment, compound assignment, `let`, or expression — without the
    /// trailing semicolon (used for `for` clauses).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        if matches!(self.peek(), Tok::Let) {
            self.next();
            let _ = self.eat(&Tok::Mut);
            let name = self.ident("variable name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.scalar_ty()?;
            self.expect(&Tok::Assign, "`=`")?;
            let init = Some(self.expr()?);
            return Ok(Stmt::Let {
                name,
                ty,
                count: None,
                init,
                line,
            });
        }
        // Try lvalue assignment: IDENT [ '[' expr ']' ] (op)= expr
        if let Tok::Ident(name) = self.peek().clone() {
            let save = self.pos;
            self.next();
            let target = if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                LValue::Index(name.clone(), idx)
            } else {
                LValue::Var(name.clone())
            };
            let op = match self.peek() {
                Tok::Assign => None,
                Tok::PlusAssign => Some(Bin::Add),
                Tok::MinusAssign => Some(Bin::Sub),
                Tok::StarAssign => Some(Bin::Mul),
                Tok::SlashAssign => Some(Bin::Div),
                Tok::PercentAssign => Some(Bin::Rem),
                Tok::AmpAssign => Some(Bin::And),
                Tok::PipeAssign => Some(Bin::Or),
                Tok::CaretAssign => Some(Bin::Xor),
                Tok::ShlAssign => Some(Bin::Shl),
                Tok::ShrAssign => Some(Bin::Shr),
                _ => {
                    // Not an assignment; re-parse as expression statement.
                    self.pos = save;
                    let e = self.expr()?;
                    return Ok(Stmt::Expr(e, line));
                }
            };
            self.next();
            let value = self.expr()?;
            return Ok(Stmt::Assign {
                target,
                op,
                value,
                line,
            });
        }
        let e = self.expr()?;
        Ok(Stmt::Expr(e, line))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.lor();
        self.leave();
        r
    }

    fn lor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.land()?;
        while self.eat(&Tok::OrOr) {
            let r = self.land()?;
            e = Expr::Binary(Bin::LOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn land(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitor()?;
        while self.eat(&Tok::AndAnd) {
            let r = self.bitor()?;
            e = Expr::Binary(Bin::LAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitxor()?;
        while self.eat(&Tok::Pipe) {
            let r = self.bitxor()?;
            e = Expr::Binary(Bin::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bitand()?;
        while self.eat(&Tok::Caret) {
            let r = self.bitand()?;
            e = Expr::Binary(Bin::Xor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&Tok::Amp) {
            let r = self.equality()?;
            e = Expr::Binary(Bin::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => Bin::Eq,
                Tok::Ne => Bin::Ne,
                _ => break,
            };
            self.next();
            let r = self.relational()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => Bin::Lt,
                Tok::Le => Bin::Le,
                Tok::Gt => Bin::Gt,
                Tok::Ge => Bin::Ge,
                _ => break,
            };
            self.next();
            let r = self.shift()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Shl => Bin::Shl,
                Tok::Shr => Bin::Shr,
                _ => break,
            };
            self.next();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => Bin::Add,
                Tok::Minus => Bin::Sub,
                _ => break,
            };
            self.next();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => Bin::Mul,
                Tok::Slash => Bin::Div,
                Tok::Percent => Bin::Rem,
                _ => break,
            };
            self.next();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let r = self.unary_inner();
        self.leave();
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        let e = match self.peek() {
            Tok::Minus => {
                self.next();
                Expr::Unary(UnOp::Neg, Box::new(self.unary()?))
            }
            Tok::Tilde => {
                self.next();
                Expr::Unary(UnOp::Not, Box::new(self.unary()?))
            }
            Tok::Bang => {
                self.next();
                Expr::Unary(UnOp::LNot, Box::new(self.unary()?))
            }
            _ => self.postfix()?,
        };
        Ok(e)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat(&Tok::As) {
            let ty = self.scalar_ty()?;
            e = Expr::Cast(Box::new(e), ty);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(&Tok::Comma, "`,`")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "`]`")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("expected expression, found `{other}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("fn main() -> i32 { return 0; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].ret, Some(SrcTy::I32));
    }

    #[test]
    fn parses_consts_globals_and_arrays() {
        let src = "
            const N: i32 = 8;
            static A: [i32; N];
            static MSG: [i8; 6] = \"hello\\0\";
            static X: i32 = 3;
            fn main() -> i32 { return A[0] + X; }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.consts.len(), 1);
        assert_eq!(p.globals.len(), 3);
        assert!(matches!(p.globals[1].init, GlobalInit::Str(_)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn f() -> i32 { return 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Binary(Bin::Add, _, r)), _) => {
                assert!(matches!(**r, Expr::Binary(Bin::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = "
            fn main() -> i32 {
                let mut s: i32 = 0;
                for (let mut i: i32 = 0; i < 10; i += 1) {
                    if (i % 2 == 0) { s += i; } else { continue; }
                }
                while (s > 100) { s -= 1; break; }
                return s;
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].body.len(), 4);
    }

    #[test]
    fn parses_pointers_and_attributes() {
        let src = "
            #[inline(always)]
            fn fill(p: *i32, n: i32) { for (let mut i: i32 = 0; i < n; i += 1) { p[i] = 0; } }
            #[inline(never)]
            fn cold() -> i32 { return 1; }
            fn main() -> i32 { return cold(); }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].inline, InlineHint::Always);
        assert_eq!(p.funcs[0].params[0].1, SrcTy::PtrI32);
        assert_eq!(p.funcs[1].inline, InlineHint::Never);
    }

    #[test]
    fn casts_bind_postfix() {
        let p = parse("fn f(x: i32) -> u32 { return x as u32 >> 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(Expr::Binary(Bin::Shr, l, _)), _) => {
                assert!(matches!(**l, Expr::Cast(_, SrcTy::U32)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse("fn main() -> i32 {\n  let x: i32 = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    /// Hostile nesting is rejected with a spanned error rather than
    /// overflowing the parser's stack — an abort no caller could contain.
    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        for (open, close) in [("(", ")"), ("-", ""), ("!", ""), ("~", "")] {
            let src = format!(
                "fn main() -> i32 {{ return {}1{}; }}",
                open.repeat(100_000),
                close.repeat(100_000)
            );
            let e = parse(&src).unwrap_err();
            assert!(e.message.contains("nesting too deep"), "{open}: {e}");
        }
        // Deep *statement* nesting trips the same guard.
        let src = format!(
            "fn main() -> i32 {{ {} return 0; {} }}",
            "if (1) {".repeat(100_000),
            "}".repeat(100_000)
        );
        let e = parse(&src).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
    }

    /// The guard tracks *nesting*, not volume: long flat programs and long
    /// operator chains stay within depth and must still parse.
    #[test]
    fn depth_guard_does_not_fire_on_flat_or_chained_input() {
        let flat = format!(
            "fn main() -> i32 {{ {} return 0; }}",
            "let a: i32 = 1; a += 1; ".repeat(2_000)
        );
        assert!(parse(&flat).is_ok(), "sequential statements are not nested");
        let chain = format!("fn f() -> i32 {{ return 0 {}; }}", "+ 1".repeat(5_000));
        assert!(parse(&chain).is_ok(), "left-leaning chains are iterative");
        let modest = format!(
            "fn f() -> i32 {{ return {}7{}; }}",
            "(".repeat(60),
            ")".repeat(60)
        );
        assert!(parse(&modest).is_ok(), "60 parens is legitimate input");
    }
}
